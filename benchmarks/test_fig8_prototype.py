"""FIG8 — the prototype architecture (paper Figure 8).

Co-synthesis onto the paper's prototype platform: the Distribution C program
compiled for a 386 PC-AT that talks over the 16-bit ISA extension bus
(10 MHz, base address 0x300) to a Xilinx XC4000-family FPGA carrying the
synthesized Speed Control subsystem, which drives the motor.

The paper's quantitative statement is qualitative: "this solution correctly
implements the system functionality while meeting the real-time
constraints"; the bench regenerates the prototype mapping and checks exactly
that, using the platform-timed (back-annotated) simulation.
"""

from benchmarks.conftest import small_motor_config
from repro.analysis import back_annotate
from repro.apps.motor_controller import (
    RealTimeConstraints,
    build_session,
    build_system,
    build_view_library_for,
)
from repro.cosyn import CosynthesisFlow
from repro.platforms import get_platform


def synthesize_prototype():
    config = small_motor_config()
    model, _ = build_system(config)
    platform = get_platform("pc_at_fpga")
    library = build_view_library_for({platform.name: platform}, config)
    result = CosynthesisFlow(model, platform, library=library).run()
    annotation = back_annotate(result)
    # Execute the synthesized system with its back-annotated timing.
    session = build_session(config, **annotation.session_parameters())
    run = session.run_until_software_done(max_time=50_000_000)
    return config, platform, result, annotation, session, run


def test_fig8_prototype_mapping(benchmark):
    config, platform, result, annotation, session, run = benchmark.pedantic(
        synthesize_prototype, rounds=1, iterations=1
    )
    sw = result.software_result("DistributionMod")
    hw = result.hardware_result("SpeedControlMod")

    # Software part: C for the 386 PC-AT using the ISA window at 0x300.
    assert sw.platform_name == "pc_at_fpga"
    assert min(result.address_map.values()) == 0x300
    assert "outport(0x300" in sw.program_text

    # Hardware part: the Speed Control subsystem fits the XC4000 FPGA.
    assert hw.device.name.startswith("XC40")
    assert hw.fits_device
    assert hw.max_frequency_hz >= platform.bus.clock_hz, \
        "the FPGA must keep up with the 10 MHz bus"

    # Prototype behaviour: functionality and real-time constraints met.
    constraints = RealTimeConstraints(config).check(session, run)
    assert constraints["ok"], constraints
    assert result.ok

    print()
    print("FIG8: Adaptive Motor Controller prototype (PC-AT + ISA + XC4000)")
    print(f"  software   : {sw.code_size_bytes} bytes of C, worst activation "
          f"{sw.worst_activation_ns:.0f} ns")
    print(f"  bus        : {platform.bus.width_bits}-bit ISA @ "
          f"{platform.bus.clock_hz / 1e6:.0f} MHz, base 0x{min(result.address_map.values()):X}, "
          f"{len(result.address_map)} mapped ports")
    print(f"  hardware   : {hw.estimate.clbs_total} CLBs on {hw.device.name} "
          f"({hw.utilisation() * 100:.0f}% utilisation), "
          f"clock {hw.achievable_clock_ns} ns")
    print(f"  prototype  : motor at {session.motor.position}/{config.final_position}, "
          f"{session.motor.pulse_count} pulses, min period "
          f"{constraints['observed_min_pulse_period_ns']} ns "
          f"(constraint {config.min_pulse_period_ns} ns)")
    print(f"  real-time constraints met: {constraints['ok']}")
