"""FIG3 — the three views of a communication procedure (paper Figure 3).

From the single abstract description of the ``MotorPosition`` access
procedure the library generates

* (a) the SW **synthesis** view — C with ``inport``/``outport`` accesses at
  physical ISA addresses,
* (b) the SW **simulation** view — C against the simulator's C-language
  interface (``cliGetPortValue`` / ``cliOutput``),
* (c) the HW view — a VHDL procedure.

The bench regenerates all three and checks they share the same control
structure (states and transitions), which is what makes co-simulation and
co-synthesis coherent.
"""

import re

from repro.apps.motor_controller import build_system, build_view_library_for
from repro.core.views import ViewKind
from repro.platforms import get_platform

SERVICE = "MotorPosition"


def generate_views():
    platform = get_platform("pc_at_fpga")
    library = build_view_library_for({platform.name: platform})
    model, _ = build_system()
    service = model.comm_unit("SwHwUnit").service(SERVICE)
    return {
        "sw_synth": library.get(SERVICE, ViewKind.SW_SYNTH, platform.name),
        "sw_sim": library.get(SERVICE, ViewKind.SW_SIM),
        "hw": library.get(SERVICE, ViewKind.HW),
        "service": service,
    }


def test_fig3_three_views_of_one_procedure(benchmark):
    views = benchmark(generate_views)
    sw_synth, sw_sim, hw = views["sw_synth"].text, views["sw_sim"].text, views["hw"].text
    state_names = views["service"].fsm.state_order

    # (a) SW synthesis view: I/O-port accesses at the ISA window, no CLI calls.
    assert re.search(r"outport\(0x3[0-9A-F]+, POSITION\);", sw_synth)
    assert re.search(r"inport\(0x3[0-9A-F]+\)", sw_synth)
    assert "cliOutput" not in sw_synth

    # (b) SW simulation view: the simulator C-language interface, no I/O ports.
    assert "cliOutput(map(CMD_DATAIN), POSITION);" in sw_sim
    assert "cliGetPortValue(map(CMD_FULL))" in sw_sim
    assert "outport" not in sw_sim

    # (c) HW view: a VHDL procedure over the same ports.
    assert f"procedure {SERVICE}(" in hw
    assert "DONE : out std_logic" in hw
    assert "CMD_DATAIN <= POSITION;" in hw

    # All three views implement the same state machine.
    for state in state_names:
        assert f"{SERVICE}_{state}" in sw_synth
        assert f"{SERVICE}_{state}" in sw_sim
        assert f"{SERVICE}_{state}" in hw
    assert sw_synth.count("case ") == sw_sim.count("case ")

    print()
    print(f"FIG3: views of {SERVICE} regenerated from one description")
    print(f"  states                : {state_names}")
    print(f"  SW synthesis view     : {len(sw_synth.splitlines())} lines of C "
          f"(inport/outport, ISA window 0x300)")
    print(f"  SW simulation view    : {len(sw_sim.splitlines())} lines of C (cli*)")
    print(f"  HW view               : {len(hw.splitlines())} lines of VHDL")
