"""CLAIM-REALTIME — "meeting the real-time constraints" (paper §4).

The prototype analysis of the paper is regenerated as an explicit constraint
report over the back-annotated (platform-timed) run: minimum pulse period,
response latency from the software command to the first pulse, and exact
functional completion.  A deliberately broken scenario (a motor that cannot
step as fast as the controller drives it) shows the check actually detects
violations.
"""

from benchmarks.conftest import small_motor_config
from repro.analysis import back_annotate
from repro.apps.motor_controller import (
    MotorControllerConfig,
    RealTimeConstraints,
    build_session,
    build_system,
    build_view_library_for,
)
from repro.cosyn import CosynthesisFlow
from repro.platforms import get_platform


def run_realtime_analysis():
    config = small_motor_config()
    model, _ = build_system(config)
    platform = get_platform("pc_at_fpga")
    library = build_view_library_for({platform.name: platform}, config)
    cosyn_result = CosynthesisFlow(model, platform, library=library).run()
    annotation = back_annotate(cosyn_result)

    session = build_session(config, **annotation.session_parameters())
    run = session.run_until_software_done(max_time=50_000_000)
    report = RealTimeConstraints(config).check(session, run)

    # Negative control: a motor far slower than the commanded pulse train.
    broken_config = MotorControllerConfig(final_position=12, segment=12,
                                          speed_limit=8, min_pulse_period_ns=50_000)
    broken_session = build_session(broken_config, **annotation.session_parameters())
    broken_run = broken_session.run_until_software_done(max_time=5_000_000)
    broken_report = RealTimeConstraints(broken_config).check(broken_session, broken_run)
    return config, annotation, report, broken_report


def test_claim_realtime_constraints(benchmark):
    config, annotation, report, broken_report = benchmark.pedantic(
        run_realtime_analysis, rounds=1, iterations=1
    )

    # Prototype timing: all constraints met.
    assert report["ok"], report
    assert report["final_position"] == config.final_position
    assert report["missed_pulses"] == 0
    assert report["observed_min_pulse_period_ns"] >= config.min_pulse_period_ns
    assert report["response_latency_ns"] <= config.max_response_ns

    # The check is not vacuous: an infeasible motor produces violations.
    assert not broken_report["ok"]
    assert broken_report["missed_pulses"] > 0

    print()
    print("CLAIM-REALTIME: constraint report of the back-annotated prototype")
    print(RealTimeConstraints.as_table(report))
    print(f"  back-annotation: hw clock {annotation.hw_clock_ns} ns, "
          f"sw activation {annotation.sw_activation_ns:.0f} ns")
    print(f"  negative control (slow motor): ok={broken_report['ok']}, "
          f"missed pulses={broken_report['missed_pulses']}")
