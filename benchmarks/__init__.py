"""Benchmarks: figure/claim regeneration tests and the kernel perf harness.

Two kinds of content live here:

* ``test_fig*.py`` / ``test_abl*.py`` / ``test_claim*.py`` — pytest modules
  that regenerate the paper's figures and claims (see ``conftest.py``).
* ``perf/`` — the kernel performance harness, runnable as
  ``python -m benchmarks.perf`` (see ``perf/__init__.py`` and the top-level
  ``Makefile``'s ``bench`` target).
"""
