"""ABL-SYNC — ablation of the software activation policy.

The paper's co-simulation rule — "each time a software component is
activated ... only one transition is executed. This model allows for a
precise synchronization between software and hardware" — is compared with a
run-to-idle policy that executes as many transitions as possible per
activation.  Expected shape: with cheap activations both behave identically;
when activations are expensive (the back-annotated software period of the
prototype) run-to-idle needs fewer activations and finishes earlier, at the
cost of a coarser interleaving with the hardware.
"""

from benchmarks.conftest import small_motor_config
from repro.apps.motor_controller import build_session
from repro.cosim import OneTransitionPerActivation, RunToIdle
from repro.utils.text import format_table

ACTIVATION_PERIODS = {"fast_sw": 100, "slow_sw": 3_000}
POLICIES = {
    "one_transition": OneTransitionPerActivation,
    "run_to_idle": RunToIdle,
}


def run_policy(policy_name, activation_period):
    config = small_motor_config()
    session = build_session(config, clock_period=100,
                            sw_activation_period=activation_period,
                            activation_policy=POLICIES[policy_name]())
    result = session.run_until_software_done(max_time=50_000_000)
    executor = session.software_executor("DistributionMod")
    return {
        "position": session.motor.position,
        "pulses": session.motor.pulse_count,
        "activations": executor.activations,
        "transitions": executor.transitions,
        "end_time": result.end_time,
    }


def run_all():
    outcomes = {}
    for period_name, period in ACTIVATION_PERIODS.items():
        for policy_name in POLICIES:
            outcomes[(period_name, policy_name)] = run_policy(policy_name, period)
    return outcomes


def test_abl_sync(benchmark):
    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    config = small_motor_config()

    # Functional outcome is policy independent (the abstraction holds).
    for outcome in outcomes.values():
        assert outcome["position"] == config.final_position
        assert outcome["pulses"] == config.total_travel

    # With expensive activations, run-to-idle needs fewer of them and does
    # not finish later than the one-transition rule.
    slow_one = outcomes[("slow_sw", "one_transition")]
    slow_idle = outcomes[("slow_sw", "run_to_idle")]
    assert slow_idle["activations"] < slow_one["activations"]
    assert slow_idle["end_time"] <= slow_one["end_time"]

    # With cheap activations the two policies cost essentially the same,
    # which is why the paper can afford the precise one-transition rule.
    fast_one = outcomes[("fast_sw", "one_transition")]
    fast_idle = outcomes[("fast_sw", "run_to_idle")]
    assert fast_idle["end_time"] <= fast_one["end_time"]

    rows = [
        (period_name, policy_name, outcome["activations"], outcome["transitions"],
         outcome["end_time"], outcome["position"])
        for (period_name, policy_name), outcome in sorted(outcomes.items())
    ]
    print()
    print("ABL-SYNC: software activation policies")
    print(format_table(
        ["sw activation", "policy", "activations", "transitions", "sim time (ns)",
         "final position"], rows))
