"""FIG4 — structure of the Adaptive Motor Controller (paper Figure 4).

Regenerates the system topology: the Distribution subsystem and the Speed
Control subsystem communicating through a communication channel, with the
motor attached to the hardware side.
"""

from repro.apps.motor_controller import build_system
from repro.core.validation import validate_model
from repro.utils.text import format_table


def build_topology():
    model, config = build_system()
    return model, config, model.topology()


def test_fig4_system_structure(benchmark):
    model, config, topology = benchmark(build_topology)

    assert validate_model(model) == []
    assert topology["software_modules"] == ["DistributionMod"]
    assert topology["hardware_modules"] == ["SpeedControlMod"]
    assert sorted(topology["comm_units"]) == ["MotorUnit", "SwHwUnit"]

    # The Distribution subsystem provides positions; the Speed Control
    # subsystem consumes them and drives the motor — exactly the Figure 4 flow.
    bindings = {(b["module"], b["service"]): b for b in topology["bindings"]}
    assert bindings[("DistributionMod", "MotorPosition")]["unit"] == "SwHwUnit"
    assert bindings[("SpeedControlMod", "ReadMotorPosition")]["unit"] == "SwHwUnit"
    assert bindings[("SpeedControlMod", "SendMotorPulses")]["unit"] == "MotorUnit"
    assert bindings[("DistributionMod", "MotorPosition")]["interface"] == \
        "Distribution_Interface"

    rows = [(b["module"], b["module_kind"], b["interface"], b["service"], b["unit"])
            for b in topology["bindings"]]
    print()
    print("FIG4: Adaptive Motor Controller structure")
    print(format_table(["module", "kind", "interface", "service", "unit"], rows))
    print(f"  user parameters: final position {config.final_position}, "
          f"segment {config.segment}, speed limit {config.speed_limit}")
