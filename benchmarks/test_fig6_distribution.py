"""FIG6 — the Distribution subsystem (paper Figure 6).

Regenerates both halves of the figure:

* (a) the subsystem's state graph and its communication primitives
  (SetupControl, MotorPosition, ReadMotorState),
* (b) the C code of the subsystem — a finite state machine executing one
  transition per activation.

The bench also replays the FSM in isolation to check the one-transition-per-
activation rule and the state sequence of one segment.
"""

from benchmarks.conftest import run_motor_cosimulation, small_motor_config
from repro.apps.motor_controller import build_distribution
from repro.swc import emit_module_function


def regenerate_fig6():
    config = small_motor_config()
    module = build_distribution(config)
    c_code = emit_module_function(module)
    session, result = run_motor_cosimulation(config)
    executor = session.software_executor("DistributionMod")
    return config, module, c_code, executor, result


def test_fig6_distribution_subsystem(benchmark):
    config, module, c_code, executor, result = benchmark.pedantic(
        regenerate_fig6, rounds=1, iterations=1
    )

    # (a) State graph and primitives of the figure.
    assert module.fsm.initial == "Start"
    assert module.services_used() == ["SetupControl", "MotorPosition", "ReadMotorState"]
    for state in ("Start", "SetupControlCall", "Step", "MotorPositionCall", "Next",
                  "ReadStateCall", "NextStep"):
        assert state in module.fsm.states

    # (b) Generated C: switch-based FSM, service-call guards, DONE protocol.
    assert "int DISTRIBUTION(void)" in c_code
    assert "switch (NextState)" in c_code
    assert "if (SetupControl(MAXSPEED)) { NextState = DISTRIBUTION_Step; }" in c_code
    assert "if (MotorPosition(TARGET)) { NextState = DISTRIBUTION_Next; }" in c_code
    assert "return DONE;" in c_code

    # One transition per activation: visited states == fired transitions + 1.
    history = executor.state_history()
    assert len(history) == executor.transitions + 1
    assert history[0] == "Start" and history[-1] == "Finish"
    # The Step/MotorPositionCall/Next/ReadStateCall/NextStep cycle repeats once
    # per segment.
    assert history.count("MotorPositionCall") == config.segments
    assert executor.variables()["SEGMENTS"] == config.segments

    print()
    print("FIG6: Distribution subsystem")
    print(f"  states             : {list(module.fsm.states)}")
    print(f"  primitives         : {module.services_used()}")
    print(f"  generated C        : {len(c_code.splitlines())} lines")
    print(f"  activations        : {executor.activations} "
          f"(transitions fired: {executor.transitions})")
    print(f"  segments commanded : {executor.variables()['SEGMENTS']}")
