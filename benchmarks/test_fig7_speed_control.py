"""FIG7 — the Speed Control subsystem (paper Figure 7).

Regenerates the VHDL of the hardware subsystem (Position, Core and Timer
units plus the HW views of the access procedures they call) and checks, in
co-simulation, that the three parallel units cooperate as the figure
describes: Position talks to the software, Core computes the motor
variables, Timer sends the pulses.
"""

from benchmarks.conftest import run_motor_cosimulation, small_motor_config
from repro.apps.motor_controller import build_speed_control, build_system
from repro.hdl import emit_module


def regenerate_fig7():
    config = small_motor_config()
    model, _ = build_system(config)
    module = model.module("SpeedControlMod")
    services = [
        model.unit_for(module.name, name).service(name)
        for name in module.services_used()
    ]
    vhdl = emit_module(module, services)
    session, result = run_motor_cosimulation(config)
    return config, module, vhdl, session, result


def test_fig7_speed_control_subsystem(benchmark):
    config, module, vhdl, session, result = benchmark.pedantic(
        regenerate_fig7, rounds=1, iterations=1
    )

    # The three parallel units of the figure.
    assert set(module.processes) == {"POSITION", "CORE", "TIMER"}

    # Generated VHDL: one entity, one process per unit, the access procedures
    # as VHDL procedures, and the internal signals connecting the units.
    assert "entity SpeedControlMod is" in vhdl
    for process in ("POSITION_proc", "CORE_proc", "TIMER_proc"):
        assert f"{process} : process(clk, rst)" in vhdl
    for procedure in ("ReadMotorConstraints", "ReadMotorPosition", "ReturnMotorState",
                      "ReadSampledData", "SendMotorPulses"):
        assert f"procedure {procedure}" in vhdl
    assert "signal PULSECMD : std_logic;" in vhdl

    # Co-simulated behaviour: Position served every command, Core finished
    # every segment, Timer emitted one pulse per step.
    adapter = session.hardware_adapter("SpeedControlMod")
    assert result.trace.count(caller="SpeedControlMod",
                              service="ReadMotorPosition") == config.segments
    assert result.trace.count(caller="SpeedControlMod",
                              service="SendMotorPulses") == config.total_travel
    assert adapter.process_state("CORE") == "Idle"
    assert adapter.process_variables("CORE")["RESIDUAL"] == 0
    assert session.motor.position == config.final_position

    print()
    print("FIG7: Speed Control subsystem")
    print(f"  units              : {sorted(module.processes)}")
    print(f"  generated VHDL     : {len(vhdl.splitlines())} lines")
    print(f"  positions received : {result.trace.count(caller='SpeedControlMod', service='ReadMotorPosition')}")
    print(f"  pulses sent        : {result.trace.count(caller='SpeedControlMod', service='SendMotorPulses')}")
    print(f"  final core state   : {adapter.process_state('CORE')} "
          f"(residual {adapter.process_variables('CORE')['RESIDUAL']})")
