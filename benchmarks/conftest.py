"""Shared helpers for the benchmark/regeneration harness.

Every module in this directory regenerates one artefact of the paper's
evaluation (a figure, or a prose claim) as listed in DESIGN.md §4 and
EXPERIMENTS.md.  The paper reports no numeric tables, so the benches check
the *qualitative* shape (who communicates with whom, which constraints are
met, which platform is slower) and use ``pytest-benchmark`` to time the
regeneration itself.
"""

import pytest

from repro.apps.motor_controller import MotorControllerConfig, build_session


def small_motor_config():
    """The scenario used throughout the benchmarks (keeps runs quick)."""
    return MotorControllerConfig(final_position=40, segment=10, speed_limit=8)


def run_motor_cosimulation(config=None, clock_period=100, sw_activation_period=None,
                           max_time=20_000_000):
    """One complete motor-controller co-simulation; returns (session, result)."""
    session = build_session(config or small_motor_config(), clock_period=clock_period,
                            sw_activation_period=sw_activation_period)
    result = session.run_until_software_done(max_time=max_time)
    return session, result


@pytest.fixture
def motor_config():
    return small_motor_config()
