"""Timing harness and result-file management for the kernel benchmarks.

The harness writes one JSON file (``BENCH_kernel.json`` at the repo root by
default) accumulating labelled runs::

    {"runs": {"seed": {...}, "current": {...}},
     "speedup": {...}, "acceptance": {...}}

Labels are free-form but two are special: once both ``seed`` and
``current`` are present, :func:`update_bench_file` computes per-point
speedups (seed wall-clock / current wall-clock) and the acceptance verdict
used by the project roadmap — the 10k-process idle-heavy point must be at
least :data:`ACCEPTANCE_THRESHOLD` times faster than the seed kernel.
"""

import json
import platform
import sys
import time
from pathlib import Path

from benchmarks.perf.workloads import WORKLOADS

#: Process counts swept in full mode.
FULL_PROCESS_COUNTS = (10, 100, 1_000, 10_000)

#: Process counts swept in ``--quick`` (smoke) mode.
QUICK_PROCESS_COUNTS = (10, 100)

#: Required speedup of ``current`` over ``seed`` on the largest idle-heavy point.
ACCEPTANCE_THRESHOLD = 5.0

#: The (workload, process-count) point the acceptance criterion is read from.
ACCEPTANCE_POINT = ("idle_heavy", 10_000)

#: Default output location: the repository root.
DEFAULT_OUTPUT = Path(__file__).resolve().parents[2] / "BENCH_kernel.json"

SCHEMA = "bench-kernel/1"


def time_point(workload, n_processes, quick=False, repeats=1):
    """Time one (workload, process count) point; returns a result dict.

    The simulator is built outside the timed region (setup cost is not
    scheduling cost) and run to the workload's fixed edge horizon.  With
    *repeats* > 1 the minimum wall-clock time is kept — the standard
    guard against scheduler noise on a shared machine.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = None
    statistics = None
    duration = workload.duration(quick=quick)
    for _ in range(repeats):
        sim = workload.build(n_processes)
        start = time.perf_counter()
        sim.run(until=duration)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            statistics = dict(sim.statistics)
    return {
        "workload": workload.name,
        "n_processes": n_processes,
        "sim_ns": duration,
        "wall_s": best,
        "statistics": statistics,
    }


def run_suite(quick=False, process_counts=None, repeats=1, workloads=None,
              progress=None):
    """Run every workload over the process-count sweep; returns a run dict.

    *progress*, when given, is called with a one-line string after each
    point — the command-line entry uses it to print as results arrive.
    """
    counts = tuple(process_counts
                   if process_counts is not None
                   else (QUICK_PROCESS_COUNTS if quick else FULL_PROCESS_COUNTS))
    results = []
    for workload in (workloads or WORKLOADS):
        for n_processes in counts:
            point = time_point(workload, n_processes, quick=quick,
                               repeats=repeats)
            results.append(point)
            if progress is not None:
                progress(
                    f"{workload.name:<13} n={n_processes:<6} "
                    f"wall={point['wall_s']:.4f}s "
                    f"runs={point['statistics']['process_runs']}"
                )
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "quick": bool(quick),
        "repeats": repeats,
        "process_counts": list(counts),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
    }


def _index_results(run):
    """Map ``(workload, n_processes) -> wall_s`` for one labelled run."""
    return {
        (point["workload"], point["n_processes"]): point["wall_s"]
        for point in run.get("results", ())
    }


def compute_speedups(seed_run, current_run, point=ACCEPTANCE_POINT,
                     threshold=ACCEPTANCE_THRESHOLD, points=None):
    """Per-point ``seed / current`` wall-clock ratios plus the verdict.

    Only points present in *both* runs are compared (a quick seed run and a
    full current run share only their small points).  Returns
    ``(speedup, acceptance)`` where *speedup* maps workload name to
    ``{str(n): ratio}`` and *acceptance* reports the criterion at *point*
    against *threshold* (defaults: this suite's roadmap criterion).
    *points* — a list of ``(workload, n, threshold)`` triples — switches to
    the multi-criterion form the cosim suite uses: the acceptance dict then
    carries one verdict per gated point plus the combined ``pass``.
    """
    seed_index = _index_results(seed_run)
    current_index = _index_results(current_run)
    speedup = {}
    for key in sorted(seed_index.keys() & current_index.keys()):
        workload, n_processes = key
        current_wall = current_index[key]
        ratio = (seed_index[key] / current_wall) if current_wall > 0 else float("inf")
        speedup.setdefault(workload, {})[str(n_processes)] = round(ratio, 2)

    def verdict(workload, n_processes, required):
        target = speedup.get(workload, {}).get(str(n_processes))
        return {
            "point": {"workload": workload, "n_processes": n_processes},
            "threshold": required,
            "speedup": target,
            "pass": (target is not None and target >= required),
        }

    if points is not None:
        verdicts = [verdict(workload, n_processes, required)
                    for workload, n_processes, required in points]
        acceptance = {
            "points": verdicts,
            "pass": all(entry["pass"] for entry in verdicts),
        }
    else:
        acceptance = verdict(point[0], point[1], threshold)
    return speedup, acceptance


def update_bench_file(path, label, run, schema=SCHEMA, point=ACCEPTANCE_POINT,
                      threshold=ACCEPTANCE_THRESHOLD, points=None):
    """Merge one labelled *run* into the JSON file at *path*; returns the doc.

    Existing labels are preserved (re-running a label overwrites only that
    label).  Speedups and the acceptance verdict are recomputed whenever
    both ``seed`` and ``current`` are present.  *schema*, *point* and
    *threshold* default to this (kernel) suite's values; the cosim suite
    reuses the same file format with its own *points* list (one threshold
    per gated point, combined verdict).
    """
    path = Path(path)
    if path.exists():
        document = json.loads(path.read_text())
    else:
        document = {"schema": schema, "runs": {}}
    document.setdefault("schema", schema)
    document.setdefault("runs", {})[label] = run
    runs = document["runs"]
    if "seed" in runs and "current" in runs:
        speedup, acceptance = compute_speedups(runs["seed"], runs["current"],
                                               point=point, threshold=threshold,
                                               points=points)
        document["speedup"] = speedup
        document["acceptance"] = acceptance
    path.write_text(json.dumps(document, indent=2) + "\n")
    return document
