"""End-to-end co-simulation benchmark workloads.

Where :mod:`benchmarks.perf.workloads` measures the kernel alone, these
workloads drive the whole backplane — session build, clocked hardware
adapters, software activations, service FSMs — so the measured wall-clock
is what ``make conformance`` / ``make dse`` / ``make sweep`` actually pay
per simulated nanosecond.  Two scaling axes:

* :data:`transition_rate` — N hardware modules, each a datapath-heavy FSM
  firing one transition per clock edge.  Total FSM transition rate scales
  linearly with N and the per-transition expression work dominates, which
  is exactly the shape the compiled IR tier targets.  This carries the
  suite's acceptance criterion (compiled vs. interpreted-seed speedup).
* :data:`mixed_system` — N testkit-generated producer/consumer networks
  with the generator's random hardware/software split, channel kinds and
  service-call traffic, run to software completion.  FSMs are small, so
  this measures the realistic blend of kernel, backplane and FSM cost.

Sessions are prepared (built, FSMs compiled) **outside** the timed region:
program compilation is a once-per-FSM cost shared by every instance, not a
per-run scheduling cost.  Waveform tracing is disabled so the recorder does
not flatten the very ratio being measured.
"""

from repro.cosim import CosimSession
from repro.core import HardwareModule, SystemModel
from repro.ir import Assign, FsmBuilder, INT, var
from repro.ir.expr import BinOp
from repro.testkit.models import generate_system

#: Hardware clock period of the transition-rate workload (ns).
COSIM_CLOCK_PERIOD = 20

#: Rising edges executed per transition-rate point (full / quick tiers).
TRANSITION_EDGES = 300
TRANSITION_QUICK_EDGES = 30

#: Generator seed and fixed horizon of the mixed-system workload (ns).
MIXED_SEED = 977
MIXED_HORIZON = 200_000
MIXED_QUICK_HORIZON = 20_000


def _mix(dst, taps, modulus):
    """``dst = (weighted mix of taps) mod modulus`` with a deep BinOp tree."""
    acc = BinOp("mul", var(taps[0][0]), taps[0][1])
    for name, weight in taps[1:]:
        acc = BinOp("add", acc, BinOp("mul", var(name), weight))
    return Assign(dst, BinOp("mod", BinOp("add", acc, 13), modulus))


def datapath_fsm(name):
    """A three-state FSM with a filter-style datapath in every state.

    Each state updates an eight-register pipeline with multiply-accumulate
    trees (~130 IR nodes per activation) and always fires a transition, so
    stepping cost is dominated by expression evaluation at a fixed one
    transition per clock edge — the transition-rate-bound regime.
    """
    build = FsmBuilder(name)
    regs = [f"R{index}" for index in range(8)]
    for index, reg in enumerate(regs):
        build.variable(reg, INT, index + 1)
    build.variable("ACC", INT, 0)

    def stage(state, rotation):
        rotated = regs[rotation:] + regs[:rotation]
        for position, reg in enumerate(rotated):
            taps = [(rotated[(position + offset) % len(rotated)], 3 + 2 * offset)
                    for offset in range(3)]
            state.do(_mix(reg, taps, 251 + 2 * position))
        state.do(Assign("ACC", BinOp(
            "mod",
            BinOp("add", var("ACC"),
                  BinOp("add", BinOp("mul", var(rotated[0]), var(rotated[1])),
                        BinOp("max", var(rotated[2]), var(rotated[3])))),
            65521,
        )))

    with build.state("Fetch") as state:
        stage(state, 0)
        state.go("Execute", when=BinOp("ge", var("ACC"), 1024))
        state.go("Execute")
    with build.state("Execute") as state:
        stage(state, 3)
        state.go("Commit", when=BinOp("lt", var("R0"), var("R4")))
        state.go("Commit")
    with build.state("Commit") as state:
        stage(state, 5)
        state.go("Fetch")
    return build.build(initial="Fetch")


def prepare_transition_rate(n_modules, fsm_mode, system_mode=None,
                            quick=False):
    """N datapath modules on one clock; returns ``(session, run_callable)``."""
    model = SystemModel(f"TransitionRate{n_modules}")
    for index in range(n_modules):
        model.add_hardware_module(
            HardwareModule(f"Dp{index}", [datapath_fsm(f"DP{index}")])
        )
    session = CosimSession(model, clock_period=COSIM_CLOCK_PERIOD,
                           trace_signals=False, fsm_mode=fsm_mode,
                           system_mode=system_mode)
    session.build()
    edges = TRANSITION_QUICK_EDGES if quick else TRANSITION_EDGES
    horizon = edges * COSIM_CLOCK_PERIOD

    def run():
        session.run(until=horizon)

    return session, run


def prepare_mixed_system(n_networks, fsm_mode, system_mode=None,
                         quick=False):
    """N generated networks run over a fixed horizon.

    The horizon covers the transfers and the steady state after them
    (controllers and hardware FSMs keep stepping every clock edge), so the
    point measures the realistic backplane blend at a fixed amount of
    simulated time regardless of execution tier.
    """
    system = generate_system(MIXED_SEED, networks=n_networks)
    session = CosimSession(system.build_model(), fsm_mode=fsm_mode,
                           system_mode=system_mode,
                           trace_signals=False, **system.cosim_params)
    session.build()
    horizon = MIXED_QUICK_HORIZON if quick else MIXED_HORIZON

    def run():
        session.run(until=horizon)

    return session, run


class CosimWorkload:
    """One cosim benchmark scenario (name, scaling sizes, session factory)."""

    def __init__(self, name, description, preparer, sizes, quick_sizes):
        self.name = name
        self.description = description
        self.preparer = preparer
        self.sizes = tuple(sizes)
        self.quick_sizes = tuple(quick_sizes)

    def prepare(self, size, fsm_mode, system_mode=None, quick=False):
        """Build an un-run session; returns ``(session, run_callable)``."""
        return self.preparer(size, fsm_mode, system_mode=system_mode,
                             quick=quick)

    def __repr__(self):
        return f"CosimWorkload({self.name}, sizes={self.sizes})"


#: Registry of cosim workloads, in reporting order.  Quick sizes are a
#: subset of the full sizes, but quick points run shorter horizons — only
#: runs recorded at the same tier (quick vs. full) are wall-comparable,
#: which the --check gate enforces via the run's "quick" flag.
COSIM_WORKLOADS = [
    CosimWorkload(
        "transition_rate",
        "N hardware datapath FSMs, one transition per module per clock edge",
        prepare_transition_rate,
        sizes=(2, 8, 32),
        quick_sizes=(2, 8),
    ),
    CosimWorkload(
        "mixed_system",
        "N generated hw/sw networks with service traffic, run to completion",
        prepare_mixed_system,
        sizes=(1, 2, 4, 8),
        quick_sizes=(1, 2),
    ),
]
