"""Performance harnesses: the kernel suite and the co-simulation suite.

**Kernel suite** (``python -m benchmarks.perf`` -> ``BENCH_kernel.json``) —
measures the wall-clock cost of the :class:`repro.desim.Simulator` scheduling
core over workloads whose *population* (total process count) and *activity*
(processes actually running per delta cycle) are varied independently.  The
point of the split is the kernel's central performance claim: per-delta work
must be proportional to activity, not population.

**Cosim suite** (``python -m benchmarks.perf.cosim`` -> ``BENCH_cosim.json``)
— measures the end-to-end co-simulation backplane (FSM execution, adapters,
services) over module-count and transition-rate scaling; its seed label is
recorded with the interpreted FSM tier and its current label with the
compiled tier, so the speedup table tracks the compile tier's win.  See
:mod:`benchmarks.perf.cosim_workloads` and ``docs/perf.md``.

* **idle-heavy** — one clock plus one active counter process, and N idle
  generator processes each blocked in ``wait on <private signal> for <1 s>``
  (a signal that never changes, a timeout that never matures).  A good
  kernel's cost is flat in N; a kernel that scans every suspended process per
  delta cycle degrades linearly.
* **active-heavy** — N sensitivity-list processes all triggered by every
  rising clock edge.  Cost is necessarily linear in N for any kernel; this
  workload guards against the idle-heavy optimisations taxing the case where
  everything really is runnable.

The harness is deliberately dependency-free (``time.perf_counter`` only, no
pytest-benchmark) so it can run in any environment the kernel runs in.

Command line (see :mod:`benchmarks.perf.__main__`)::

    python -m benchmarks.perf --label seed      # record baseline numbers
    python -m benchmarks.perf --label current   # record post-change numbers
    python -m benchmarks.perf --quick           # smoke mode for CI

Results merge into ``BENCH_kernel.json`` at the repo root, keyed by label;
once both ``seed`` and ``current`` runs are present the file also reports
per-workload speedups and the acceptance verdict (>= 5x on the 10k-process
idle-heavy workload).
"""

from benchmarks.perf.harness import (
    DEFAULT_OUTPUT,
    FULL_PROCESS_COUNTS,
    QUICK_PROCESS_COUNTS,
    compute_speedups,
    run_suite,
    update_bench_file,
)
# The cosim suite (benchmarks.perf.cosim / .cosim_workloads) is imported
# directly by its consumers, not re-exported here: pulling it in would make
# the kernel-only suite pay the whole repro.cosim + repro.testkit import.
from benchmarks.perf.workloads import WORKLOADS, Workload

__all__ = [
    "DEFAULT_OUTPUT",
    "FULL_PROCESS_COUNTS",
    "QUICK_PROCESS_COUNTS",
    "WORKLOADS",
    "Workload",
    "compute_speedups",
    "run_suite",
    "update_bench_file",
]
