"""Benchmark workloads: simulations with known population/activity ratios.

Each :class:`Workload` builds a fresh :class:`repro.desim.Simulator` for a
requested process count and knows how long (in simulated nanoseconds) it
should run to execute a fixed number of clock edges.  Fixing the *edge*
count rather than the duration keeps the amount of useful work identical
across kernel versions, so wall-clock ratios measure scheduler overhead
only.
"""

from repro.desim import SignalChange, Simulator

#: Clock period shared by all workloads (ns).
CLOCK_PERIOD = 10

#: Timeout given to idle waiters: far beyond any benchmark horizon (1 s),
#: so it never matures but still occupies the kernel's timed-wait tracking.
IDLE_TIMEOUT = 1_000_000_000


class Workload:
    """One benchmark scenario.

    Parameters
    ----------
    name:
        Key used in results and on the command line.
    description:
        One-line human description stored in the output JSON.
    builder:
        Callable ``builder(n_processes) -> Simulator`` producing a fresh,
        un-started simulator.
    edges:
        Number of rising clock edges one full-mode run executes.
    quick_edges:
        Edge count used in ``--quick`` (smoke) mode.
    """

    def __init__(self, name, description, builder, edges, quick_edges):
        self.name = name
        self.description = description
        self.builder = builder
        self.edges = edges
        self.quick_edges = quick_edges

    def build(self, n_processes):
        """Return a fresh simulator populated with *n_processes* workers."""
        return self.builder(n_processes)

    def duration(self, quick=False):
        """Simulated time (ns) covering the configured number of edges."""
        edges = self.quick_edges if quick else self.edges
        return edges * CLOCK_PERIOD

    def __repr__(self):
        return f"Workload({self.name}, edges={self.edges})"


def build_idle_heavy(n_processes):
    """One active counter process + *n_processes* permanently idle waiters.

    Every idle process blocks on ``wait on <private signal> for 1 s``: the
    signal never changes and the timeout never matures inside the benchmark
    horizon, so the only runnable work per time point is the clock toggler
    and the counter.  Kernel cost should therefore be flat in *n_processes*.
    """
    sim = Simulator()
    clk = sim.add_clock("clk", period=CLOCK_PERIOD)
    ticks = {"count": 0}

    def counter():
        if clk.value == 1:
            ticks["count"] += 1

    sim.add_process("counter", counter, sensitivity=[clk], initial_run=False)

    for index in range(n_processes):
        idle_sig = sim.add_signal(f"idle_sig_{index}")

        def idle_waiter(idle_sig=idle_sig):
            while True:
                yield SignalChange(idle_sig, timeout=IDLE_TIMEOUT)

        sim.add_process(f"idle_{index}", idle_waiter)
    return sim


def build_active_heavy(n_processes):
    """*n_processes* sensitivity-list processes all firing on every edge.

    Every registered process is runnable on every clock change, so total
    work is inherently linear in *n_processes* for any kernel.  The
    workload exists to verify the idle-path optimisations add no per-run
    overhead when the population really is fully active.
    """
    sim = Simulator()
    clk = sim.add_clock("clk", period=CLOCK_PERIOD)
    counts = [0] * max(n_processes, 1)

    for index in range(n_processes):

        def worker(index=index):
            if clk.value == 1:
                counts[index] += 1

        sim.add_process(f"worker_{index}", worker, sensitivity=[clk],
                        initial_run=False)
    return sim


#: Registry of all workloads, in reporting order.
WORKLOADS = [
    Workload(
        "idle_heavy",
        "1 active counter + N idle signal-waiters with far-future timeouts",
        build_idle_heavy,
        edges=200,
        quick_edges=20,
    ),
    Workload(
        "active_heavy",
        "N sensitivity processes all firing on every clock edge",
        build_active_heavy,
        edges=50,
        quick_edges=5,
    ),
]
