"""Command-line entry point: ``python -m benchmarks.perf.cosim``.

The co-simulation counterpart of ``python -m benchmarks.perf``: times the
end-to-end backplane workloads of :mod:`benchmarks.perf.cosim_workloads`
and merges labelled runs into ``BENCH_cosim.json`` (same file format as
``BENCH_kernel.json``; the shared ``n_processes`` key holds the workload's
scale — modules or networks).  Typical sequence::

    python -m benchmarks.perf.cosim --label seed --fsm-mode interpreted
    python -m benchmarks.perf.cosim --label current          # compiled tier
    python -m benchmarks.perf.cosim --quick --label quick-baseline
    python -m benchmarks.perf.cosim --quick --check          # CI gate

``seed`` is recorded with the interpreted tier (the pre-compile-tier
behaviour) and ``current`` with the compiled tier, so the file's speedup
table *is* the compile tier's win; the acceptance criterion demands
:data:`ACCEPTANCE_THRESHOLD` x on the transition-rate workload's largest
point.  ``--check`` re-times the quick tier and fails when any point is
more than ``--max-slowdown`` slower than the recorded baseline label —
the CI regression gate.
"""

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from benchmarks.perf.cosim_workloads import COSIM_WORKLOADS
from benchmarks.perf.harness import update_bench_file

#: Required speedup of ``current`` (compiled) over ``seed`` (interpreted).
ACCEPTANCE_THRESHOLD = 5.0

#: The (workload, scale) point the acceptance criterion is read from.
ACCEPTANCE_POINT = ("transition_rate", 32)

#: Tolerated wall-clock ratio of a quick --check run vs. the recorded
#: baseline before the gate fails (absorbs runner-hardware variance).
DEFAULT_MAX_SLOWDOWN = 2.0

DEFAULT_BASELINE_LABEL = "quick-baseline"

DEFAULT_OUTPUT = Path(__file__).resolve().parents[2] / "BENCH_cosim.json"

SCHEMA = "bench-cosim/1"


def time_cosim_point(workload, size, fsm_mode, quick=False, repeats=1):
    """Time one (workload, scale) point; returns a result dict.

    The session is prepared — model built, signals registered, FSM programs
    compiled — outside the timed region; only the simulation run is timed.
    With *repeats* > 1 the minimum wall-clock is kept.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = None
    statistics = None
    counters = None
    for _ in range(repeats):
        session, run = workload.prepare(size, fsm_mode, quick=quick)
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            statistics = dict(session.simulator.statistics)
            counters = session.fsm_counters()
    return {
        "workload": workload.name,
        "n_processes": size,
        "fsm_mode": fsm_mode,
        "sim_ns": session.simulator.now,
        "wall_s": best,
        "statistics": statistics,
        "fsm": counters,
    }


def run_cosim_suite(quick=False, fsm_mode="compiled", repeats=1,
                    workloads=None, progress=None):
    """Run every cosim workload over its scale sweep; returns a run dict."""
    results = []
    for workload in (workloads or COSIM_WORKLOADS):
        sizes = workload.quick_sizes if quick else workload.sizes
        for size in sizes:
            point = time_cosim_point(workload, size, fsm_mode, quick=quick,
                                     repeats=repeats)
            results.append(point)
            if progress is not None:
                progress(
                    f"{workload.name:<16} n={size:<4} mode={fsm_mode:<11} "
                    f"wall={point['wall_s']:.4f}s "
                    f"fsm_steps={point['fsm']['steps']}"
                )
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "quick": bool(quick),
        "fsm_mode": fsm_mode,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
    }


def check_against_baseline(baseline_run, run, max_slowdown=DEFAULT_MAX_SLOWDOWN):
    """Compare *run* to *baseline_run* point-by-point; returns (ok, lines).

    Shared (workload, scale) points whose wall-clock exceeds
    ``max_slowdown * baseline`` fail the gate.  Having **no** shared points
    also fails — a silently vacuous gate is worse than a missing one.
    """
    baseline = {(p["workload"], p["n_processes"]): p["wall_s"]
                for p in baseline_run.get("results", ())}
    lines = []
    ok = True
    shared = 0
    for point in run.get("results", ()):
        key = (point["workload"], point["n_processes"])
        if key not in baseline:
            continue
        shared += 1
        ratio = (point["wall_s"] / baseline[key]) if baseline[key] > 0 else 0.0
        verdict = "ok" if ratio <= max_slowdown else "REGRESSED"
        if ratio > max_slowdown:
            ok = False
        lines.append(f"{key[0]:<16} n={key[1]:<4} baseline={baseline[key]:.4f}s "
                     f"now={point['wall_s']:.4f}s x{ratio:.2f} {verdict}")
    if not shared:
        ok = False
        lines.append("no shared points between this run and the baseline")
    return ok, lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf.cosim",
        description="Time end-to-end co-simulation workloads and merge the "
                    "results into BENCH_cosim.json.",
    )
    parser.add_argument("--label", default="current",
                        help="label to store this run under (default: "
                             "current; use 'seed' with --fsm-mode "
                             "interpreted to record the baseline)")
    parser.add_argument("--fsm-mode", default="compiled",
                        choices=("compiled", "interpreted"),
                        help="FSM execution tier to benchmark")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help="result JSON path (default: repo-root "
                             "BENCH_cosim.json)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: small scales and short horizons")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timed repetitions per point; best is kept")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without touching the JSON file")
    parser.add_argument("--check", action="store_true",
                        help="regression gate: run the quick tier and fail "
                             "when any point is more than --max-slowdown "
                             "slower than the recorded baseline label")
    parser.add_argument("--baseline-label", default=DEFAULT_BASELINE_LABEL,
                        help="label --check compares against (default: "
                             f"{DEFAULT_BASELINE_LABEL})")
    parser.add_argument("--max-slowdown", type=float,
                        default=DEFAULT_MAX_SLOWDOWN,
                        help="tolerated wall-clock ratio for --check "
                             f"(default: {DEFAULT_MAX_SLOWDOWN})")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")

    if args.check:
        path = Path(args.output)
        if not path.exists():
            print(f"error: no {path} to check against; record a "
                  f"'{args.baseline_label}' run first", file=sys.stderr)
            return 1
        document = json.loads(path.read_text())
        baseline_run = document.get("runs", {}).get(args.baseline_label)
        if baseline_run is None:
            print(f"error: {path} has no '{args.baseline_label}' run; "
                  f"record one with --quick --label {args.baseline_label}",
                  file=sys.stderr)
            return 1
        baseline_mode = baseline_run.get("fsm_mode")
        if baseline_mode != args.fsm_mode:
            # A baseline recorded on the wrong tier would make the gate
            # trivially green (or red); refuse rather than mislead.
            print(f"error: baseline '{args.baseline_label}' was recorded "
                  f"with fsm_mode={baseline_mode!r}, the check runs "
                  f"{args.fsm_mode!r}; re-record the baseline",
                  file=sys.stderr)
            return 1
        if not baseline_run.get("quick"):
            # A full-tier baseline does ~10x the quick tier's work per
            # point, which would make every ratio trivially green.
            print(f"error: baseline '{args.baseline_label}' was not "
                  "recorded with --quick; re-record it with "
                  f"--quick --label {args.baseline_label}", file=sys.stderr)
            return 1
        run = run_cosim_suite(quick=True, fsm_mode=args.fsm_mode,
                              repeats=max(args.repeats, 3), progress=print)
        ok, lines = check_against_baseline(baseline_run, run,
                                           max_slowdown=args.max_slowdown)
        # Hardware-independent part of the gate: with the compiled tier
        # requested, every FSM step must actually take the compiled path.
        if args.fsm_mode == "compiled":
            for point in run["results"]:
                counters = point["fsm"]
                if counters["fallback"] or not counters["compile_hits"]:
                    ok = False
                    lines.append(
                        f"{point['workload']:<16} n={point['n_processes']:<4} "
                        f"lost the compiled fast path: {counters}"
                    )
        print()
        print("\n".join(lines))
        print(f"cosim quick gate: {'PASS' if ok else 'FAIL'} "
              f"(max slowdown {args.max_slowdown}x vs "
              f"'{args.baseline_label}')")
        return 0 if ok else 1

    run = run_cosim_suite(quick=args.quick, fsm_mode=args.fsm_mode,
                          repeats=args.repeats, progress=print)
    if args.no_write:
        print(json.dumps(run, indent=2))
        return 0
    document = update_bench_file(args.output, args.label, run,
                                 schema=SCHEMA, point=ACCEPTANCE_POINT,
                                 threshold=ACCEPTANCE_THRESHOLD)
    print(f"\nwrote label {args.label!r} to {args.output}")
    acceptance = document.get("acceptance")
    if acceptance is not None:
        verdict = "PASS" if acceptance["pass"] else "FAIL"
        print(f"acceptance ({acceptance['point']['workload']} "
              f"n={acceptance['point']['n_processes']}): "
              f"speedup={acceptance['speedup']} "
              f"threshold={acceptance['threshold']} -> {verdict}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
