"""Command-line entry point: ``python -m benchmarks.perf.cosim``.

The co-simulation counterpart of ``python -m benchmarks.perf``: times the
end-to-end backplane workloads of :mod:`benchmarks.perf.cosim_workloads`
and merges labelled runs into ``BENCH_cosim.json`` (same file format as
``BENCH_kernel.json``; the shared ``n_processes`` key holds the workload's
scale — modules or networks).  Typical sequence::

    python -m benchmarks.perf.cosim --label seed --fsm-mode interpreted
    python -m benchmarks.perf.cosim --label current     # compiled + fused
    python -m benchmarks.perf.cosim --quick --label quick-baseline
    python -m benchmarks.perf.cosim --quick --check     # CI gate

``seed`` is recorded with the fully interpreted tiers (the pre-compile
behaviour: ``--fsm-mode interpreted`` implies the interpreted system tier)
and ``current`` with the compiled per-FSM tier inside the fused
whole-system program (:mod:`repro.ir.syscompile`), so the file's speedup
table *is* the compilation win.  The acceptance criteria demand
:data:`ACCEPTANCE_POINTS` — the transition-rate workload's largest point
**and** the mixed-system workload's largest point — plus the batched
multi-scenario amortization of :data:`BATCH_THRESHOLD` x recorded in each
run's ``batch`` section.  ``--check`` re-times the quick tier and fails
when any point is more than ``--max-slowdown`` slower than the recorded
baseline label, when a fast path was silently lost, when the batch
speedup falls under its threshold, or when the file's recorded acceptance
verdict itself is failing — the CI regression gate.
"""

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from benchmarks.perf.cosim_workloads import COSIM_WORKLOADS
from benchmarks.perf.harness import update_bench_file
from repro.ir.syscompile import DEFAULT_SYSTEM_MODE

#: The gated (workload, scale, required speedup) acceptance points of
#: ``current`` (compiled + fused) over ``seed`` (interpreted).
ACCEPTANCE_POINTS = [
    ("transition_rate", 32, 5.0),
    ("mixed_system", 8, 5.0),
]

#: Batched multi-scenario execution: generator seed, scenario counts and
#: the required batched-over-sequential speedup (ISSUE acceptance).
BATCH_SEED = 9
BATCH_SCENARIOS = 1000
BATCH_QUICK_SCENARIOS = 40
BATCH_THRESHOLD = 3.0

#: Tolerated wall-clock ratio of a quick --check run vs. the recorded
#: baseline before the gate fails (absorbs runner-hardware variance).
DEFAULT_MAX_SLOWDOWN = 2.0

DEFAULT_BASELINE_LABEL = "quick-baseline"

DEFAULT_OUTPUT = Path(__file__).resolve().parents[2] / "BENCH_cosim.json"

SCHEMA = "bench-cosim/2"


def resolve_system_mode(fsm_mode, system_mode=None):
    """The system tier a run uses when none is requested explicitly.

    An interpreted-FSM run means the *whole* stack runs on the oracle
    tiers (that is what the ``seed`` label records), so the system tier
    follows the FSM tier down; otherwise the project default applies.
    """
    if system_mode is not None:
        return system_mode
    return "interpreted" if fsm_mode == "interpreted" else DEFAULT_SYSTEM_MODE


def time_cosim_point(workload, size, fsm_mode, system_mode=None, quick=False,
                     repeats=1):
    """Time one (workload, scale) point; returns a result dict.

    The session is prepared — model built, signals registered, FSM and
    whole-system programs compiled — outside the timed region; only the
    simulation run is timed.  With *repeats* > 1 the minimum wall-clock is
    kept.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    system_mode = resolve_system_mode(fsm_mode, system_mode)
    best = None
    statistics = None
    counters = None
    tier = None
    for _ in range(repeats):
        session, run = workload.prepare(size, fsm_mode,
                                        system_mode=system_mode, quick=quick)
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            statistics = dict(session.simulator.statistics)
            counters = session.fsm_counters()
            tier = session.system_tier
    return {
        "workload": workload.name,
        "n_processes": size,
        "fsm_mode": fsm_mode,
        "system_mode": tier,
        "sim_ns": session.simulator.now,
        "wall_s": best,
        "statistics": statistics,
        "fsm": counters,
    }


def time_batch_point(quick=False, scenarios=None):
    """Batched vs. sequential execution of the same generated system.

    Runs :data:`BATCH_SEED`'s scenario *scenarios* times as independent
    ``CosimJob`` executions and once as a single ``CosimJob(batch=N)``,
    both under the project-default tiers, and reports the amortization
    speedup.  ``identical`` asserts the batched per-scenario fingerprints
    are byte-identical to the sequential ones — the speedup is only
    meaningful while that holds.
    """
    from repro.sweep.jobs import CosimJob

    count = (scenarios if scenarios is not None
             else (BATCH_QUICK_SCENARIOS if quick else BATCH_SCENARIOS))
    # Warm the per-process caches (FSM programs, generator corpus) outside
    # the timed region: both variants then start from the same state a
    # long-running sweep worker would be in.
    CosimJob(BATCH_SEED).execute()
    start = time.perf_counter()
    sequential = [CosimJob(BATCH_SEED).execute()[0] for _ in range(count)]
    sequential_wall = time.perf_counter() - start
    start = time.perf_counter()
    record, _ = CosimJob(BATCH_SEED, batch=count).execute()
    batch_wall = time.perf_counter() - start
    identical = (
        [entry["fingerprint_digest"] for entry in record["scenarios"]]
        == [entry["fingerprint_digest"] for entry in sequential]
    )
    return {
        "seed": BATCH_SEED,
        "scenarios": count,
        "system_mode": record["system_mode"],
        "sequential_wall_s": sequential_wall,
        "batch_wall_s": batch_wall,
        "speedup": (round(sequential_wall / batch_wall, 2)
                    if batch_wall > 0 else float("inf")),
        "threshold": BATCH_THRESHOLD,
        "identical": identical,
    }


def run_cosim_suite(quick=False, fsm_mode="compiled", system_mode=None,
                    repeats=1, workloads=None, progress=None,
                    include_batch=None):
    """Run every cosim workload over its scale sweep; returns a run dict.

    *include_batch* adds the batched-execution point (default: whenever the
    compiled tier is benchmarked — the batch path always runs the project
    defaults, so measuring it inside an interpreted seed run would be
    misleading).
    """
    system_mode = resolve_system_mode(fsm_mode, system_mode)
    results = []
    for workload in (workloads or COSIM_WORKLOADS):
        sizes = workload.quick_sizes if quick else workload.sizes
        for size in sizes:
            point = time_cosim_point(workload, size, fsm_mode,
                                     system_mode=system_mode, quick=quick,
                                     repeats=repeats)
            results.append(point)
            if progress is not None:
                progress(
                    f"{workload.name:<16} n={size:<4} mode={fsm_mode:<11} "
                    f"system={point['system_mode']:<8} "
                    f"wall={point['wall_s']:.4f}s "
                    f"fsm_steps={point['fsm']['steps']}"
                )
    run = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "quick": bool(quick),
        "fsm_mode": fsm_mode,
        "system_mode": system_mode,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
    }
    if include_batch is None:
        include_batch = fsm_mode == "compiled"
    if include_batch:
        batch = time_batch_point(quick=quick)
        run["batch"] = batch
        if progress is not None:
            progress(
                f"batch            n={batch['scenarios']:<4} "
                f"seq={batch['sequential_wall_s']:.4f}s "
                f"batch={batch['batch_wall_s']:.4f}s "
                f"x{batch['speedup']:.2f} "
                f"{'identical' if batch['identical'] else 'DIVERGED'}"
            )
    return run


def check_against_baseline(baseline_run, run, max_slowdown=DEFAULT_MAX_SLOWDOWN):
    """Compare *run* to *baseline_run* point-by-point; returns (ok, lines).

    Shared (workload, scale) points whose wall-clock exceeds
    ``max_slowdown * baseline`` fail the gate.  Having **no** shared points
    also fails — a silently vacuous gate is worse than a missing one.
    """
    baseline = {(p["workload"], p["n_processes"]): p["wall_s"]
                for p in baseline_run.get("results", ())}
    lines = []
    ok = True
    shared = 0
    for point in run.get("results", ()):
        key = (point["workload"], point["n_processes"])
        if key not in baseline:
            continue
        shared += 1
        ratio = (point["wall_s"] / baseline[key]) if baseline[key] > 0 else 0.0
        verdict = "ok" if ratio <= max_slowdown else "REGRESSED"
        if ratio > max_slowdown:
            ok = False
        lines.append(f"{key[0]:<16} n={key[1]:<4} baseline={baseline[key]:.4f}s "
                     f"now={point['wall_s']:.4f}s x{ratio:.2f} {verdict}")
    if not shared:
        ok = False
        lines.append("no shared points between this run and the baseline")
    return ok, lines


def check_fast_paths(run):
    """Counter-based (hardware-independent) gate lines; returns (ok, lines).

    With the fused system tier, every point must report zero runtime
    delegation (``system_fallback``) and nonzero fused activity; with the
    plain compiled tier, zero interpreter fallback and nonzero compiled
    activity.  A lost fast path fails the gate even when the wall-clock
    ratio happens to still look green.
    """
    ok = True
    lines = []
    for point in run.get("results", ()):
        counters = point["fsm"]
        prefix = f"{point['workload']:<16} n={point['n_processes']:<4}"
        if point.get("system_mode") == "fused":
            if (counters["system_fallback"]
                    or not counters["system_compile_hits"]
                    or counters["fallback"]):
                ok = False
                lines.append(f"{prefix} lost the fused fast path: {counters}")
        elif point.get("fsm_mode") == "compiled":
            if counters["fallback"] or not counters["compile_hits"]:
                ok = False
                lines.append(f"{prefix} lost the compiled fast path: {counters}")
    return ok, lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf.cosim",
        description="Time end-to-end co-simulation workloads and merge the "
                    "results into BENCH_cosim.json.",
    )
    parser.add_argument("--label", default="current",
                        help="label to store this run under (default: "
                             "current; use 'seed' with --fsm-mode "
                             "interpreted to record the baseline)")
    parser.add_argument("--fsm-mode", default="compiled",
                        choices=("compiled", "interpreted"),
                        help="FSM execution tier to benchmark")
    parser.add_argument("--system-mode", default=None,
                        choices=("fused", "per-fsm", "interpreted"),
                        help="whole-system execution tier (default: fused "
                             "for compiled runs, interpreted for "
                             "interpreted runs)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help="result JSON path (default: repo-root "
                             "BENCH_cosim.json)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: small scales and short horizons")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timed repetitions per point; best is kept")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without touching the JSON file")
    parser.add_argument("--check", action="store_true",
                        help="regression gate: run the quick tier and fail "
                             "when any point is more than --max-slowdown "
                             "slower than the recorded baseline label, a "
                             "fast path was lost, the batch speedup is "
                             "under threshold, or the file's recorded "
                             "acceptance verdict is failing")
    parser.add_argument("--baseline-label", default=DEFAULT_BASELINE_LABEL,
                        help="label --check compares against (default: "
                             f"{DEFAULT_BASELINE_LABEL})")
    parser.add_argument("--max-slowdown", type=float,
                        default=DEFAULT_MAX_SLOWDOWN,
                        help="tolerated wall-clock ratio for --check "
                             f"(default: {DEFAULT_MAX_SLOWDOWN})")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")
    system_mode = resolve_system_mode(args.fsm_mode, args.system_mode)

    if args.check:
        path = Path(args.output)
        if not path.exists():
            print(f"error: no {path} to check against; record a "
                  f"'{args.baseline_label}' run first", file=sys.stderr)
            return 1
        document = json.loads(path.read_text())
        baseline_run = document.get("runs", {}).get(args.baseline_label)
        if baseline_run is None:
            print(f"error: {path} has no '{args.baseline_label}' run; "
                  f"record one with --quick --label {args.baseline_label}",
                  file=sys.stderr)
            return 1
        baseline_mode = baseline_run.get("fsm_mode")
        if baseline_mode != args.fsm_mode:
            # A baseline recorded on the wrong tier would make the gate
            # trivially green (or red); refuse rather than mislead.
            print(f"error: baseline '{args.baseline_label}' was recorded "
                  f"with fsm_mode={baseline_mode!r}, the check runs "
                  f"{args.fsm_mode!r}; re-record the baseline",
                  file=sys.stderr)
            return 1
        baseline_system = baseline_run.get("system_mode")
        if baseline_system != system_mode:
            # Same refusal for the whole-system tier: a pre-fused baseline
            # (or one recorded per-FSM) is not wall-comparable to a fused
            # check run.
            print(f"error: baseline '{args.baseline_label}' was recorded "
                  f"with system_mode={baseline_system!r}, the check runs "
                  f"{system_mode!r}; re-record the baseline",
                  file=sys.stderr)
            return 1
        if not baseline_run.get("quick"):
            # A full-tier baseline does ~10x the quick tier's work per
            # point, which would make every ratio trivially green.
            print(f"error: baseline '{args.baseline_label}' was not "
                  "recorded with --quick; re-record it with "
                  f"--quick --label {args.baseline_label}", file=sys.stderr)
            return 1
        run = run_cosim_suite(quick=True, fsm_mode=args.fsm_mode,
                              system_mode=system_mode,
                              repeats=max(args.repeats, 3), progress=print)
        ok, lines = check_against_baseline(baseline_run, run,
                                           max_slowdown=args.max_slowdown)
        # Hardware-independent part of the gate: the requested fast paths
        # must actually have been taken.
        paths_ok, path_lines = check_fast_paths(run)
        ok = ok and paths_ok
        lines.extend(path_lines)
        batch = run.get("batch")
        if batch is not None:
            # The quick-scale batch (40 scenarios) amortizes less than the
            # recorded full point, so the absolute BATCH_THRESHOLD belongs
            # to the full-run record (checked below); the re-timed quick
            # speedup is regression-gated against the baseline's recorded
            # quick batch, same philosophy as the wall-clock points.
            base_batch = baseline_run.get("batch")
            floor = (base_batch["speedup"] / args.max_slowdown
                     if base_batch else batch["threshold"])
            verdict = "ok"
            if not batch["identical"]:
                ok = False
                verdict = "DIVERGED"
            elif batch["speedup"] < floor:
                ok = False
                verdict = "REGRESSED"
            lines.append(
                f"batch            n={batch['scenarios']:<4} "
                f"x{batch['speedup']:.2f} (need {floor:.2f}x) "
                f"{verdict}"
            )
        recorded_batch = document.get("runs", {}).get("current", {}).get("batch")
        if recorded_batch is not None and (
                not recorded_batch["identical"]
                or recorded_batch["speedup"] < recorded_batch["threshold"]):
            ok = False
            lines.append(
                f"recorded full-run batch failing: "
                f"x{recorded_batch['speedup']:.2f} "
                f"(need {recorded_batch['threshold']}x, identical="
                f"{recorded_batch['identical']})"
            )
        acceptance = document.get("acceptance")
        if acceptance is not None and not acceptance.get("pass"):
            ok = False
            lines.append(f"recorded acceptance verdict failing: {acceptance}")
        print()
        print("\n".join(lines))
        print(f"cosim quick gate: {'PASS' if ok else 'FAIL'} "
              f"(max slowdown {args.max_slowdown}x vs "
              f"'{args.baseline_label}')")
        return 0 if ok else 1

    run = run_cosim_suite(quick=args.quick, fsm_mode=args.fsm_mode,
                          system_mode=system_mode,
                          repeats=args.repeats, progress=print)
    if args.no_write:
        print(json.dumps(run, indent=2))
        return 0
    document = update_bench_file(args.output, args.label, run,
                                 schema=SCHEMA, points=ACCEPTANCE_POINTS)
    print(f"\nwrote label {args.label!r} to {args.output}")
    acceptance = document.get("acceptance")
    if acceptance is not None:
        for entry in acceptance["points"]:
            verdict = "PASS" if entry["pass"] else "FAIL"
            print(f"acceptance ({entry['point']['workload']} "
                  f"n={entry['point']['n_processes']}): "
                  f"speedup={entry['speedup']} "
                  f"threshold={entry['threshold']} -> {verdict}")
        print(f"acceptance overall: "
              f"{'PASS' if acceptance['pass'] else 'FAIL'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
