"""Command-line entry point: ``python -m benchmarks.perf``.

Typical sequence::

    python -m benchmarks.perf --label seed       # before a kernel change
    python -m benchmarks.perf --label current    # after the change
    python -m benchmarks.perf --quick            # CI smoke run (~1 s)

Both invocations merge into the same ``BENCH_kernel.json``; once seed and
current are both recorded the file carries speedups and the acceptance
verdict, which this entry point also prints.
"""

import argparse
import json
import sys

from benchmarks.perf.harness import DEFAULT_OUTPUT, run_suite, update_bench_file


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="Time the desim kernel over idle-heavy and active-heavy "
                    "workloads and merge the results into BENCH_kernel.json.",
    )
    parser.add_argument("--label", default="current",
                        help="label to store this run under (default: current; "
                             "use 'seed' to record a baseline)")
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT),
                        help="result JSON path (default: repo-root "
                             "BENCH_kernel.json)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: small sweeps and short horizons")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timed repetitions per point; best is kept")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without touching the JSON file")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")

    run = run_suite(quick=args.quick, repeats=args.repeats, progress=print)
    if args.no_write:
        print(json.dumps(run, indent=2))
        return 0
    document = update_bench_file(args.output, args.label, run)
    print(f"\nwrote label {args.label!r} to {args.output}")
    acceptance = document.get("acceptance")
    if acceptance is not None:
        verdict = "PASS" if acceptance["pass"] else "FAIL"
        print(f"acceptance ({acceptance['point']['workload']} "
              f"n={acceptance['point']['n_processes']}): "
              f"speedup={acceptance['speedup']} "
              f"threshold={acceptance['threshold']} -> {verdict}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
