"""FIG5 — the HW/SW communicating subsystems in co-simulation (paper Figure 5).

Runs the complete system and regenerates the interaction picture: every
access-procedure invocation crossing the SW/HW communication unit and the
HW/HW motor unit, with the controllers mediating each transfer.
"""

from benchmarks.conftest import run_motor_cosimulation, small_motor_config
from repro.analysis import interface_traffic


def run_fig5():
    config = small_motor_config()
    session, result = run_motor_cosimulation(config)
    return config, session, result


def test_fig5_interface_interaction(benchmark):
    config, session, result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    sw_hw_traffic = interface_traffic(result.trace, unit_name="SwHwUnit")
    motor_traffic = interface_traffic(result.trace, unit_name="MotorUnit")

    # Software side of the SW/HW unit (Distribution_Interface).
    assert sw_hw_traffic[("DistributionMod", "SetupControl")] == 1
    assert sw_hw_traffic[("DistributionMod", "MotorPosition")] == config.segments
    assert sw_hw_traffic[("DistributionMod", "ReadMotorState")] == config.segments
    # Hardware side of the SW/HW unit (SpeedControl_Interface).
    assert sw_hw_traffic[("SpeedControlMod", "ReadMotorConstraints")] == 1
    assert sw_hw_traffic[("SpeedControlMod", "ReadMotorPosition")] == config.segments
    assert sw_hw_traffic[("SpeedControlMod", "ReturnMotorState")] == config.segments
    # HW/HW unit (Motor_Interface): one pulse per step of travel.
    assert motor_traffic[("SpeedControlMod", "SendMotorPulses")] == config.total_travel

    # The handshake controller really mediated every command word.
    assert session.waveform.count_pulses("SwHwUnit_CMD_FULL") == 1 + config.segments

    print()
    print("FIG5: service invocations across the communication units")
    for (caller, service), count in sorted(sw_hw_traffic.items()):
        print(f"  SwHwUnit  {caller:18s} {service:22s} x{count}")
    for (caller, service), count in sorted(motor_traffic.items()):
        print(f"  MotorUnit {caller:18s} {service:22s} x{count}")
    print(f"  total service calls: {len(result.trace)}")
