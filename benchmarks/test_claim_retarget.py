"""CLAIM-RETARGET — "the same module descriptions are usable with different
architectures in terms of their underlying communication protocols" (paper §5).

The unchanged Adaptive Motor Controller model is mapped onto three targets by
swapping the SW synthesis views of its communication services: the PC-AT/FPGA
prototype, an embedded micro-coded platform and a multiprocessor backplane.
The bench compares the per-target communication primitives and software
timing — the shape expected from the paper is that retargeting changes only
the views and the cost of communication, never the module descriptions.
"""

from benchmarks.conftest import small_motor_config
from repro.apps.motor_controller import build_system, build_view_library_for
from repro.core.views import ViewKind
from repro.cosyn import CosynthesisFlow
from repro.platforms import get_platform
from repro.utils.text import format_table

TARGETS = ["pc_at_fpga", "microcoded", "multiproc"]
PRIMITIVE_MARKERS = {
    "pc_at_fpga": "outport(",
    "microcoded": "ucode_write(",
    "multiproc": "outport(",
}


def retarget_all():
    config = small_motor_config()
    platforms = {name: get_platform(name) for name in TARGETS}
    library = build_view_library_for(platforms, config)
    results = {}
    for name, platform in platforms.items():
        model, _ = build_system(config)
        results[name] = CosynthesisFlow(model, platform, library=library).run()
    return config, platforms, library, results


def test_claim_retargeting(benchmark):
    config, platforms, library, results = benchmark.pedantic(retarget_all,
                                                             rounds=1, iterations=1)

    # Every target received its own SW synthesis view of every SW-visible
    # service, generated from the same abstract description.
    for name in TARGETS:
        view = library.get("MotorPosition", ViewKind.SW_SYNTH, name)
        assert PRIMITIVE_MARKERS[name] in view.text
        assert results[name].ok, results[name].problems

    # The module behaviour (the generated module FSM function) is identical
    # across targets — only the communication primitives differ.
    def module_function(platform_name):
        text = results[platform_name].software_result("DistributionMod").program_text
        start = text.index("int DISTRIBUTION(void)")
        return text[start:text.index("int main(void)")]

    reference = module_function("pc_at_fpga")
    for name in TARGETS[1:]:
        assert module_function(name) == reference

    # Communication cost ordering: the micro-coded target has the cheapest
    # port accesses but the slowest processor; the PC-AT the fastest CPU.
    pc = results["pc_at_fpga"].software_activation_ns()
    micro = results["microcoded"].software_activation_ns()
    multi = results["multiproc"].software_activation_ns()
    assert pc < micro, "the 33 MHz PC-AT should out-run the 8 MHz embedded core"

    rows = []
    for name in TARGETS:
        result = results[name]
        platform = platforms[name]
        rows.append((
            name,
            PRIMITIVE_MARKERS[name].rstrip("("),
            f"{result.software_activation_ns():.0f}",
            result.system_clock_ns(),
            result.total_clbs(),
            "yes" if result.ok else "NO",
        ))
    print()
    print("CLAIM-RETARGET: one model, three targets")
    print(format_table(
        ["platform", "SW primitive", "sw activation (ns)", "hw clock (ns)",
         "CLBs", "constraints met"], rows))
    print(f"  (software activation: pc_at={pc:.0f} ns, microcoded={micro:.0f} ns, "
          f"multiproc={multi:.0f} ns)")
