"""FIG1 — the unified modelling methodology (paper Figure 1).

One system description (C-like software FSMs + VHDL-like hardware FSMs +
communication units from the library) feeds both branches of Figure 1:

* the **co-simulation** branch validates the system functionally,
* the **co-synthesis** branch produces the C program, the synthesized
  hardware and the communication binding for the PC-AT/FPGA platform.

The bench runs both branches from the *same* model object and checks each
produced what the figure promises.
"""

from benchmarks.conftest import run_motor_cosimulation, small_motor_config
from repro.apps.motor_controller import build_system, build_view_library_for
from repro.cosyn import CosynthesisFlow
from repro.platforms import get_platform


def run_both_branches():
    config = small_motor_config()
    model, _ = build_system(config)
    platform = get_platform("pc_at_fpga")
    library = build_view_library_for({platform.name: platform}, config)

    # Left branch of Figure 1: co-simulation.
    session, cosim_result = run_motor_cosimulation(config)

    # Right branch of Figure 1: co-synthesis (C compiler + HW synthesis).
    cosyn_result = CosynthesisFlow(model, platform, library=library).run()
    return config, session, cosim_result, cosyn_result


def test_fig1_one_description_two_flows(benchmark):
    config, session, cosim_result, cosyn_result = benchmark.pedantic(
        run_both_branches, rounds=1, iterations=1
    )

    # Co-simulation branch: functional validation succeeded.
    assert session.motor.position == config.final_position
    assert cosim_result.sw_finished["DistributionMod"]

    # Co-synthesis branch: SW compiled view, HW synthesis and binding exist.
    sw = cosyn_result.software_result("DistributionMod")
    hw = cosyn_result.hardware_result("SpeedControlMod")
    assert cosyn_result.ok
    assert "int DISTRIBUTION(void)" in sw.program_text
    assert hw.fits_device
    assert len(cosyn_result.address_map) > 0

    print()
    print("FIG1: unified methodology — both flows from one description")
    print(f"  co-simulation   : motor at {session.motor.position} "
          f"after {cosim_result.end_time} ns, "
          f"{len(cosim_result.trace)} service calls")
    print(f"  co-synthesis SW : {sw.code_size_bytes} bytes of C for "
          f"{sw.platform_name}")
    print(f"  co-synthesis HW : {hw.estimate.clbs_total} CLBs on "
          f"{hw.device.name}, clock {hw.clock_ns} ns")
    print(f"  binding         : {len(cosyn_result.address_map)} ports mapped from "
          f"0x{min(cosyn_result.address_map.values()):X}")
