"""CLAIM-COHERENCE — "coherence between the results of co-simulation and
co-synthesis" (paper §1 and §5).

The same model is executed twice through the backplane: once with the
nominal functional timing (the co-simulation step) and once with the timing
back-annotated from co-synthesis (the synthesized system on the PC-AT/FPGA
platform).  Every platform-independent observable must match.
"""

from benchmarks.conftest import small_motor_config
from repro.apps.motor_controller import (
    MotorControllerConfig,
    build_session,
    build_system,
    build_view_library_for,
    observables,
)
from repro.cosyn import CosynthesisFlow, check_coherence
from repro.platforms import get_platform


def run_coherence_check():
    config = small_motor_config()
    model, _ = build_system(config)
    platform = get_platform("pc_at_fpga")
    library = build_view_library_for({platform.name: platform}, config)
    cosyn_result = CosynthesisFlow(model, platform, library=library).run()

    def factory(clock_period, sw_activation_period):
        return build_session(small_motor_config(), clock_period=clock_period,
                             sw_activation_period=sw_activation_period)

    report = check_coherence(factory, observables, cosyn_result,
                             run_kwargs={"max_time": 50_000_000})
    return config, cosyn_result, report


def test_claim_coherence(benchmark):
    config, cosyn_result, report = benchmark.pedantic(run_coherence_check,
                                                      rounds=1, iterations=1)

    assert report.coherent, report.differences
    assert report.functional["motor_position"] == config.final_position
    assert report.platform_timed["motor_position"] == config.final_position
    assert report.functional["segments_commanded"] == config.segments
    # The platform-timed run is slower in wall-clock terms but functionally
    # identical — that is the coherence property.
    assert report.platform_timing["activation_ns"] > report.functional_timing["activation_ns"]

    print()
    print("CLAIM-COHERENCE: co-simulation vs synthesized implementation")
    print(report.as_table())
    print(f"  functional run : clock {report.functional_timing['clock_ns']} ns, "
          f"ended at {report.functional_timing['end_time_ns']} ns")
    print(f"  platform run   : clock {report.platform_timing['clock_ns']} ns, "
          f"sw activation {report.platform_timing['activation_ns']} ns, "
          f"ended at {report.platform_timing['end_time_ns']} ns")
    print(f"  coherent       : {report.coherent}")
