"""FIG2 — the communication unit concept (paper Figure 2).

A Host and a Server process communicate exclusively through the ``put`` and
``get`` access procedures of a communication unit; neither side knows the
other's implementation or the protocol run by the unit's controller.
"""

from repro.cosim import CosimSession

from tests.conftest import make_producer_consumer_model

WORDS = 8
FIRST_VALUE = 10


def run_fig2():
    model = make_producer_consumer_model(words=WORDS, start=FIRST_VALUE)
    session = CosimSession(model, clock_period=100)
    result = session.run_until_software_done(max_time=1_000_000)
    server = session.hardware_adapter("ServerMod").process_variables("SERVER")
    return model, session, result, server


def test_fig2_host_server_exchange(benchmark):
    model, session, result, server = benchmark(run_fig2)

    # The host (SW) only ever calls HostPut, the server (HW) only ServerGet.
    callers = {(record.caller, record.service) for record in result.trace.completed()}
    assert callers == {("HostMod", "HostPut"), ("ServerMod", "ServerGet")}

    # Every word arrived, in order, exactly once.
    expected_total = sum(range(FIRST_VALUE, FIRST_VALUE + WORDS))
    assert server["RECEIVED"] == WORDS
    assert server["TOTAL"] == expected_total

    # Neither module touches the unit's ports directly: all traffic went
    # through the access procedures (the trace accounts for every transfer).
    assert result.trace.count(service="HostPut") == WORDS
    assert result.trace.count(service="ServerGet") == WORDS

    print()
    print("FIG2: host/server exchange through a communication unit")
    print(f"  words transferred : {server['RECEIVED']}")
    print(f"  checksum          : {server['TOTAL']} (expected {expected_total})")
    print(f"  mean put latency  : {result.trace.mean_latency('HostPut'):.0f} ns")
    print(f"  mean get latency  : {result.trace.mean_latency('ServerGet'):.0f} ns")
