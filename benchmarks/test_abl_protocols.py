"""ABL-PROTOCOL — ablation of the communication-unit controller.

The paper argues that the controller "may range from a simple handshake
protocol to as complex as a layered protocol" without affecting the module
descriptions.  The ablation swaps the channel of the Figure-2 producer/
consumer system between three library protocols — single-register handshake,
FIFO and shared register — and measures per-word latency and the number of
controller state transitions.  Expected shape: the shared register is the
cheapest (but lossy), the handshake adds full flow control at a moderate
latency, the FIFO adds buffering at the highest controller cost.
"""

import pytest

from repro.comm import fifo_channel, handshake_channel, shared_register_channel
from repro.core import SystemModel
from repro.cosim import CosimSession
from repro.utils.text import format_table

from tests.conftest import make_host_module, make_server_module

WORDS = 6


def build_model(channel_factory):
    unit = channel_factory("Channel", put_name="HostPut", get_name="ServerGet",
                           put_interface="HostIf", get_interface="ServerIf")
    model = SystemModel("ProtocolAblation")
    model.add_comm_unit(unit)
    model.add_software_module(make_host_module(words=WORDS))
    model.add_hardware_module(make_server_module())
    model.bind("HostMod", "HostPut", "Channel")
    model.bind("ServerMod", "ServerGet", "Channel")
    return model


def run_protocol(channel_factory):
    model = build_model(channel_factory)
    session = CosimSession(model, clock_period=100)
    result = session.run_until_software_done(max_time=1_000_000)
    server = session.hardware_adapter("ServerMod").process_variables("SERVER")
    controller_steps = sum(
        instance.steps for instance in session.controller_instances.values()
    )
    return {
        "received": server["RECEIVED"],
        "total": server["TOTAL"],
        "put_latency": result.trace.mean_latency("HostPut"),
        "get_latency": result.trace.mean_latency("ServerGet"),
        "controller_steps": controller_steps,
        "end_time": result.end_time,
    }


FACTORIES = {
    "handshake": handshake_channel,
    "fifo": lambda *args, **kwargs: fifo_channel(*args, depth=4, **kwargs),
    "shared_register": shared_register_channel,
}


def run_all_protocols():
    return {name: run_protocol(factory) for name, factory in FACTORIES.items()}


def test_abl_protocols(benchmark):
    outcomes = benchmark.pedantic(run_all_protocols, rounds=1, iterations=1)
    handshake = outcomes["handshake"]
    fifo = outcomes["fifo"]
    shared = outcomes["shared_register"]

    expected_total = sum(range(10, 10 + WORDS))
    # Flow-controlled protocols deliver every word exactly once.
    assert handshake["received"] == WORDS and handshake["total"] == expected_total
    assert fifo["received"] == WORDS and fifo["total"] == expected_total
    # The shared register has no flow control: the consumer may re-read or
    # miss words, so only the *protocols with a controller* guarantee the sum.
    assert shared["received"] >= 1

    # Latency ordering: shared register < handshake; the FIFO pays at least
    # the handshake's producer-side cost and needs the busiest controller.
    assert shared["put_latency"] < handshake["put_latency"]
    assert fifo["controller_steps"] >= handshake["controller_steps"]
    # The module descriptions were identical in all three runs — only the
    # communication unit changed (that is the point of the ablation).

    rows = [
        (name,
         outcome["received"],
         f"{outcome['put_latency']:.0f}" if outcome["put_latency"] else "-",
         f"{outcome['get_latency']:.0f}" if outcome["get_latency"] else "-",
         outcome["controller_steps"],
         outcome["end_time"])
        for name, outcome in outcomes.items()
    ]
    print()
    print(f"ABL-PROTOCOL: {WORDS} words through three communication units")
    print(format_table(
        ["protocol", "words delivered", "put latency (ns)", "get latency (ns)",
         "controller steps", "sim time (ns)"], rows))
