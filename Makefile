PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-quick bench-seed conformance conformance-quick dse dse-quick sweep sweep-quick quickstart

test:
	$(PYTHON) -m pytest -x -q

# Full kernel perf sweep; merges a "current" run into BENCH_kernel.json.
bench:
	$(PYTHON) -m benchmarks.perf --label current

# ~1 s smoke run of the same harness (also exercised by the test suite).
bench-quick:
	$(PYTHON) -m benchmarks.perf --quick --label quick --no-write

# Record a baseline before touching the kernel.
bench-seed:
	$(PYTHON) -m benchmarks.perf --label seed

# Differential conformance sweep: 270+ generated scenarios run on both the
# production and reference kernels plus the cosim/cosyn oracles.
conformance:
	$(PYTHON) -m repro.testkit

# < 30 s smoke tier of the same kit (also exercised by the test suite).
conformance-quick:
	$(PYTHON) -m repro.testkit --quick

# Partition-explorer sweep: heuristic search over a 20+-module testkit
# workload on 4 workers, cosim-validated front, full JSON report.
dse:
	$(PYTHON) -m repro.dse --seed 0 --networks 9 --mode heuristic --workers 4 --validate --out dse_report.json

# < 30 s exhaustive smoke sweep (also exercised by the test suite and CI).
dse-quick:
	$(PYTHON) -m repro.dse --quick

# Batched scenario-sweep service: ≥100 generated jobs (kernel scenarios,
# cosim runs, cosyn flows) on 4 workers with a warm artefact cache.
sweep:
	$(PYTHON) -m repro.sweep --cache-dir .sweep-cache --out sweep_report.json

# < 30 s smoke batch asserting serial/parallel report parity and a
# warm-cache re-run with zero re-synthesis (also run by CI).
sweep-quick:
	$(PYTHON) -m repro.sweep --quick --selfcheck --workers 2

quickstart:
	$(PYTHON) examples/quickstart.py
