PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint lint-smoke bench bench-kernel bench-quick bench-seed bench-cosim bench-cosim-seed bench-cosim-quick bench-cosim-check conformance conformance-quick conformance-differential conformance-coverage dse dse-quick sweep sweep-quick server server-smoke obs-smoke quickstart

test:
	$(PYTHON) -m pytest -x -q

# Static analysis of the shipped applications; any finding (warning or
# error) fails.  See docs/lint.md for the rule catalog.
lint:
	$(PYTHON) -m repro.lint --fail-on warning

# CI gate: analyzer selfcheck (mutants must trip their rules, dynamic race
# cross-check, corpus clean) plus a strict lint of apps + 10 generated
# systems.
lint-smoke:
	$(PYTHON) -m repro.lint --selfcheck
	$(PYTHON) -m repro.lint --app motor --app two-axis \
		--seed 0 --seed 1 --seed 2 --seed 3 --seed 4 \
		--seed 5 --seed 6 --seed 7 --seed 8 --seed 9 --fail-on warning

# Both perf suites: kernel scheduling (BENCH_kernel.json) and end-to-end
# co-simulation (BENCH_cosim.json), each merging a "current" run.
bench: bench-kernel bench-cosim

# Full kernel perf sweep; merges a "current" run into BENCH_kernel.json.
bench-kernel:
	$(PYTHON) -m benchmarks.perf --label current --repeats 2

# ~1 s smoke run of the same harness (also exercised by the test suite).
bench-quick:
	$(PYTHON) -m benchmarks.perf --quick --label quick --no-write

# Record a baseline before touching the kernel (same repeats as
# bench-kernel so seed-vs-current ratios are comparably noise-filtered).
bench-seed:
	$(PYTHON) -m benchmarks.perf --label seed --repeats 2

# Full cosim perf sweep on the compiled FSM tier inside the fused
# whole-system program; merges "current" into BENCH_cosim.json
# (acceptance: >= 5x vs the interpreted seed on the largest
# transition-rate AND mixed-system points, plus >= 3x batched-vs-
# sequential amortization on the recorded batch section).
bench-cosim:
	$(PYTHON) -m benchmarks.perf.cosim --label current --repeats 2

# Record the interpreted-tier baseline the cosim speedups compare against.
bench-cosim-seed:
	$(PYTHON) -m benchmarks.perf.cosim --label seed --fsm-mode interpreted --repeats 2

# Smoke run of the cosim harness (no file writes).
bench-cosim-quick:
	$(PYTHON) -m benchmarks.perf.cosim --quick --label quick --no-write

# CI regression gate: quick cosim tier must stay within 2x of the recorded
# quick-baseline label in BENCH_cosim.json (refused if the baseline was
# recorded on a different fsm/system tier), every fast path must actually
# be taken, the batched amortization must hold its threshold, and the
# file's recorded acceptance verdict must be passing.
bench-cosim-check:
	$(PYTHON) -m benchmarks.perf.cosim --quick --check

# Differential conformance sweep: 270+ generated scenarios run on both the
# production and reference kernels plus the cosim/cosyn oracles.
conformance:
	$(PYTHON) -m repro.testkit

# < 30 s smoke tier of the same kit (also exercised by the test suite).
conformance-quick:
	$(PYTHON) -m repro.testkit --quick

# Whole-system tier oracle: every quick scenario byte-identical across the
# fused, per-FSM and interpreted system tiers on both kernels.
conformance-differential:
	$(PYTHON) -m repro.testkit --quick --system-mode differential

# Coverage-directed campaign: 24 novelty-weighted scenarios (plain, fault
# injection, platform-timed real-time) sharing one coverage map; fails
# below the recorded state-visit coverage floor.
conformance-coverage:
	$(PYTHON) -m repro.testkit --coverage --budget 24 --coverage-floor 0.9

# Partition-explorer sweep: heuristic search over a 20+-module testkit
# workload on 4 workers, cosim-validated front, full JSON report.
dse:
	$(PYTHON) -m repro.dse --seed 0 --networks 9 --mode heuristic --workers 4 --validate --out dse_report.json

# < 30 s exhaustive smoke sweep (also exercised by the test suite and CI).
dse-quick:
	$(PYTHON) -m repro.dse --quick

# Batched scenario-sweep service: ≥100 generated jobs (kernel scenarios,
# cosim runs, cosyn flows) on 4 workers with a warm artefact cache.
sweep:
	$(PYTHON) -m repro.sweep --cache-dir .sweep-cache --out sweep_report.json

# < 30 s smoke batch asserting serial/parallel report parity and a
# warm-cache re-run with zero re-synthesis (also run by CI).
sweep-quick:
	$(PYTHON) -m repro.sweep --quick --selfcheck --workers 2

# Long-lived co-design job service: POST sweep job specs over HTTP, jobs
# run on the shared worker pool with the warm artefact cache in front.
server:
	$(PYTHON) -m repro.server --port 8080 --cache-dir .sweep-cache

# End-to-end service check: concurrent clients submit every job kind,
# poll to done, fetch artifacts, verify a warm cacheable resubmission is
# served from cache and scrape /metrics (also run by CI).
server-smoke:
	$(PYTHON) -m repro.server --selfcheck

# Telemetry smoke: instrumented sweep, then validate the Chrome
# trace-event export and the Prometheus exposition plus the disabled
# no-op path (also run by CI).
obs-smoke:
	$(PYTHON) -m repro.obs selfcheck --quick

quickstart:
	$(PYTHON) examples/quickstart.py
