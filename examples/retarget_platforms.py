"""Multi-platform retargeting through the multi-view library (paper §3/§5).

The same Adaptive Motor Controller model is mapped onto three different
targets — the PC-AT/FPGA prototype, a UNIX-IPC workstation (all software)
and an embedded micro-coded platform — only by switching the SW synthesis
views of its communication services.  The module descriptions themselves are
untouched, which is the paper's central retargetability claim.

Run with::

    python examples/retarget_platforms.py
"""

from repro.apps.motor_controller import (
    MotorControllerConfig,
    build_system,
    build_view_library_for,
)
from repro.core.views import ViewKind
from repro.cosyn import CosynthesisFlow
from repro.platforms import get_platform
from repro.utils.text import format_table

TARGETS = ["pc_at_fpga", "microcoded", "multiproc"]


def main():
    config = MotorControllerConfig()
    platforms = {name: get_platform(name) for name in TARGETS}
    library = build_view_library_for(platforms, config)

    print(f"multi-view library: {len(library)} views for services "
          f"{library.services()}")
    print(f"platforms with SW synthesis views: {library.platforms()}")
    print()

    # Show how the same access procedure expands differently per platform.
    for platform_name in TARGETS:
        view = library.get("MotorPosition", ViewKind.SW_SYNTH, platform_name)
        first_io_line = next(
            (line.strip() for line in view.text.splitlines()
             if "outport" in line or "ipc_send" in line or "ucode_write" in line),
            "(no port access)",
        )
        print(f"{platform_name:12s} MotorPosition data write -> {first_io_line}")
    print()

    rows = []
    for platform_name in TARGETS:
        platform = platforms[platform_name]
        model, _ = build_system(config)
        flow = CosynthesisFlow(model, platform, library=library)
        result = flow.run()
        hw_clbs = result.total_clbs() if platform.has_hardware else 0
        rows.append((
            platform_name,
            "yes" if result.ok else "NO",
            round(result.software_activation_ns(), 0),
            result.system_clock_ns(),
            hw_clbs,
        ))
    print(format_table(
        ["platform", "constraints met", "sw activation (ns)", "hw clock (ns)", "CLBs"],
        rows,
    ))


if __name__ == "__main__":
    main()
