"""The paper's motivating 2-D scenario: one motor and controller per axis.

Two complete Distribution / Speed Control chains — one for X, one for Y, each
with its own SW/HW and HW/HW communication units — run concurrently in one
co-simulation.  The X axis travels further than the Y axis, so the example
also shows the two software subsystems finishing at different times while
the hardware clock is shared.

Run with::

    python examples/two_axis_table.py
"""

from repro.apps.motor_controller import MotorControllerConfig
from repro.apps.motor_controller.two_axis import (
    build_two_axis_session,
    two_axis_observables,
)
from repro.utils.text import format_table


def main():
    config_x = MotorControllerConfig(final_position=60, segment=15, speed_limit=8)
    config_y = MotorControllerConfig(final_position=24, segment=8, speed_limit=4)

    session = build_two_axis_session(config_x, config_y)
    result = session.run_until_software_done(max_time=20_000_000)
    outcome = two_axis_observables(session, result)

    print("2-D table co-simulation finished at", result.end_time, "ns")
    rows = [
        (axis,
         data["position"],
         data["pulses"],
         data["segments"],
         "yes" if data["finished"] else "no")
        for axis, data in outcome.items()
    ]
    print(format_table(["axis", "final position", "pulses", "segments", "finished"],
                       rows))
    print()
    print("service calls per axis interface:")
    for axis in ("X", "Y"):
        count = result.trace.count(caller=f"DistributionMod{axis}")
        print(f"  DistributionMod{axis}: {count} software-side service completions")

    assert outcome["X"]["position"] == config_x.final_position
    assert outcome["Y"]["position"] == config_y.final_position
    assert outcome["X"]["missed_pulses"] == outcome["Y"]["missed_pulses"] == 0


if __name__ == "__main__":
    main()
