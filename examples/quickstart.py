"""Quickstart: the communication-unit concept of the paper's Figure 2.

A software *Host* module and a hardware *Server* module exchange five words
through a communication unit offering two access procedures (``HostPut`` and
``ServerGet``).  The same abstract service description then yields the three
views of the paper's Figure 3: the SW simulation view, a SW synthesis view
for the PC-AT target, and the HW view.

Run with::

    python examples/quickstart.py
"""

from repro.comm import handshake_channel
from repro.comm.generator import generate_service_views
from repro.core import SystemModel, SoftwareModule, HardwareModule, ViewKind
from repro.cosim import CosimSession
from repro.ir import FsmBuilder, Assign, var, INT
from repro.platforms import get_platform

WORDS_TO_SEND = 5


def build_host():
    """Software producer: sends WORDS_TO_SEND increasing values."""
    build = FsmBuilder("HOST")
    build.variable("VALUE", INT, 10)
    build.variable("COUNT", INT, 0)
    with build.state("Send") as state:
        state.call("HostPut", args=[var("VALUE")], then="Advance")
    with build.state("Advance") as state:
        state.go("Finish", when=var("COUNT").ge(WORDS_TO_SEND - 1))
        state.go("Send", actions=[Assign("VALUE", var("VALUE") + 1),
                                  Assign("COUNT", var("COUNT") + 1)])
    with build.state("Finish", done=True) as state:
        state.stay()
    return SoftwareModule("HostMod", build.build(initial="Send"),
                          description="software host sending words")


def build_server():
    """Hardware consumer: accumulates every received word."""
    build = FsmBuilder("SERVER")
    build.variable("RX", INT, 0)
    build.variable("TOTAL", INT, 0)
    build.variable("RECEIVED", INT, 0)
    with build.state("Receive") as state:
        state.call("ServerGet", store="RX", then="Accumulate")
    with build.state("Accumulate") as state:
        state.go("Receive", actions=[Assign("TOTAL", var("TOTAL") + var("RX")),
                                     Assign("RECEIVED", var("RECEIVED") + 1)])
    return HardwareModule("ServerMod", [build.build(initial="Receive")],
                          description="hardware server accumulating words")


def main():
    # 1. Build the system: one communication unit, one SW and one HW module.
    channel = handshake_channel("Channel", put_name="HostPut", get_name="ServerGet",
                                prefix="HS", put_interface="HostIf",
                                get_interface="ServerIf")
    model = SystemModel("ProducerConsumer")
    model.add_comm_unit(channel)
    model.add_software_module(build_host())
    model.add_hardware_module(build_server())
    model.bind("HostMod", "HostPut", "Channel")
    model.bind("ServerMod", "ServerGet", "Channel")

    # 2. Co-simulate.
    session = CosimSession(model, clock_period=100)
    result = session.run_until_software_done(max_time=100_000)
    server = session.hardware_adapter("ServerMod").process_variables("SERVER")
    print("co-simulation finished at", result.end_time, "ns")
    print("server received", server["RECEIVED"], "words, total =", server["TOTAL"])
    print()
    print("service-call trace:")
    print(result.trace.as_table())

    # 3. Generate the three views of the HostPut access procedure (Figure 3).
    platform = get_platform("pc_at_fpga")
    views = generate_service_views(
        channel, "HostPut",
        platforms={"pc_at_fpga": platform.port_syntax(list(channel.ports))},
    )
    for view in views:
        title = f"{view.kind.value} view ({view.language})"
        print()
        print("=" * len(title))
        print(title)
        print("=" * len(title))
        print(view.text)

    assert server["RECEIVED"] == WORDS_TO_SEND
    assert any(view.kind is ViewKind.SW_SYNTH for view in views)


if __name__ == "__main__":
    main()
