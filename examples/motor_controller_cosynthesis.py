"""Co-synthesis of the Adaptive Motor Controller onto the paper's prototype.

Maps the same system model used for co-simulation onto the 386 PC-AT + ISA
bus + Xilinx XC4000 FPGA platform (paper Figure 8):

* the Distribution subsystem becomes a C program whose communication
  primitives are ``inport``/``outport`` accesses at the ISA base address,
* the Speed Control subsystem goes through high-level synthesis (scheduling,
  allocation, FSMD construction) and is estimated against the FPGA,
* the communication units are bound to physical addresses,
* the synthesized system (with back-annotated timing) is re-simulated and
  compared with the functional co-simulation — the coherence property that
  motivates the unified model.

Run with::

    python examples/motor_controller_cosynthesis.py
"""

from repro.analysis import back_annotate
from repro.apps.motor_controller import (
    MotorControllerConfig,
    build_session,
    build_system,
    build_view_library_for,
    observables,
)
from repro.cosyn import CosynthesisFlow, check_coherence
from repro.platforms import get_platform


def main():
    config = MotorControllerConfig()
    model, _ = build_system(config)
    platform = get_platform("pc_at_fpga")
    library = build_view_library_for({platform.name: platform}, config)

    flow = CosynthesisFlow(model, platform, library=library)
    result = flow.run()
    print(result.report())
    print()

    annotation = back_annotate(result)
    print("back-annotation:", annotation)
    print("platform-timed simulation parameters:", annotation.session_parameters())
    print()

    def session_factory(clock_period, sw_activation_period):
        return build_session(MotorControllerConfig(), clock_period=clock_period,
                             sw_activation_period=sw_activation_period)

    coherence = check_coherence(session_factory, observables, result,
                                run_kwargs={"max_time": 20_000_000})
    print(coherence.report())

    sw = result.software_result("DistributionMod")
    print()
    print("generated C program for the PC-AT (excerpt):")
    print("\n".join(sw.program_text.splitlines()[:40]))

    hw = result.hardware_result("SpeedControlMod")
    print()
    print("generated behavioural VHDL for the FPGA (excerpt):")
    print("\n".join(hw.behavioural_vhdl.splitlines()[:30]))

    assert result.ok, f"co-synthesis constraints violated: {result.problems}"
    assert coherence.coherent, f"coherence differences: {coherence.differences}"


if __name__ == "__main__":
    main()
