"""Co-simulation of the Adaptive Motor Controller (paper §4, Figures 4-7).

Builds the complete system — software Distribution subsystem, hardware Speed
Control subsystem (Position / Core / Timer units), the SW/HW and HW/HW
communication units and the motor's physical model — and validates it
functionally: the motor must reach the commanded final position, the pulse
train must respect the motor's minimum pulse period and the first pulse must
follow the software command within the response bound.

Run with::

    python examples/motor_controller_cosim.py
"""

from repro.analysis.metrics import latency_table, service_latency_stats
from repro.apps.motor_controller import (
    MotorControllerConfig,
    RealTimeConstraints,
    build_session,
    observables,
)


def main():
    config = MotorControllerConfig(final_position=60, segment=15, speed_limit=8)
    print("scenario:", config)
    print("expected segments:", config.segments)
    print()

    session = build_session(config, clock_period=100)
    result = session.run_until_software_done(max_time=10_000_000)

    print("co-simulation finished at", result.end_time, "ns")
    print("system topology:")
    for key, value in session.model.topology().items():
        if key != "bindings":
            print(f"  {key}: {value}")
    print()

    print("functional outcome:")
    for key, value in observables(session, result).items():
        print(f"  {key}: {value}")
    print()

    print("per-service latency over the SW/HW interface:")
    print(latency_table(service_latency_stats(result.trace)))
    print()

    constraints = RealTimeConstraints(config)
    report = constraints.check(session, result)
    print("real-time constraint report:")
    print(RealTimeConstraints.as_table(report))

    assert report["ok"], "the co-simulated system violates its constraints"
    assert session.motor.position == config.final_position


if __name__ == "__main__":
    main()
