"""The content-addressed artefact cache: hit/miss, corruption, concurrency."""

import json
import multiprocessing
import os

from repro.sweep.cache import ArtifactCache
from repro.utils.canonical import canonical_json, content_digest


SPEC = {"kind": "cosyn", "seed": 3, "networks": None,
        "platform": "pc_at_fpga", "hw_modules": ["Prod0"]}
PAYLOAD = {"ok": True, "total_clbs": 41, "hardware": {"Prod0": {"clbs": 41}}}


class TestArtifactCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for(SPEC)
        assert cache.get(key) is None
        cache.put(key, PAYLOAD)
        assert cache.get(key) == PAYLOAD
        assert cache.stats == {"hits": 1, "misses": 1, "writes": 1,
                               "invalidated": 0}

    def test_keys_are_stable_and_order_independent(self):
        reordered = dict(reversed(list(SPEC.items())))
        assert ArtifactCache.key_for(SPEC) == ArtifactCache.key_for(reordered)
        assert ArtifactCache.key_for(SPEC) != ArtifactCache.key_for(
            {**SPEC, "seed": 4})

    def test_cache_survives_process_boundaries_via_directory(self, tmp_path):
        key = ArtifactCache.key_for(SPEC)
        ArtifactCache(tmp_path).put(key, PAYLOAD)
        fresh = ArtifactCache(tmp_path)
        assert fresh.get(key) == PAYLOAD

    def test_unparsable_entry_is_invalidated(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for(SPEC)
        cache.put(key, PAYLOAD)
        path = cache._path(key)
        with open(path, "w") as handle:
            handle.write("{ not json")
        assert cache.get(key) is None
        assert not os.path.exists(path), "corrupted entry must be deleted"
        assert cache.stats["invalidated"] == 1
        # ...and the slot is usable again.
        cache.put(key, PAYLOAD)
        assert cache.get(key) == PAYLOAD

    def test_truncated_entry_is_invalidated(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for(SPEC)
        cache.put(key, PAYLOAD)
        path = cache._path(key)
        blob = open(path).read()
        with open(path, "w") as handle:
            handle.write(blob[: len(blob) // 2])
        assert cache.get(key) is None
        assert cache.stats["invalidated"] == 1

    def test_payload_tamper_fails_the_checksum(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for(SPEC)
        cache.put(key, PAYLOAD)
        path = cache._path(key)
        envelope = json.load(open(path))
        envelope["payload"]["total_clbs"] = 9999  # checksum now stale
        with open(path, "w") as handle:
            handle.write(canonical_json(envelope))
        assert cache.get(key) is None
        assert cache.stats["invalidated"] == 1

    def test_wrong_key_in_envelope_is_invalidated(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for(SPEC)
        cache.put(key, PAYLOAD)
        path = cache._path(key)
        envelope = json.load(open(path))
        envelope["key"] = "0" * 64
        envelope["sha256"] = content_digest(envelope["payload"])
        with open(path, "w") as handle:
            handle.write(canonical_json(envelope))
        assert cache.get(key) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for index in range(5):
            cache.put(ArtifactCache.key_for({"n": index}), {"v": index})
        leftovers = [name for _, _, files in os.walk(tmp_path)
                     for name in files if name.endswith(".tmp")]
        assert leftovers == []

    def test_invalidation_spares_a_concurrently_replaced_entry(self, tmp_path):
        """A reader that judged a corrupt inode must not delete its successor.

        Interleaving: reader opens the (corrupt) entry and fails the parse;
        before it gets to unlink, a concurrent writer ``put``-s a fresh,
        valid entry over the same path (``os.replace`` → new inode).  The
        inode-guarded invalidation must notice the swap and keep the fresh
        entry readable.
        """
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for(SPEC)
        cache.put(key, PAYLOAD)
        path = cache._path(key)
        with open(path, "w") as handle:
            handle.write("{ corrupt")
        status = os.stat(path)
        stamp = (status.st_dev, status.st_ino)  # what the failed read saw
        ArtifactCache(tmp_path).put(key, PAYLOAD)  # concurrent fresh write
        cache._invalidate(path, stamp)
        assert ArtifactCache(tmp_path).get(key) == PAYLOAD

    def test_unguarded_invalidation_still_deletes(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for(SPEC)
        cache.put(key, PAYLOAD)
        cache._invalidate(cache._path(key))
        assert not os.path.exists(cache._path(key))


# ---------------------------------------------------------------------------
# Multi-process stress: the threaded/process-pooled server hammers one cache
# directory from many writers and readers at once.

_KEYS = 3


def _stress_payload(index):
    return {"v": index, "blob": "x" * 512 * (index + 1)}


def _stress_worker(root, worker, rounds, failures):
    cache = ArtifactCache(root)
    problems = []
    for step in range(rounds):
        index = (worker + step) % _KEYS
        key = ArtifactCache.key_for({"stress": index})
        try:
            if step % 3 == 0:
                cache.put(key, _stress_payload(index))
            got = cache.get(key)
            if got is not None and got != _stress_payload(index):
                problems.append(f"worker {worker} step {step}: wrong payload")
        except Exception as exc:  # noqa: BLE001 — any leak is the failure
            problems.append(f"worker {worker} step {step}: {exc!r}")
    failures.extend(problems)


class TestArtifactCacheConcurrency:
    def test_multiprocess_same_key_put_get_stress(self, tmp_path):
        """Concurrent same-key puts/gets: never an exception, never a torn
        or foreign payload, and every entry is valid once the dust settles.
        """
        context = multiprocessing.get_context("fork")
        with multiprocessing.Manager() as manager:
            failures = manager.list()
            workers = [
                context.Process(target=_stress_worker,
                                args=(str(tmp_path), worker, 150, failures))
                for worker in range(4)
            ]
            for process in workers:
                process.start()
            for process in workers:
                process.join(timeout=120)
            assert all(process.exitcode == 0 for process in workers)
            assert list(failures) == []
        cache = ArtifactCache(tmp_path)
        for index in range(_KEYS):
            key = ArtifactCache.key_for({"stress": index})
            assert cache.get(key) == _stress_payload(index)
        assert cache.stats["invalidated"] == 0
