"""The content-addressed artefact cache: hit/miss, corruption safety."""

import json
import os

from repro.sweep.cache import ArtifactCache
from repro.utils.canonical import canonical_json, content_digest


SPEC = {"kind": "cosyn", "seed": 3, "networks": None,
        "platform": "pc_at_fpga", "hw_modules": ["Prod0"]}
PAYLOAD = {"ok": True, "total_clbs": 41, "hardware": {"Prod0": {"clbs": 41}}}


class TestArtifactCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for(SPEC)
        assert cache.get(key) is None
        cache.put(key, PAYLOAD)
        assert cache.get(key) == PAYLOAD
        assert cache.stats == {"hits": 1, "misses": 1, "writes": 1,
                               "invalidated": 0}

    def test_keys_are_stable_and_order_independent(self):
        reordered = dict(reversed(list(SPEC.items())))
        assert ArtifactCache.key_for(SPEC) == ArtifactCache.key_for(reordered)
        assert ArtifactCache.key_for(SPEC) != ArtifactCache.key_for(
            {**SPEC, "seed": 4})

    def test_cache_survives_process_boundaries_via_directory(self, tmp_path):
        key = ArtifactCache.key_for(SPEC)
        ArtifactCache(tmp_path).put(key, PAYLOAD)
        fresh = ArtifactCache(tmp_path)
        assert fresh.get(key) == PAYLOAD

    def test_unparsable_entry_is_invalidated(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for(SPEC)
        cache.put(key, PAYLOAD)
        path = cache._path(key)
        with open(path, "w") as handle:
            handle.write("{ not json")
        assert cache.get(key) is None
        assert not os.path.exists(path), "corrupted entry must be deleted"
        assert cache.stats["invalidated"] == 1
        # ...and the slot is usable again.
        cache.put(key, PAYLOAD)
        assert cache.get(key) == PAYLOAD

    def test_truncated_entry_is_invalidated(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for(SPEC)
        cache.put(key, PAYLOAD)
        path = cache._path(key)
        blob = open(path).read()
        with open(path, "w") as handle:
            handle.write(blob[: len(blob) // 2])
        assert cache.get(key) is None
        assert cache.stats["invalidated"] == 1

    def test_payload_tamper_fails_the_checksum(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for(SPEC)
        cache.put(key, PAYLOAD)
        path = cache._path(key)
        envelope = json.load(open(path))
        envelope["payload"]["total_clbs"] = 9999  # checksum now stale
        with open(path, "w") as handle:
            handle.write(canonical_json(envelope))
        assert cache.get(key) is None
        assert cache.stats["invalidated"] == 1

    def test_wrong_key_in_envelope_is_invalidated(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.key_for(SPEC)
        cache.put(key, PAYLOAD)
        path = cache._path(key)
        envelope = json.load(open(path))
        envelope["key"] = "0" * 64
        envelope["sha256"] = content_digest(envelope["payload"])
        with open(path, "w") as handle:
            handle.write(canonical_json(envelope))
        assert cache.get(key) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for index in range(5):
            cache.put(ArtifactCache.key_for({"n": index}), {"v": index})
        leftovers = [name for _, _, files in os.walk(tmp_path)
                     for name in files if name.endswith(".tmp")]
        assert leftovers == []
