"""Unit tests of the co-simulation building blocks (accessors, trace, policies)."""

import pytest

from repro.cosim import (
    CliPortAccessor,
    OneTransitionPerActivation,
    RunToIdle,
    ServiceCallTrace,
    SignalPortAccessor,
)
from repro.cosim.services import ServiceInstance, ServiceRegistry
from repro.desim import Simulator
from repro.ir import Assign, FsmBuilder, FsmInstance, INT, var
from repro.utils.errors import SimulationError

from tests.conftest import make_put_like_service


class TestPortAccessors:
    def _simulator_with_signals(self):
        sim = Simulator()
        data = sim.add_signal("U_DATAIN", init=0)
        full = sim.add_signal("U_FULL", init=0)
        return sim, {"DATAIN": data, "B_FULL": full}

    def test_signal_accessor_reads_current_value(self):
        sim, signal_map = self._simulator_with_signals()
        accessor = SignalPortAccessor(sim, signal_map)
        assert accessor.read("B_FULL") == 0
        assert accessor.reads == 1

    def test_signal_accessor_write_is_delta_delayed(self):
        sim, signal_map = self._simulator_with_signals()
        accessor = SignalPortAccessor(sim, signal_map)
        accessor.write("DATAIN", 9)
        assert signal_map["DATAIN"].value == 0, "visible only after the update phase"
        sim.run()
        assert signal_map["DATAIN"].value == 9

    def test_unknown_port_raises(self):
        sim, signal_map = self._simulator_with_signals()
        accessor = SignalPortAccessor(sim, signal_map, writer="test")
        with pytest.raises(SimulationError, match="unknown port"):
            accessor.read("MISSING")

    def test_cli_accessor_exposes_paper_api(self):
        sim, signal_map = self._simulator_with_signals()
        accessor = CliPortAccessor(sim, signal_map)
        assert accessor.cli_get_port_value("B_FULL") == 0
        accessor.cli_output("DATAIN", 3)
        sim.run()
        assert signal_map["DATAIN"].value == 3
        assert accessor.reads == 1 and accessor.writes == 1

    def test_extend_adds_ports(self):
        sim, signal_map = self._simulator_with_signals()
        accessor = SignalPortAccessor(sim, {})
        accessor.extend(signal_map)
        assert set(accessor.known_ports()) == {"DATAIN", "B_FULL"}


class TestServiceCallTrace:
    def test_begin_is_idempotent_while_pending(self):
        trace = ServiceCallTrace()
        first = trace.begin("Mod", "Svc", "Unit", 100)
        again = trace.begin("Mod", "Svc", "Unit", 200)
        assert first is again
        assert first.steps == 2
        assert len(trace) == 1

    def test_complete_closes_the_pending_record(self):
        trace = ServiceCallTrace()
        trace.begin("Mod", "Svc", "Unit", 100)
        record = trace.complete("Mod", "Svc", 400, result=7)
        assert record.latency == 300
        assert record.result == 7
        assert trace.count(service="Svc") == 1

    def test_complete_without_begin_returns_none(self):
        trace = ServiceCallTrace()
        assert trace.complete("Mod", "Svc", 10) is None

    def test_statistics_and_filtering(self):
        trace = ServiceCallTrace()
        for start, end in [(0, 100), (200, 500)]:
            trace.begin("A", "Put", "U", start)
            trace.complete("A", "Put", end)
        trace.begin("B", "Get", "U", 50)
        trace.complete("B", "Get", 60)
        assert trace.mean_latency(service="Put") == pytest.approx(200)
        assert trace.count(caller="A") == 2
        assert trace.services_seen() == ["Get", "Put"]
        table = trace.as_table()
        assert "Put" in table and "Get" in table


class TestBackToBackInvocations:
    def _one_step_service(self):
        from repro.core.service import Service, ServiceParam

        build = FsmBuilder("ECHO")
        build.variable("REQUEST", INT, 0)
        with build.state("Go") as state:
            state.go("Done")
        with build.state("Done", done=True) as state:
            state.go("Go")
        return Service("ECHO", build.build(initial="Go"),
                       params=[ServiceParam("REQUEST", INT)],
                       interface="HostIf")

    def test_same_delta_invocations_get_distinct_records(self):
        # Two back-to-back invocations of one service by one caller at the
        # same simulation time used to merge into a single trace record
        # (keyed by (caller, service)), halving the call count and skewing
        # mean_latency; the instance's invocation token keeps them apart.
        sim = Simulator()
        trace = ServiceCallTrace()
        instance = ServiceInstance("Caller", self._one_step_service(), "Unit",
                                   SignalPortAccessor(sim, {}), trace=trace,
                                   time_fn=lambda: sim.now)
        assert instance.step([7]) == (True, None)
        assert instance.step([8]) == (True, None)
        assert len(trace) == 2
        assert trace.count(caller="Caller", service="ECHO") == 2
        assert [record.args for record in trace.records] == [(7,), (8,)]
        assert trace.mean_latency(service="ECHO") == 0

    def test_trace_tokens_separate_overlapping_invocations(self):
        trace = ServiceCallTrace()
        trace.begin("M", "Svc", "U", 100, token=0)
        trace.begin("M", "Svc", "U", 110, token=0)  # second step, same call
        trace.complete("M", "Svc", 120, token=0)
        trace.begin("M", "Svc", "U", 120, token=1)
        trace.complete("M", "Svc", 200, token=1)
        assert len(trace) == 2
        assert [record.latency for record in trace.records] == [20, 80]
        assert trace.records[0].steps == 2


class TestActivationPolicies:
    def _stepper_fsm(self, limit=10):
        build = FsmBuilder("STEPPER")
        build.variable("COUNT", INT, 0)
        with build.state("Run") as state:
            state.do(Assign("COUNT", var("COUNT") + 1))
            state.go("Stop", when=var("COUNT").ge(limit))
            state.stay()
        with build.state("Stop", done=True) as state:
            state.stay()
        return build.build(initial="Run")

    def test_one_transition_per_activation(self):
        instance = FsmInstance(self._stepper_fsm())
        policy = OneTransitionPerActivation()
        results = policy.activate(instance)
        assert len(results) == 1
        assert instance.env["COUNT"] == 1

    def test_run_to_idle_executes_until_done(self):
        instance = FsmInstance(self._stepper_fsm(limit=5))
        policy = RunToIdle(max_steps_per_activation=64)
        results = policy.activate(instance)
        assert results[-1].done
        assert len(results) == 5

    def test_run_to_idle_bounded(self):
        instance = FsmInstance(self._stepper_fsm(limit=1000))
        policy = RunToIdle(max_steps_per_activation=8)
        assert len(policy.activate(instance)) == 8

    def test_run_to_idle_validates_bound(self):
        with pytest.raises(SimulationError):
            RunToIdle(max_steps_per_activation=0)


class TestServiceRegistry:
    def test_registry_dispatch_and_argument_check(self, put_service):
        sim = Simulator()
        signals = {
            "DATAIN": sim.add_signal("DATAIN", init=0),
            "B_FULL": sim.add_signal("B_FULL", init=0),
            "PUTRDY": sim.add_signal("PUTRDY", init=0),
        }
        accessor = SignalPortAccessor(sim, signals)
        trace = ServiceCallTrace()
        registry = ServiceRegistry("Caller")
        instance = registry.add(
            ServiceInstance("Caller", put_service, "Unit", accessor, trace=trace,
                            time_fn=lambda: sim.now)
        )
        handler = registry.call_handler()
        done, _ = handler(type("C", (), {"service": "PUT"})(), [42])
        assert not done
        assert instance.total_steps == 1
        assert len(trace) == 1
        with pytest.raises(SimulationError, match="arguments"):
            instance.step([1, 2])
        with pytest.raises(SimulationError):
            registry.get("Missing")
