"""Unit tests of the waveform recorder."""

from repro.desim import Simulator, Timeout, WaveformRecorder


def _run_small_trace():
    sim = Simulator()
    data = sim.add_signal("data", init=0)
    strobe = sim.add_signal("strobe", init=0)
    recorder = sim.add_recorder(WaveformRecorder())

    def stim():
        yield Timeout(10)
        sim.schedule(data, 5)
        sim.schedule(strobe, 1)
        yield Timeout(10)
        sim.schedule(strobe, 0)
        yield Timeout(10)
        sim.schedule(data, 9)
        sim.schedule(strobe, 1)
        yield Timeout(10)
        sim.schedule(strobe, 0)

    sim.add_process("stim", stim)
    sim.run()
    return recorder


class TestWaveformRecorder:
    def test_history_is_time_ordered(self):
        recorder = _run_small_trace()
        history = recorder.history("data")
        assert history == [(10, 5), (30, 9)]

    def test_value_at_interpolates_between_changes(self):
        recorder = _run_small_trace()
        assert recorder.value_at("data", 0) == 0
        assert recorder.value_at("data", 10) == 5
        assert recorder.value_at("data", 29) == 5
        assert recorder.value_at("data", 1000) == 9

    def test_count_pulses_counts_rising_transitions(self):
        recorder = _run_small_trace()
        assert recorder.count_pulses("strobe") == 2

    def test_edge_times(self):
        recorder = _run_small_trace()
        assert recorder.edge_times("strobe") == [10, 30]

    def test_unknown_signal_has_empty_history(self):
        recorder = _run_small_trace()
        assert recorder.history("does_not_exist") == []
        assert recorder.count_pulses("does_not_exist") == 0

    def test_dump_contains_all_changes(self):
        recorder = _run_small_trace()
        dump = recorder.dump(["data", "strobe"])
        assert "data" in dump and "strobe" in dump
        assert dump.count("\n") >= 6

    def test_vcd_export_structure(self):
        recorder = _run_small_trace()
        vcd = recorder.to_vcd(["data", "strobe"])
        assert vcd.startswith("$timescale 1ns $end")
        assert "$enddefinitions $end" in vcd
        assert "#10" in vcd and "#30" in vcd

    def test_vcd_integers_are_binary_vectors_not_reals(self):
        # r<value> changes on a $var wire are invalid VCD that standard
        # viewers reject; integers must be emitted as b<binary> vectors.
        recorder = _run_small_trace()
        vcd = recorder.to_vcd(["data", "strobe"])
        assert "r5" not in vcd and "r9" not in vcd
        assert "b101 !" in vcd  # data == 5 at t=10, code '!' is the first name
        assert "b1001 !" in vcd  # data == 9 at t=30

    def test_vcd_widths_are_honest(self):
        # data takes values {0, 5, 9} -> 4 bits; strobe {0, 1} -> 1-bit
        # scalar wire using the 0/1 shorthand.
        recorder = _run_small_trace()
        vcd = recorder.to_vcd(["data", "strobe"])
        assert '$var wire 4 ! data $end' in vcd
        assert '$var wire 1 " strobe $end' in vcd
        assert '1"' in vcd and '0"' in vcd
        assert "$var wire 32" not in vcd

    def test_vcd_initial_values_present(self):
        recorder = _run_small_trace()
        vcd = recorder.to_vcd(["data", "strobe"]).splitlines()
        at_zero = vcd[vcd.index("#0") + 1:vcd.index("#10")]
        assert at_zero == ["b0 !", '0"']

    def test_vcd_mixed_int_float_signal_stays_real_throughout(self):
        # A signal that carried both ints and floats is declared real;
        # every numeric change must then be an r change — b-vectors on a
        # real variable are just as invalid as r on a wire.
        sim = Simulator()
        temp = sim.add_signal("temp", init=0)
        recorder = sim.add_recorder(WaveformRecorder())

        def stim():
            yield Timeout(10)
            sim.schedule(temp, 2.5)
            yield Timeout(10)
            sim.schedule(temp, 3)

        sim.add_process("stim", stim)
        sim.run()
        vcd = recorder.to_vcd(["temp"])
        assert "$var real 64 ! temp $end" in vcd
        assert "r0.0 !" in vcd and "r2.5 !" in vcd and "r3.0 !" in vcd
        assert "b" not in vcd.split("$enddefinitions $end")[1]

    def test_late_registered_signal_keeps_true_initial_value(self):
        # A signal added after start() must not be assumed to start at 0:
        # the kernel announces it and the recorder pins its real initial
        # value, so value_at/count_pulses/edge_times stay truthful.
        sim = Simulator()
        sim.add_signal("early", init=2)
        recorder = sim.add_recorder(WaveformRecorder())

        def stim():
            yield Timeout(5)
            late = sim.add_signal("late", init=7)
            yield Timeout(5)
            sim.schedule(late, 7)  # no event: same value
            yield Timeout(5)
            sim.schedule(late, 1)

        sim.add_process("stim", stim)
        sim.run(until=40)
        assert recorder.initial_value("late") == 7
        assert recorder.value_at("late", 6) == 7
        assert recorder.value_at("late", 20) == 1
        # 7 -> 1 is not a rising edge to level 7; and with the honest
        # initial value the 7 at t=10 is not a pulse either.
        assert recorder.count_pulses("late", level=7) == 0
        assert recorder.edge_times("late", level=1) == [15]

    def test_merge_sort_survives_heterogeneous_values_on_time_ties(self):
        # One signal changing twice within a single time point (two delta
        # cycles), once to an int and once to a str, used to make
        # dump()/to_vcd() compare the values on the (time, name) tie and
        # raise TypeError; the sort keys on (time, name) only and is
        # stable, so the delta order survives.
        from repro.desim import Delta

        sim = Simulator()
        status = sim.add_signal("status", init=0)
        recorder = sim.add_recorder(WaveformRecorder())

        def stim():
            yield Timeout(10)
            sim.schedule(status, 3)
            yield Delta()
            sim.schedule(status, "overflow")

        sim.add_process("stim", stim)
        sim.run()
        assert recorder.history("status") == [(10, 3), (10, "overflow")]
        dump = recorder.dump()
        assert "overflow" in dump and "3" in dump
        vcd = recorder.to_vcd()
        assert "b11 !" in vcd and "soverflow !" in vcd

    def test_filtered_recorder_ignores_other_signals(self):
        sim = Simulator()
        keep = sim.add_signal("keep", init=0)
        sim.add_signal("drop", init=0)
        recorder = sim.add_recorder(WaveformRecorder([keep]))

        def stim():
            yield Timeout(5)
            sim.schedule(sim.signal("keep"), 1)
            sim.schedule(sim.signal("drop"), 1)

        sim.add_process("stim", stim)
        sim.run()
        assert recorder.history("keep") == [(5, 1)]
        assert recorder.history("drop") == []
