"""Unit tests of the waveform recorder."""

from repro.desim import Simulator, Timeout, WaveformRecorder


def _run_small_trace():
    sim = Simulator()
    data = sim.add_signal("data", init=0)
    strobe = sim.add_signal("strobe", init=0)
    recorder = sim.add_recorder(WaveformRecorder())

    def stim():
        yield Timeout(10)
        sim.schedule(data, 5)
        sim.schedule(strobe, 1)
        yield Timeout(10)
        sim.schedule(strobe, 0)
        yield Timeout(10)
        sim.schedule(data, 9)
        sim.schedule(strobe, 1)
        yield Timeout(10)
        sim.schedule(strobe, 0)

    sim.add_process("stim", stim)
    sim.run()
    return recorder


class TestWaveformRecorder:
    def test_history_is_time_ordered(self):
        recorder = _run_small_trace()
        history = recorder.history("data")
        assert history == [(10, 5), (30, 9)]

    def test_value_at_interpolates_between_changes(self):
        recorder = _run_small_trace()
        assert recorder.value_at("data", 0) == 0
        assert recorder.value_at("data", 10) == 5
        assert recorder.value_at("data", 29) == 5
        assert recorder.value_at("data", 1000) == 9

    def test_count_pulses_counts_rising_transitions(self):
        recorder = _run_small_trace()
        assert recorder.count_pulses("strobe") == 2

    def test_edge_times(self):
        recorder = _run_small_trace()
        assert recorder.edge_times("strobe") == [10, 30]

    def test_unknown_signal_has_empty_history(self):
        recorder = _run_small_trace()
        assert recorder.history("does_not_exist") == []
        assert recorder.count_pulses("does_not_exist") == 0

    def test_dump_contains_all_changes(self):
        recorder = _run_small_trace()
        dump = recorder.dump(["data", "strobe"])
        assert "data" in dump and "strobe" in dump
        assert dump.count("\n") >= 6

    def test_vcd_export_structure(self):
        recorder = _run_small_trace()
        vcd = recorder.to_vcd(["data", "strobe"])
        assert vcd.startswith("$timescale 1ns $end")
        assert "$enddefinitions $end" in vcd
        assert "#10" in vcd and "#30" in vcd

    def test_filtered_recorder_ignores_other_signals(self):
        sim = Simulator()
        keep = sim.add_signal("keep", init=0)
        sim.add_signal("drop", init=0)
        recorder = sim.add_recorder(WaveformRecorder([keep]))

        def stim():
            yield Timeout(5)
            sim.schedule(sim.signal("keep"), 1)
            sim.schedule(sim.signal("drop"), 1)

        sim.add_process("stim", stim)
        sim.run()
        assert recorder.history("keep") == [(5, 1)]
        assert recorder.history("drop") == []
