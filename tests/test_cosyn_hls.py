"""Unit tests of the high-level synthesis passes (DFG, scheduling, allocation,
FSMD, estimation, RTL)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cosyn.hls import (
    allocate,
    asap_schedule,
    alap_schedule,
    build_fsmd,
    build_fsm_dfgs,
    build_netlist,
    build_state_dfg,
    emit_rtl_vhdl,
    estimate_fsmd,
    list_schedule,
)
from repro.cosyn.hls.dfg import DataFlowGraph, Operation
from repro.cosyn.hls.scheduling import DEFAULT_RESOURCES
from repro.ir import Assign, FsmBuilder, If, INT, PortWrite, port, var
from repro.ir.expr import BinOp
from repro.ir.fsm import State
from repro.platforms.fpga import XC4005, XC4010
from repro.utils.errors import SynthesisError


def arithmetic_state():
    """A state with enough arithmetic to make scheduling interesting."""
    return State("Compute", actions=[
        Assign("d", (var("a") + var("b")) * var("c")),
        Assign("e", var("d") - var("a")),
        Assign("f", BinOp("min", var("e"), var("b"))),
        PortWrite("OUTP", var("f") + var("d")),
    ])


def arithmetic_fsm():
    build = FsmBuilder("ARITH")
    for name in ("a", "b", "c", "d", "e", "f"):
        build.variable(name, INT, 1)
    with build.state("Compute") as state:
        state.do(Assign("d", (var("a") + var("b")) * var("c")),
                 Assign("e", var("d") - var("a")),
                 Assign("f", BinOp("min", var("e"), var("b"))),
                 PortWrite("OUTP", var("f") + var("d")))
        state.go("Emit")
    with build.state("Emit") as state:
        state.do(PortWrite("OUTP", var("f")))
        state.go("Compute", when=port("GO").eq(1))
        state.stay()
    return build.build(initial="Compute")


class TestDfg:
    def test_operations_extracted_with_dependencies(self):
        dfg = build_state_dfg(arithmetic_state())
        assert len(dfg) >= 5
        assert dfg.critical_length() >= 3
        histogram = dfg.operator_histogram()
        assert histogram.get("add", 0) >= 1
        assert histogram.get("mul", 0) == 1
        assert "OUTP" in dfg.port_writes

    def test_port_reads_recorded(self):
        state = State("Read", actions=[Assign("x", port("INP") + 1)])
        dfg = build_state_dfg(state)
        assert dfg.port_reads == ["INP"]

    def test_guard_expressions_contribute_operations(self):
        build = FsmBuilder("G")
        build.variable("x", INT, 0)
        with build.state("S") as state:
            state.go("S", when=(var("x") + 1).gt(3))
        fsm = build.build(initial="S")
        dfgs = build_fsm_dfgs(fsm)
        assert len(dfgs["S"]) >= 2

    def test_conditional_statements_flattened(self):
        state = State("C", actions=[
            If(var("x").gt(0), [Assign("y", var("x") + 1)], [Assign("y", 0)]),
        ])
        dfg = build_state_dfg(state)
        assert len(dfg) >= 3

    def test_empty_state_gives_empty_dfg(self):
        dfg = build_state_dfg(State("Empty"))
        assert len(dfg) == 0
        assert dfg.critical_length() == 0

    def test_roots_have_no_predecessors(self):
        dfg = build_state_dfg(arithmetic_state())
        for root in dfg.roots():
            assert dfg.predecessors(root.op_id) == []

    def test_unknown_operation_lookup(self):
        dfg = DataFlowGraph("S")
        with pytest.raises(SynthesisError):
            dfg.operation("nope")


class TestScheduling:
    def test_asap_respects_dependencies(self):
        dfg = build_state_dfg(arithmetic_state())
        schedule = asap_schedule(dfg)
        assert schedule.verify() == []
        assert schedule.length == dfg.critical_length()

    def test_alap_respects_latency_bound(self):
        dfg = build_state_dfg(arithmetic_state())
        asap = asap_schedule(dfg)
        alap = alap_schedule(dfg, latency=asap.length + 2)
        assert alap.verify() == []
        assert alap.length <= asap.length + 2

    def test_alap_below_critical_path_rejected(self):
        dfg = build_state_dfg(arithmetic_state())
        with pytest.raises(SynthesisError):
            alap_schedule(dfg, latency=1)

    def test_list_schedule_respects_resources(self):
        dfg = build_state_dfg(arithmetic_state())
        schedule = list_schedule(dfg, {"alu": 1, "mult": 1, "cmp": 1, "logic": 1,
                                       "divider": 1, "move": 4})
        assert schedule.verify() == []
        assert schedule.fu_usage().get("alu", 0) <= 1

    def test_list_schedule_with_more_resources_is_never_longer(self):
        dfg = build_state_dfg(arithmetic_state())
        tight = list_schedule(dfg, dict(DEFAULT_RESOURCES, alu=1))
        wide = list_schedule(dfg, dict(DEFAULT_RESOURCES, alu=4))
        assert wide.length <= tight.length

    def test_missing_resource_class_rejected(self):
        dfg = build_state_dfg(arithmetic_state())
        with pytest.raises(SynthesisError):
            list_schedule(dfg, {"alu": 1, "cmp": 1, "logic": 1, "divider": 1, "move": 4,
                                "mult": 0})

    def test_cycle_detection(self):
        dfg = DataFlowGraph("Loop")
        dfg.add_operation(Operation("op1", "add", [("var", "a")]))
        dfg.add_operation(Operation("op2", "add", [("op", "op1")]))
        dfg.add_edge("op1", "op2")
        dfg.add_edge("op2", "op1")
        with pytest.raises(SynthesisError, match="cycle"):
            asap_schedule(dfg)

    @given(alus=st.integers(min_value=1, max_value=3),
           multipliers=st.integers(min_value=1, max_value=2))
    @settings(max_examples=20, deadline=None)
    def test_list_schedule_always_valid_for_any_resource_mix(self, alus, multipliers):
        dfg = build_state_dfg(arithmetic_state())
        resources = dict(DEFAULT_RESOURCES, alu=alus, mult=multipliers)
        schedule = list_schedule(dfg, resources)
        assert schedule.verify() == []
        usage = schedule.fu_usage()
        assert usage.get("alu", 0) <= alus
        assert usage.get("mult", 0) <= multipliers


class TestAllocationAndFsmd:
    def _synthesize(self, resources=None):
        fsm = arithmetic_fsm()
        dfgs = build_fsm_dfgs(fsm)
        schedules = {name: list_schedule(dfg, resources) for name, dfg in dfgs.items()}
        allocation = allocate(fsm, schedules)
        fsmd = build_fsmd(fsm, schedules, allocation)
        return fsm, schedules, allocation, fsmd

    def test_allocation_counts_units_and_registers(self):
        fsm, schedules, allocation, _ = self._synthesize()
        assert allocation.unit_count() >= 2
        assert allocation.register_count() >= len(fsm.variables)
        summary = allocation.summary()
        assert summary["fsm"] == "ARITH"

    def test_every_real_operation_is_bound(self):
        _, schedules, allocation, _ = self._synthesize()
        for schedule in schedules.values():
            for operation in schedule.dfg.operations:
                assert operation.op_id in allocation.operation_binding

    def test_fsmd_expands_multi_step_states(self):
        fsm, schedules, _, fsmd = self._synthesize()
        compute_states = fsmd.states_of("Compute")
        assert len(compute_states) == max(1, schedules["Compute"].length)
        assert fsmd.state_count >= len(fsm.states)
        assert fsmd.controller_bits() >= 1
        summary = fsmd.summary()
        assert summary["behavioural_states"] == 2

    def test_estimate_produces_positive_area_and_delay(self):
        _, _, _, fsmd = self._synthesize()
        estimate = estimate_fsmd(fsmd)
        assert estimate.clbs_total > 0
        assert estimate.critical_path_ns > 0
        assert estimate.max_frequency_hz > 1e6
        assert estimate.fits(XC4010)
        detail = estimate.as_dict()
        assert detail["clbs_total"] == estimate.clbs_total

    def test_estimate_merge(self):
        _, _, _, fsmd = self._synthesize()
        one = estimate_fsmd(fsmd)
        both = one.merge(one)
        assert both.clbs_total == 2 * one.clbs_total
        assert both.critical_path_ns == one.critical_path_ns

    def test_fewer_resources_give_smaller_datapath(self):
        _, _, tight_alloc, tight_fsmd = self._synthesize(
            dict(DEFAULT_RESOURCES, alu=1))
        _, _, wide_alloc, wide_fsmd = self._synthesize(
            dict(DEFAULT_RESOURCES, alu=4))
        tight = estimate_fsmd(tight_fsmd)
        wide = estimate_fsmd(wide_fsmd)
        assert tight.clbs_datapath <= wide.clbs_datapath

    def test_netlist_and_rtl_emission(self):
        _, _, _, fsmd = self._synthesize()
        netlist = build_netlist(fsmd)
        assert len(netlist.components_of_kind("register")) >= 6
        assert len(netlist.components_of_kind("fsm_controller")) == 1
        assert "component" in netlist.summary_table()
        rtl = emit_rtl_vhdl(fsmd, netlist)
        assert "entity ARITH_rtl is" in rtl
        assert "architecture rtl of ARITH_rtl is" in rtl
        assert "type control_state is" in rtl
        assert "rising_edge(clk)" in rtl
