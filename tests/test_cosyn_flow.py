"""Tests of software synthesis, hardware synthesis, the flow driver and coherence."""

import pytest

from repro.analysis import back_annotate
from repro.apps.motor_controller import (
    MotorControllerConfig,
    build_session,
    build_system,
    build_view_library_for,
    observables,
)
from repro.cosyn import CosynthesisFlow, TargetArchitecture, check_coherence
from repro.cosyn.hw_synthesis import synthesize_hardware, synthesize_process
from repro.cosyn.sw_synthesis import synthesize_software
from repro.platforms import UnixIpcPlatform, get_platform
from repro.utils.errors import SynthesisError

from tests.conftest import make_producer_consumer_model


class TestTargetArchitecture:
    def test_software_only_platform_rejects_hardware_modules(self):
        model = make_producer_consumer_model()
        with pytest.raises(SynthesisError, match="no programmable hardware"):
            TargetArchitecture(model, UnixIpcPlatform())

    def test_address_map_covers_sw_visible_ports(self):
        model = make_producer_consumer_model()
        target = TargetArchitecture(model, get_platform("pc_at_fpga"))
        address_map = target.address_map()
        assert "HS_DATAIN" in address_map
        assert min(address_map.values()) == 0x300
        assert len(set(address_map.values())) == len(address_map)

    def test_hw_clock_defaults_to_device_recommendation(self):
        model = make_producer_consumer_model()
        platform = get_platform("pc_at_fpga")
        target = TargetArchitecture(model, platform)
        assert target.hw_clock_ns() == platform.device.recommended_clock_ns
        custom = TargetArchitecture(model, platform, hw_clock_ns=250)
        assert custom.hw_clock_ns() == 250


class TestSoftwareSynthesis:
    def test_program_and_metrics(self, pc_at_cosynthesis):
        _, model, platform, _, result = pc_at_cosynthesis
        sw = result.software_result("DistributionMod")
        assert sw.platform_name == "pc_at_fpga"
        assert "int DISTRIBUTION(void)" in sw.program_text
        assert "outport(0x3" in sw.program_text
        assert "cliOutput" not in sw.program_text, "synthesis view must not use the CLI"
        assert set(sw.service_views) == {"SetupControl", "MotorPosition", "ReadMotorState"}
        assert sw.code_size_bytes > 200
        assert sw.worst_activation_ns > 0
        assert "software synthesis of DistributionMod" in sw.report()

    def test_wrong_module_kind_rejected(self):
        model = make_producer_consumer_model()
        target = TargetArchitecture(model, get_platform("pc_at_fpga"))
        hardware_module = model.module("ServerMod")
        with pytest.raises(SynthesisError):
            synthesize_software(target, hardware_module)

    def test_ipc_platform_views_use_system_calls(self):
        model = make_producer_consumer_model()
        # Replace the hardware server by a software one so the IPC platform applies.
        from tests.conftest import make_host_module
        from repro.core import SystemModel, SoftwareModule
        from repro.comm import handshake_channel
        from repro.ir import FsmBuilder, INT

        sw_model = SystemModel("AllSoftware")
        sw_model.add_comm_unit(handshake_channel("Channel", put_name="HostPut",
                                                 get_name="ServerGet"))
        sw_model.add_software_module(make_host_module())
        build = FsmBuilder("READER")
        build.variable("RX", INT, 0)
        with build.state("Fetch") as state:
            state.call("ServerGet", store="RX", then="Fetch")
        sw_model.add_software_module(SoftwareModule("ReaderMod", build.build(initial="Fetch")))
        sw_model.bind("HostMod", "HostPut", "Channel")
        sw_model.bind("ReaderMod", "ServerGet", "Channel")

        target = TargetArchitecture(sw_model, UnixIpcPlatform())
        result = synthesize_software(target, sw_model.module("HostMod"))
        assert "ipc_send" in result.program_text


class TestHardwareSynthesis:
    def test_speed_control_synthesis(self, pc_at_cosynthesis):
        _, _, platform, _, result = pc_at_cosynthesis
        hw = result.hardware_result("SpeedControlMod")
        assert set(hw.processes) == {"POSITION", "CORE", "TIMER"}
        assert hw.fits_device
        assert 0 < hw.utilisation() < 1
        assert hw.estimate.clbs_total > 20
        assert hw.max_frequency_hz > 5e6
        assert hw.achievable_clock_ns >= hw.estimate.critical_path_ns
        assert "entity SpeedControlMod is" in hw.behavioural_vhdl
        assert "procedure ReadMotorPosition" in hw.behavioural_vhdl
        assert "hardware synthesis of SpeedControlMod" in hw.report()

    def test_rtl_emitted_per_process(self, pc_at_cosynthesis):
        _, _, _, _, result = pc_at_cosynthesis
        hw = result.hardware_result("SpeedControlMod")
        for process in hw.processes.values():
            assert "architecture rtl of" in process.rtl_text
            assert process.estimate.clbs_total > 0

    def test_platform_without_device_rejected(self):
        config = MotorControllerConfig()
        model, _ = build_system(config)
        target = TargetArchitecture.__new__(TargetArchitecture)
        # Build a target with a device-less platform by bypassing the HW check.
        platform = UnixIpcPlatform()
        target.model = model
        target.platform = platform
        target._hw_clock_ns = None
        target.address_base = None
        with pytest.raises(SynthesisError, match="no FPGA device"):
            synthesize_hardware(target, model.module("SpeedControlMod"))

    def test_synthesize_process_standalone(self):
        from repro.apps.motor_controller import build_speed_control
        module = build_speed_control(MotorControllerConfig())
        process = synthesize_process(module.process("CORE"))
        assert process.fsmd.state_count >= len(module.process("CORE").states)
        assert process.estimate.clbs_total > 0


class TestFlowAndCoherence:
    def test_flow_produces_complete_result(self, pc_at_cosynthesis):
        _, model, platform, library, result = pc_at_cosynthesis
        assert result.ok, result.problems
        assert set(result.software) == {"DistributionMod"}
        assert set(result.hardware) == {"SpeedControlMod"}
        assert result.total_clbs() > 0
        assert result.system_clock_ns() >= 1
        assert result.software_activation_ns() > 0
        assert len(result.address_map) == len(model.comm_unit("SwHwUnit").ports)
        report = result.report()
        assert "communication binding" in report
        assert "all co-synthesis constraints satisfied" in report

    def test_bus_window_overflow_is_reported_not_raised(self):
        # Regression (surfaced by the conformance kit): a model whose
        # SW-visible ports exceed the ISA window used to crash mid-synthesis
        # inside assign_addresses, making the flow's own window check
        # unreachable.  The flow must complete and report the overflow.
        from repro.comm import handshake_channel
        from repro.core import SystemModel
        from tests.conftest import make_host_module

        model = SystemModel("WideSystem")
        for index in range(5):  # 5 handshake units x 5 ports = 25 > 16 window
            model.add_comm_unit(handshake_channel(
                f"Wide{index}", put_name=f"Put{index}", get_name=f"Get{index}",
                prefix=f"W{index}"))
            model.add_software_module(
                make_host_module(name=f"Host{index}", service=f"Put{index}"))
            model.bind(f"Host{index}", f"Put{index}", f"Wide{index}")
        result = CosynthesisFlow(model, get_platform("pc_at_fpga"),
                                 validate=False).run()
        assert not result.ok
        assert any("bus window" in problem for problem in result.problems)
        assert len(result.address_map) == 25
        assert len(result.software) == 5

    def test_flow_requires_platform_instance(self):
        model, _ = build_system(MotorControllerConfig())
        with pytest.raises(SynthesisError):
            CosynthesisFlow(model, "pc_at_fpga")

    def test_missing_platform_views_fail_validation(self):
        config = MotorControllerConfig()
        model, _ = build_system(config)
        library = build_view_library_for({}, config)  # no SW synthesis views
        from repro.utils.errors import ValidationError
        with pytest.raises(ValidationError):
            CosynthesisFlow(model, get_platform("pc_at_fpga"), library=library)

    def test_back_annotation_parameters(self, pc_at_cosynthesis):
        _, _, _, _, result = pc_at_cosynthesis
        annotation = back_annotate(result)
        params = annotation.session_parameters()
        assert params["clock_period"] == result.system_clock_ns()
        assert params["sw_activation_period"] >= params["clock_period"]
        assert annotation.slowdown_versus(100) == result.system_clock_ns() / 100
        assert "SpeedControlMod" in annotation.hardware_detail
        assert "DistributionMod" in annotation.software_detail

    def test_coherence_between_cosimulation_and_synthesis(self, pc_at_cosynthesis):
        config, _, _, _, result = pc_at_cosynthesis

        def factory(clock_period, sw_activation_period):
            return build_session(MotorControllerConfig(), clock_period=clock_period,
                                 sw_activation_period=sw_activation_period)

        report = check_coherence(factory, observables, result,
                                 run_kwargs={"max_time": 20_000_000})
        assert report.coherent, report.differences
        assert report.functional["motor_position"] == MotorControllerConfig().final_position
        assert "COHERENT" in report.report()
        table = report.as_table()
        assert "motor_position" in table


class TestCosynthesisResultSerialization:
    def test_as_dict_summarises_the_run(self, pc_at_cosynthesis):
        _, model, platform, _, result = pc_at_cosynthesis
        data = result.as_dict()
        assert data["system"] == model.name
        assert data["platform"] == platform.name
        assert data["ok"] == result.ok
        assert data["system_clock_ns"] == result.system_clock_ns()
        assert data["total_clbs"] == result.total_clbs()
        assert set(data["software"]) == set(result.software)
        assert set(data["hardware"]) == set(result.hardware)
        sw = data["software"]["DistributionMod"]
        assert sw["metrics"]["code_size_bytes"] > 0
        assert "program_text" not in sw
        hw = data["hardware"]["SpeedControlMod"]
        assert hw["estimate"]["clbs_total"] == \
            result.hardware["SpeedControlMod"].estimate.clbs_total
        assert hw["fits_device"] is True

    def test_as_dict_include_text_carries_the_sources(self, pc_at_cosynthesis):
        *_, result = pc_at_cosynthesis
        data = result.as_dict(include_text=True)
        assert "void" in data["software"]["DistributionMod"]["program_text"]
        assert "entity" in data["hardware"]["SpeedControlMod"]["behavioural_vhdl"].lower()

    def test_to_json_is_deterministic_and_round_trips(self, pc_at_cosynthesis):
        import json

        *_, result = pc_at_cosynthesis
        text = result.to_json()
        assert text == result.to_json()
        parsed = json.loads(text)
        assert parsed["system"] == result.target.model.name

    def test_to_json_matches_fresh_identical_run(self):
        model, _ = build_system()
        platform = get_platform("pc_at_fpga")
        first = CosynthesisFlow(model, platform).run().to_json()
        second = CosynthesisFlow(build_system()[0], platform).run().to_json()
        assert first == second
