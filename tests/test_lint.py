"""Tests of the static analyzer: diagnostics, rules, suppression, CLI."""

import json

import pytest

from repro.apps.motor_controller.system import build_system
from repro.apps.motor_controller.two_axis import build_two_axis_system
from repro.core import validate_model
from repro.lint import LEGACY_RULES, RULES_BY_ID, Diagnostic, LintReport, lint_model
from repro.lint.__main__ import main as lint_main
from repro.lint.selfcheck import MUTANTS, run_selfcheck
from repro.testkit.models import generate_system
from repro.utils.errors import ValidationError


class TestDiagnostics:
    def test_format_and_dict(self):
        diagnostic = Diagnostic("DF001", "warning", "module/M/F",
                                "variable 'X' may be read before init",
                                data={"variable": "X"})
        assert "DF001" in diagnostic.format()
        assert diagnostic.as_dict()["data"] == {"variable": "X"}
        assert diagnostic.legacy_text.startswith("module/M/F: ")

    def test_suppression_matching(self):
        diagnostic = Diagnostic("DF002", "warning", "module/M/F",
                                "variable 'MSTATE' is written but never read")
        assert diagnostic.matches("DF002")
        assert diagnostic.matches("DF002:'MSTATE'")
        assert not diagnostic.matches("DF002:'OTHER'")
        assert not diagnostic.matches("DF001")

    def test_report_thresholds(self):
        report = LintReport("t")
        report.add(Diagnostic("DF001", "warning", "p", "m"))
        assert report.fails("warning") and not report.fails("error")
        report.add(Diagnostic("RACE001", "error", "p", "m"))
        assert report.fails("error")
        assert report.max_severity() == "error"

    def test_scoped_suppression_requires_prefix(self):
        report = LintReport("t")
        report.add(Diagnostic("DF002", "warning", "module/A/F", "m"))
        report.add(Diagnostic("DF002", "warning", "module/B/F", "m"))
        report.apply_suppressions([("DF002", "module/A")])
        assert len(report.diagnostics) == 1
        assert report.diagnostics[0].path == "module/B/F"
        assert len(report.suppressed) == 1

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("X001", "fatal", "p", "m")


class TestMutants:
    """Every engineered mutant must trip exactly its rule family."""

    @pytest.mark.parametrize("name", sorted(MUTANTS))
    def test_mutant_trips_expected_rule(self, name):
        builder, rule = MUTANTS[name]
        report = lint_model(builder())
        findings = report.by_rule(rule)
        assert findings, f"{name}: {rule} did not fire"
        for diagnostic in findings:
            assert diagnostic.severity == RULES_BY_ID[rule].severity

    def test_race_finding_names_both_writers(self):
        builder, _ = MUTANTS["dup-writer"]
        report = lint_model(builder())
        writers = set()
        for diagnostic in report.by_rule("RACE001"):
            writers.update(diagnostic.data["writers"])
        assert any("ProdA" in writer for writer in writers)
        assert any("ProdB" in writer for writer in writers)

    def test_bad_width_path_points_at_call_site(self):
        builder, rule = MUTANTS["bad-width"]
        (finding,) = lint_model(builder()).by_rule(rule)
        assert finding.path.startswith("module/Prod/PROD")


class TestCorpusClean:
    """The shipped apps and the conformance seeds are pinned lint-clean."""

    def test_motor_app_clean_with_audited_suppression(self):
        report = lint_model(build_system()[0])
        assert not report.diagnostics
        # The one audited finding: Distribution's deliberately unread MSTATE.
        assert [d.rule for d in report.suppressed] == ["DF002"]

    def test_two_axis_app_clean(self):
        report = lint_model(build_two_axis_system()[0])
        assert not report.diagnostics
        assert [d.rule for d in report.suppressed] == ["DF002", "DF002"]

    @pytest.mark.parametrize("seed", range(10))
    def test_generated_seed_clean(self, seed):
        report = lint_model(generate_system(seed).build_model())
        assert not report.diagnostics, [d.format() for d in report.diagnostics]

    def test_selfcheck_passes(self):
        assert run_selfcheck() == []


class TestValidationShim:
    def test_validation_error_carries_diagnostics(self):
        builder, _ = MUTANTS["trap-state"]
        with pytest.raises(ValidationError) as excinfo:
            validate_model(builder())
        exc = excinfo.value
        assert exc.problems
        assert exc.diagnostics
        assert {d.rule for d in exc.diagnostics} <= LEGACY_RULES
        # str() keeps the historical shape.
        assert str(exc).startswith("model validation failed: ")

    def test_legacy_mode_ignores_suppressions(self):
        # The motor app suppresses DF002, an extended rule: legacy-only
        # validation must stay clean AND must not consult suppressions.
        model = build_system()[0]
        assert validate_model(model) == []

    def test_extended_rules_do_not_leak_into_shim(self):
        builder, rule = MUTANTS["bad-width"]
        # IF006 is an extended (non-legacy) error: the legacy shim passes.
        assert validate_model(builder()) == []
        assert lint_model(builder()).by_rule(rule)


class TestCli:
    def test_default_targets_clean(self, capsys):
        assert lint_main([]) == 0
        out = capsys.readouterr().out
        assert "app:motor" in out and "app:two-axis" in out

    def test_json_report(self, capsys):
        assert lint_main(["--seed", "0", "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert [r["target"] for r in reports] == ["seed:0"]
        assert reports[0]["summary"]["errors"] == 0

    def test_fail_on_warning_still_passes_clean_corpus(self):
        assert lint_main(["--app", "motor", "--fail-on", "warning"]) == 0

    def test_disable_unknown_rule_rejected(self):
        with pytest.raises(SystemExit):
            lint_main(["--disable", "NOPE999"])

    def test_rules_catalog(self, capsys):
        assert lint_main(["--rules"]) == 0
        out = capsys.readouterr().out
        assert "RACE001" in out and "PROTO002" in out

    def test_selfcheck_entry(self, capsys):
        assert lint_main(["--selfcheck"]) == 0
        assert "selfcheck: OK" in capsys.readouterr().out
