"""Tests of the DSE partition space: candidates, movability, repartition."""

import pytest

from repro.core.module import HardwareModule, SoftwareModule
from repro.dse import Candidate, PartitionSpace, repartition
from repro.platforms import get_platform
from repro.testkit import generate_system
from repro.utils.errors import SynthesisError

from tests.conftest import make_producer_consumer_model

PC_AT = get_platform("pc_at_fpga")
UNIX = get_platform("unix_ipc")


class TestCandidate:
    def test_hw_modules_are_normalized_sorted(self):
        assert Candidate("pc_at_fpga", ("B", "A")).hw_modules == ("A", "B")
        assert Candidate("pc_at_fpga", {"B", "A"}) == Candidate("pc_at_fpga", ["A", "B"])

    def test_duplicate_hw_modules_collapse(self):
        # A repeated name must not double-count area in the cost model.
        assert Candidate("pc_at_fpga", ("A", "A")).hw_modules == ("A",)
        assert Candidate("pc_at_fpga", ("A", "A")) == Candidate("pc_at_fpga", ("A",))

    def test_key_and_label(self):
        candidate = Candidate("multiproc", ("M",))
        assert candidate.key() == ("multiproc", ("M",))
        assert candidate.label() == "multiproc:M"
        assert Candidate("unix_ipc").label() == "unix_ipc:all-sw"


class TestPartitionSpace:
    def test_both_fixture_modules_are_movable(self):
        space = PartitionSpace(make_producer_consumer_model())
        assert space.movable == ["HostMod", "ServerMod"]
        assert space.pinned_hw == []
        assert space.pinned_sw == []

    def test_multi_process_hardware_module_is_pinned(self):
        from repro.apps.motor_controller.system import build_system

        model, _config = build_system()
        space = PartitionSpace(model)
        assert space.movable == ["DistributionMod"]
        assert space.pinned_hw == ["SpeedControlMod"]

    def test_explicit_pins_freeze_modules(self):
        space = PartitionSpace(make_producer_consumer_model(),
                               pins={"HostMod": "hw", "ServerMod": "sw"})
        assert space.movable == []
        assert space.pinned_hw == ["HostMod"]
        assert space.pinned_sw == ["ServerMod"]

    def test_pin_validation(self):
        model = make_producer_consumer_model()
        with pytest.raises(SynthesisError, match="not in the model"):
            PartitionSpace(model, pins={"Nope": "sw"})
        with pytest.raises(SynthesisError, match="'sw' or 'hw'"):
            PartitionSpace(model, pins={"HostMod": "fpga"})

    def test_multi_process_module_cannot_be_pinned_to_software(self):
        from repro.apps.motor_controller.system import build_system

        model, _config = build_system()
        with pytest.raises(SynthesisError, match="cannot be pinned to software"):
            PartitionSpace(model, pins={"SpeedControlMod": "sw"})

    def test_placements_cover_all_subsets_on_hw_platform(self):
        space = PartitionSpace(make_producer_consumer_model())
        placements = list(space.placements(PC_AT))
        assert space.placement_count(PC_AT) == 4
        assert sorted(tuple(sorted(p)) for p in placements) == [
            (), ("HostMod",), ("HostMod", "ServerMod"), ("ServerMod",),
        ]

    def test_software_only_platform_admits_only_all_sw(self):
        space = PartitionSpace(make_producer_consumer_model())
        assert list(space.placements(UNIX)) == [frozenset()]
        assert space.placement_count(UNIX) == 1

    def test_software_only_platform_with_pinned_hw_admits_nothing(self):
        space = PartitionSpace(make_producer_consumer_model(),
                               pins={"ServerMod": "hw"})
        assert list(space.placements(UNIX)) == []
        assert space.placement_count(UNIX) == 0

    def test_pinned_hw_is_in_every_placement(self):
        space = PartitionSpace(make_producer_consumer_model(),
                               pins={"ServerMod": "hw"})
        for placement in space.placements(PC_AT):
            assert "ServerMod" in placement


class TestRepartition:
    def test_flips_module_kinds_and_preserves_bindings(self):
        model = make_producer_consumer_model()
        flipped = repartition(model, ["HostMod"])
        assert isinstance(flipped.module("HostMod"), HardwareModule)
        assert isinstance(flipped.module("ServerMod"), SoftwareModule)
        assert [(b.module, b.service, b.unit) for b in flipped.bindings] == \
            [(b.module, b.service, b.unit) for b in model.bindings]
        assert flipped.topology()["bindings"] != model.topology()["bindings"]

    def test_input_model_is_not_mutated(self):
        model = make_producer_consumer_model()
        repartition(model, ["HostMod", "ServerMod"])
        assert isinstance(model.module("HostMod"), SoftwareModule)
        assert isinstance(model.module("ServerMod"), HardwareModule)

    def test_identity_placement_reuses_module_objects(self):
        model = make_producer_consumer_model()
        same = repartition(model, ["ServerMod"])
        assert same.module("HostMod") is model.module("HostMod")
        assert same.module("ServerMod") is model.module("ServerMod")

    def test_unknown_module_raises(self):
        with pytest.raises(SynthesisError, match="unknown modules"):
            repartition(make_producer_consumer_model(), ["Nope"])

    def test_multi_process_module_cannot_move_to_software(self):
        from repro.apps.motor_controller.system import build_system

        model, _config = build_system()
        with pytest.raises(SynthesisError, match="cannot be placed in software"):
            repartition(model, [])

    def test_repartitioned_testkit_model_still_validates(self):
        from repro.core.validation import validate_model

        system = generate_system(0, networks=2)
        model = system.build_model()
        all_hw = repartition(model, list(model.modules))
        all_sw = repartition(model, [])
        assert validate_model(all_hw, raise_on_error=False) == []
        assert validate_model(all_sw, raise_on_error=False) == []
