"""CosimSession save/resume round-trips.

Pins the sweep layer's checkpoint contract: a session saved mid-run and
restored into a freshly built session resumes **byte-identically** to an
uninterrupted run — same waveform dump, same service-call trace table,
same states, counters and statistics — on both kernels and across
generator seeds; and checkpoints survive pickling to disk.
"""

import pickle

import pytest

from repro.cosim import CosimSession
from repro.desim import Monitor
from repro.testkit.models import generate_system
from repro.testkit.oracles import cosim_fingerprint, run_session_to_completion
from repro.testkit.scenarios import FAULT_MAX_TIME, FaultScenario
from repro.utils.errors import SimulationError


def make_session(system, kernel="production"):
    return CosimSession(system.build_model(), kernel=kernel,
                        **system.cosim_params)


class TestSessionCheckpoint:
    @pytest.mark.parametrize("kernel", ["production", "reference"])
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_resume_matches_uninterrupted_completion_run(self, kernel, seed):
        system = generate_system(seed)
        straight = make_session(system, kernel)
        expected = cosim_fingerprint(
            straight, run_session_to_completion(straight, system.expectations)
        )

        interrupted = make_session(system, kernel)
        interrupted.run(until=1700)  # off the completion-check grid on purpose
        blob = pickle.dumps(interrupted.save())

        resumed = make_session(system, kernel)
        resumed.restore(pickle.loads(blob))
        actual = cosim_fingerprint(
            resumed, run_session_to_completion(resumed, system.expectations)
        )
        assert actual == expected

    @pytest.mark.parametrize("seed", [1, 4])
    def test_resume_matches_uninterrupted_fixed_horizon_run(self, seed):
        system = generate_system(seed)
        straight = make_session(system)
        expected = cosim_fingerprint(straight, straight.run(until=30_000))

        interrupted = make_session(system)
        interrupted.run(until=12_345)
        checkpoint = interrupted.save()
        resumed = make_session(system).restore(checkpoint)
        actual = cosim_fingerprint(resumed, resumed.run(until=30_000))
        assert actual == expected

    def test_checkpoint_chain_of_checkpoints(self):
        system = generate_system(2)
        straight = make_session(system)
        expected = cosim_fingerprint(straight, straight.run(until=24_000))

        session = make_session(system)
        for cut in (3_000, 9_500, 17_777):
            session.run(until=cut)
            session = make_session(system).restore(session.save())
        actual = cosim_fingerprint(session, session.run(until=24_000))
        assert actual == expected

    def test_save_before_any_run_checkpoints_time_zero(self):
        system = generate_system(0)
        checkpoint = make_session(system).save()
        straight = make_session(system)
        expected = cosim_fingerprint(straight, straight.run(until=8_000))
        resumed = make_session(system).restore(checkpoint)
        actual = cosim_fingerprint(resumed, resumed.run(until=8_000))
        assert actual == expected

    def test_monitor_state_travels_with_the_checkpoint(self):
        system = generate_system(0)
        session = make_session(system)
        session.add_monitor(Monitor("always_fails", lambda sim: False))
        session.run(until=500)
        checkpoint = session.save()
        violations_at_cut = len(session.monitors[0].violations)
        assert violations_at_cut > 0

        resumed = make_session(system)
        resumed.add_monitor(Monitor("always_fails", lambda sim: False))
        resumed.restore(checkpoint)
        assert len(resumed.monitors[0].violations) == violations_at_cut
        assert resumed.monitors[0].checks == session.monitors[0].checks

    @pytest.mark.parametrize("kernel", ["production", "reference"])
    def test_restore_mid_stuck_handshake_resumes_byte_identically(self, kernel):
        """A checkpoint taken *inside* a fault window survives the round-trip.

        The save lands while the acknowledge strobe is still forced low —
        the injector's cursor sits between the force and release events,
        and the signal's force/shadow state must travel with the
        checkpoint for the release to restore the correct value.
        """
        scenario = FaultScenario(2, kind="stuck_handshake")
        in_window = scenario.at + scenario.duration // 2

        straight = scenario.build_session(kernel)
        expected = cosim_fingerprint(
            straight,
            run_session_to_completion(straight, scenario.system.expectations,
                                      max_time=FAULT_MAX_TIME),
        )

        interrupted = scenario.build_session(kernel)
        interrupted.run(until=in_window)
        injector = next(iter(interrupted.fault_injectors.values()))
        assert injector.cursor == 1, "save must land between force and release"
        forced_event = injector.plan.events[0]
        assert interrupted.unit_signal(forced_event.unit,
                                       forced_event.port).forced
        blob = pickle.dumps(interrupted.save())

        resumed = scenario.build_session(kernel).restore(pickle.loads(blob))
        assert resumed.unit_signal(forced_event.unit, forced_event.port).forced
        actual = cosim_fingerprint(
            resumed,
            run_session_to_completion(resumed, scenario.system.expectations,
                                      max_time=FAULT_MAX_TIME),
        )
        assert actual == expected

    @pytest.mark.parametrize("kind", ["dropped_handshake", "bus_contention",
                                      "reset_mid_transaction"])
    def test_restore_round_trips_every_fault_kind(self, kind):
        scenario = FaultScenario(4, kind=kind, unit_index=1)
        straight = scenario.build_session()
        expected = cosim_fingerprint(
            straight,
            run_session_to_completion(straight, scenario.system.expectations,
                                      max_time=FAULT_MAX_TIME),
        )
        interrupted = scenario.build_session()
        interrupted.run(until=scenario.at + 1)
        resumed = scenario.build_session().restore(interrupted.save())
        actual = cosim_fingerprint(
            resumed,
            run_session_to_completion(resumed, scenario.system.expectations,
                                      max_time=FAULT_MAX_TIME),
        )
        assert actual == expected

    def test_restore_rejects_parameter_mismatch(self):
        system = generate_system(0)
        checkpoint = make_session(system).save()
        other = CosimSession(system.build_model(), kernel="reference",
                             **system.cosim_params)
        with pytest.raises(SimulationError, match="does not match"):
            other.restore(checkpoint)

    def test_restore_rejects_different_system(self):
        checkpoint = make_session(generate_system(0)).save()
        other_system = generate_system(1)
        other = make_session(other_system)
        with pytest.raises(SimulationError, match="does not match"):
            other.restore(checkpoint)

    def test_restore_rejects_missing_monitor(self):
        system = generate_system(0)
        session = make_session(system)
        session.run(until=900)
        session.add_monitor(Monitor("probe", lambda sim: True))
        checkpoint = session.save()
        bare = make_session(system)
        with pytest.raises(SimulationError, match="monitors"):
            bare.restore(checkpoint)
        # A refused restore must not leave a half-restored hybrid: the
        # session is still the fresh build and runs from scratch.
        assert bare.simulator.now == 0
        assert len(bare.trace) == 0
        result = run_session_to_completion(bare, system.expectations)
        straight = make_session(system)
        straight_result = run_session_to_completion(straight,
                                                    system.expectations)
        assert cosim_fingerprint(bare, result) == \
            cosim_fingerprint(straight, straight_result)
