"""Unit tests of the telemetry core: registry, tracer, exports, CLI."""

import json
import threading

import pytest

from repro.obs import (
    NOOP_SPAN,
    TELEMETRY,
    Telemetry,
    chrome_trace,
    load_artifact,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    DEPTH_BUCKETS,
    MetricsRegistry,
    parse_prometheus,
    prometheus_line,
)
from repro.obs.trace import SpanTracer
from repro.obs.__main__ import main as obs_main


@pytest.fixture(autouse=True)
def clean_global_telemetry():
    """Leave the process-wide singleton disabled and empty around each test."""
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_name_same_labels_is_the_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", labels={"kind": "a"})
        again = registry.counter("hits_total", labels={"kind": "a"})
        other = registry.counter("hits_total", labels={"kind": "b"})
        assert a is again
        assert a is not other

    def test_kind_conflict_on_a_name_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 5

    def test_histogram_buckets_count_and_sum(self):
        registry = MetricsRegistry()
        histo = registry.histogram("lat", buckets=(1, 2, 4))
        for value in (0.5, 1.5, 3, 100):
            histo.observe(value)
        assert histo.counts == [1, 1, 1, 1]  # last slot is the +Inf overflow
        assert histo.total == 4
        assert histo.sum == pytest.approx(105.0)

    def test_histogram_depth_buckets_take_integers(self):
        registry = MetricsRegistry()
        histo = registry.histogram("depth", buckets=DEPTH_BUCKETS)
        histo.observe(3)
        histo.observe(0)
        assert histo.total == 2

    def test_as_dict_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b_total", labels={"x": "2"}).inc()
            registry.counter("b_total", labels={"x": "1"}).inc(2)
            registry.gauge("a").set(3)
            return registry.as_dict()

        assert json.dumps(build(), sort_keys=True) \
            == json.dumps(build(), sort_keys=True)

    def test_reset_drops_series_values(self):
        registry = MetricsRegistry()
        registry.counter("n_total").inc(9)
        registry.reset()
        assert registry.counter("n_total").value == 0


class TestPrometheusExposition:
    def test_registry_round_trips_through_the_parser(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", labels={"kind": "cosim"},
                         help="Jobs.").inc(3)
        registry.gauge("util").set(0.5)
        registry.histogram("lat_seconds", buckets=(0.1, 1)).observe(0.05)
        samples = parse_prometheus(registry.to_prometheus())
        values = {(name, tuple(sorted(labels.items()))): value
                  for name, labels, value in samples}
        assert values[("jobs_total", (("kind", "cosim"),))] == 3
        assert values[("util", ())] == 0.5
        # Histogram buckets are cumulative and include +Inf.
        assert values[("lat_seconds_bucket", (("le", "+Inf"),))] == 1
        assert values[("lat_seconds_count", ())] == 1

    def test_label_values_may_contain_braces_and_commas(self):
        line = prometheus_line("reqs_total",
                              {"route": "/jobs/{id}", "q": "a,b"}, 2)
        samples = parse_prometheus(line + "\n")
        assert samples == [("reqs_total",
                            {"route": "/jobs/{id}", "q": "a,b"}, 2.0)]

    def test_label_escaping_round_trips(self):
        line = prometheus_line("m", {"v": 'say "hi"\nback\\slash'}, 1)
        [(_, labels, _)] = parse_prometheus(line)
        assert labels["v"] == 'say "hi"\nback\\slash'

    @pytest.mark.parametrize("bad", [
        "1bad_name 3",
        "no_value{a=\"x\"}",
        "unterminated{a=\"x 3",
        "# BOGUS comment here",
        "name{a=b} 1",
    ])
    def test_malformed_lines_are_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus(bad)


class TestSpanTracer:
    def test_span_records_name_cat_args_duration(self):
        tracer = SpanTracer()
        with tracer.span("work", cat="test", seed=3):
            pass
        [span] = tracer.spans()
        assert span["name"] == "work"
        assert span["cat"] == "test"
        assert span["args"] == {"seed": 3}
        assert span["dur_us"] >= 0

    def test_exception_marks_the_span_failed(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        [span] = tracer.spans()
        assert span["args"]["failed"] is True

    def test_ring_buffer_evicts_and_counts_dropped(self):
        tracer = SpanTracer(limit=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert tracer.finished == 10

    def test_record_post_hoc_from_stamps(self):
        import time
        tracer = SpanTracer()
        start = time.perf_counter()
        end = start + 0.25
        tracer.record("worker.job", start, end, cat="pool", job="j1")
        [span] = tracer.spans()
        assert span["dur_us"] == pytest.approx(250_000, rel=1e-6)
        assert span["args"] == {"job": "j1"}

    def test_concurrent_spans_all_land(self):
        tracer = SpanTracer()

        def spin():
            for _ in range(50):
                with tracer.span("t"):
                    pass

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert tracer.finished == 200

    def test_filtered_queries(self):
        tracer = SpanTracer()
        with tracer.span("a", cat="x"):
            pass
        with tracer.span("b", cat="y"):
            pass
        assert [s["name"] for s in tracer.spans(name="a")] == ["a"]
        assert [s["name"] for s in tracer.spans(cat="y")] == ["b"]


class TestChromeTrace:
    def test_export_validates_and_round_trips_json(self):
        tracer = SpanTracer()
        with tracer.span("region", cat="test", k="v"):
            pass
        payload = json.loads(json.dumps(tracer.to_chrome()))
        count = validate_chrome_trace(payload)
        assert count == 2  # metadata + one complete event
        event = payload["traceEvents"][1]
        assert event["ph"] == "X"
        assert event["name"] == "region"

    @pytest.mark.parametrize("mangle", [
        lambda t: t.pop("traceEvents"),
        lambda t: t["traceEvents"].append({"ph": "X"}),
        lambda t: t["traceEvents"].append(
            {"name": "n", "ph": "X", "pid": 0, "tid": 0, "ts": 0}),
        lambda t: t["traceEvents"].append(
            {"name": "n", "ph": "Q", "pid": 0, "tid": 0}),
    ])
    def test_schema_violations_raise(self, mangle):
        trace = chrome_trace(SpanTracer().as_dict())
        mangle(trace)
        with pytest.raises(ValueError):
            validate_chrome_trace(trace)


class TestTelemetry:
    def test_disabled_span_is_the_shared_noop_and_stores_nothing(self):
        telemetry = Telemetry()
        probe = telemetry.span("anything", key="value")
        assert probe is NOOP_SPAN
        assert telemetry.span("other") is NOOP_SPAN  # same object every time
        with probe:
            pass
        assert len(telemetry.tracer) == 0
        assert telemetry.tracer.started == 0

    def test_enabled_span_records(self):
        telemetry = Telemetry().enable()
        with telemetry.span("real"):
            pass
        assert [s["name"] for s in telemetry.tracer.spans()] == ["real"]

    def test_enable_resize_preserves_existing_spans(self):
        telemetry = Telemetry().enable()
        for index in range(3):
            with telemetry.span(f"s{index}"):
                pass
        telemetry.enable(span_limit=8)
        assert telemetry.tracer.limit == 8
        assert [s["name"] for s in telemetry.tracer.spans()] \
            == ["s0", "s1", "s2"]

    def test_artifact_write_load_round_trip(self, tmp_path):
        telemetry = Telemetry().enable()
        telemetry.metrics.counter("n_total").inc(2)
        with telemetry.span("s"):
            pass
        path = tmp_path / "obs.json"
        telemetry.write(path)
        artifact = load_artifact(path)
        assert artifact["format"] == 1
        assert artifact["trace"]["finished"] == 1

    def test_load_artifact_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not_obs.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_artifact(path)


class TestCli:
    @pytest.fixture
    def artifact_path(self, tmp_path):
        telemetry = Telemetry().enable()
        telemetry.metrics.counter("jobs_total",
                                  labels={"kind": "kernel"}).inc(4)
        telemetry.metrics.histogram("lat_seconds",
                                    buckets=(0.1, 1)).observe(0.02)
        with telemetry.span("sweep.job", cat="sweep"):
            pass
        path = tmp_path / "obs.json"
        telemetry.write(path)
        return path

    def test_summary_prints_counters_and_spans(self, artifact_path, capsys):
        assert obs_main(["summary", str(artifact_path)]) == 0
        out = capsys.readouterr().out
        assert "jobs_total" in out
        assert "sweep.job" in out

    def test_convert_chrome_is_valid_trace_json(self, artifact_path,
                                                tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert obs_main(["convert", str(artifact_path), "--to", "chrome",
                         "-o", str(out_path)]) == 0
        validate_chrome_trace(json.loads(out_path.read_text()))

    def test_convert_prometheus_parses(self, artifact_path, capsys):
        assert obs_main(["convert", str(artifact_path),
                         "--to", "prometheus"]) == 0
        samples = parse_prometheus(capsys.readouterr().out)
        assert any(name == "jobs_total" for name, _, _ in samples)

    def test_diff_reports_counter_deltas(self, artifact_path, tmp_path,
                                         capsys):
        telemetry = Telemetry().enable()
        telemetry.metrics.counter("jobs_total",
                                  labels={"kind": "kernel"}).inc(9)
        after = tmp_path / "after.json"
        telemetry.write(after)
        assert obs_main(["diff", str(artifact_path), str(after)]) == 0
        out = capsys.readouterr().out
        assert "jobs_total" in out
        assert "5" in out  # 9 - 4

    def test_diff_identical_artifacts_says_so(self, artifact_path, capsys):
        assert obs_main(["diff", str(artifact_path),
                         str(artifact_path)]) == 0
        assert "no metric differences" in capsys.readouterr().out

    def test_missing_artifact_exits_2(self, capsys):
        assert obs_main(["summary", "/nonexistent/obs.json"]) == 2
