"""Unit tests of the communication protocol generators.

The protocols are exercised by stepping the producer service, the controller
and the consumer service together against a shared dictionary of ports —
exactly what the co-simulation backplane does against signals, but without
the simulation kernel, so the protocol logic is tested in isolation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import (
    fifo_ports,
    handshake_ports,
    make_fifo_controller,
    make_fifo_get_service,
    make_fifo_put_service,
    make_get_service,
    make_handshake_controller,
    make_put_service,
    make_shared_get_service,
    make_shared_put_service,
)
from repro.ir.interp import DictPortAccessor, FsmInstance
from repro.utils.errors import ModelError


class ChannelHarness:
    """Steps producer / controller(s) / consumer FSMs over shared ports."""

    def __init__(self, put_service, get_service, controllers=(), ports=None):
        self.ports = DictPortAccessor(ports or {})
        self.put = FsmInstance(put_service.fsm, ports=self.ports, reset_on_done=True)
        self.get = FsmInstance(get_service.fsm, ports=self.ports, reset_on_done=True)
        self.controllers = [
            FsmInstance(controller.fsm, ports=self.ports) for controller in controllers
        ]
        self.put_params = put_service.param_names

    def transfer(self, value, max_steps=100, producer_stall=0, consumer_stall=0):
        """Run until one word travels producer -> consumer; return it."""
        sent = False
        received = None
        for step in range(max_steps):
            if not sent and step >= producer_stall:
                args = dict(zip(self.put_params, [value]))
                if self.put.step(args).done:
                    sent = True
            for controller in self.controllers:
                controller.step()
            if received is None and step >= consumer_stall:
                result = self.get.step()
                if result.done:
                    received = result.result
            if sent and received is not None:
                return received
        raise AssertionError(
            f"transfer did not complete in {max_steps} steps "
            f"(sent={sent}, received={received})"
        )


def handshake_harness():
    ports = {port.name: port.initial for port in handshake_ports("HS_")}
    return ChannelHarness(
        make_put_service("PUT", "HS_"),
        make_get_service("GET", "HS_"),
        [make_handshake_controller("Ctrl", "HS_")],
        ports,
    )


def fifo_harness(depth=4):
    ports = {port.name: port.initial for port in fifo_ports("FF_")}
    return ChannelHarness(
        make_fifo_put_service("PUSH", "FF_"),
        make_fifo_get_service("POP", "FF_"),
        [make_fifo_controller("Ctrl", "FF_", depth=depth)],
        ports,
    )


class TestHandshakeProtocol:
    def test_single_word_transfer(self):
        assert handshake_harness().transfer(42) == 42

    def test_many_words_in_order(self):
        harness = handshake_harness()
        for value in [5, 17, 0, 65535, 123]:
            assert harness.transfer(value) == value

    def test_slow_consumer_does_not_lose_data(self):
        harness = handshake_harness()
        assert harness.transfer(7, consumer_stall=10) == 7
        assert harness.transfer(8, consumer_stall=25) == 8

    def test_slow_producer_does_not_duplicate_data(self):
        harness = handshake_harness()
        assert harness.transfer(7, producer_stall=10) == 7
        # After the transfer the channel must be empty again: FULL == 0.
        assert harness.ports.values["HS_FULL"] == 0

    def test_controller_holds_full_until_producer_drops_ready(self):
        # Regression test for the slow-producer re-latch race: FULL must stay
        # asserted while PUTRDY is still high, even after the consumer acked.
        harness = handshake_harness()
        ports = harness.ports
        # Drive the producer halfway: write data and raise PUTRDY.
        harness.put.step({"REQUEST": 9})
        for _ in range(3):
            harness.controllers[0].step()
        assert ports.values["HS_FULL"] == 1
        # Consumer takes the word and acks, but the producer has not yet
        # dropped PUTRDY (it has not been stepped again).
        harness.get.step()
        for _ in range(3):
            harness.controllers[0].step()
        assert ports.values["HS_FULL"] == 1, "FULL released too early"

    def test_tagged_get_ignores_other_tags(self):
        ports = {port.name: port.initial for port in handshake_ports("HS_", with_tag=True)}
        accessor = DictPortAccessor(ports)
        put_a = FsmInstance(make_put_service("PUTA", "HS_", tag=1).fsm,
                            ports=accessor, reset_on_done=True)
        controller = FsmInstance(
            make_handshake_controller("Ctrl", "HS_", with_tag=True).fsm, ports=accessor
        )
        get_b = FsmInstance(make_get_service("GETB", "HS_", tag=2).fsm,
                            ports=accessor, reset_on_done=True)
        get_a = FsmInstance(make_get_service("GETA", "HS_", tag=1).fsm,
                            ports=accessor, reset_on_done=True)
        put_a.step({"REQUEST": 11})
        for _ in range(3):
            controller.step()
        # The tag-2 consumer polls but never takes the word.
        for _ in range(5):
            assert not get_b.step().done
        result = None
        put_done = False
        for _ in range(20):
            if not put_done:
                put_done = put_a.step({"REQUEST": 11}).done
            step = get_a.step()
            controller.step()
            if step.done:
                result = step.result
                break
        assert result == 11

    def test_ports_have_expected_names(self):
        names = [port.name for port in handshake_ports("X_", with_tag=True)]
        assert "X_DATAIN" in names and "X_TAGBUF" in names
        assert len(names) == 7


class TestFifoProtocol:
    def test_single_transfer(self):
        assert fifo_harness().transfer(99) == 99

    def test_fifo_preserves_order_under_bursts(self):
        harness = fifo_harness(depth=4)
        received = []
        to_send = [3, 1, 4, 1, 5, 9, 2, 6]
        send_iter = iter(to_send)
        pending = next(send_iter, None)
        for _ in range(400):
            if pending is not None:
                if harness.put.step({"REQUEST": pending}).done:
                    pending = next(send_iter, None)
            for controller in harness.controllers:
                controller.step()
            result = harness.get.step()
            if result.done:
                received.append(result.result)
            if len(received) == len(to_send):
                break
        assert received == to_send

    def test_depth_validation(self):
        with pytest.raises(ModelError):
            make_fifo_controller("Bad", "FF_", depth=0)
        with pytest.raises(ModelError):
            make_fifo_controller("Bad", "FF_", depth=99)

    @given(values=st.lists(st.integers(min_value=0, max_value=65535),
                           min_size=1, max_size=12),
           depth=st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_fifo_never_loses_or_reorders_data(self, values, depth):
        harness = fifo_harness(depth=depth)
        received = []
        send_iter = iter(values)
        pending = next(send_iter, None)
        for _ in range(1200):
            if pending is not None:
                if harness.put.step({"REQUEST": pending}).done:
                    pending = next(send_iter, None)
            for controller in harness.controllers:
                controller.step()
            result = harness.get.step()
            if result.done:
                received.append(result.result)
            if len(received) == len(values) and pending is None:
                break
        assert received == values


class TestSharedRegisterProtocol:
    def test_put_then_get(self):
        ports = DictPortAccessor({"SR_REG": 0})
        put = FsmInstance(make_shared_put_service("WRITE", "SR_").fsm,
                          ports=ports, reset_on_done=True)
        get = FsmInstance(make_shared_get_service("SAMPLE", "SR_").fsm,
                          ports=ports, reset_on_done=True)
        assert put.step({"REQUEST": 31}).done
        assert get.step().result == 31

    def test_get_rereads_latest_value(self):
        ports = DictPortAccessor({"SR_REG": 0})
        put = FsmInstance(make_shared_put_service("WRITE", "SR_").fsm,
                          ports=ports, reset_on_done=True)
        get = FsmInstance(make_shared_get_service("SAMPLE", "SR_").fsm,
                          ports=ports, reset_on_done=True)
        put.step({"REQUEST": 1})
        put.step({"REQUEST": 2})
        assert get.step().result == 2
        assert get.step().result == 2

    def test_handshake_transfer_takes_more_steps_than_shared_register(self):
        # The protocol ablation in miniature: a handshake word costs several
        # steps of latency, a shared register costs one.
        harness = handshake_harness()
        harness.transfer(5)
        handshake_steps = harness.put.steps + harness.get.steps
        ports = DictPortAccessor({"SR_REG": 0})
        put = FsmInstance(make_shared_put_service("WRITE", "SR_").fsm,
                          ports=ports, reset_on_done=True)
        get = FsmInstance(make_shared_get_service("SAMPLE", "SR_").fsm,
                          ports=ports, reset_on_done=True)
        put.step({"REQUEST": 5})
        get.step()
        shared_steps = put.steps + get.steps
        assert handshake_steps > shared_steps
