"""Tests of the two-axis (2-D table) extension of the motor controller."""

import pytest

from repro.apps.motor_controller import MotorControllerConfig
from repro.apps.motor_controller.two_axis import (
    build_two_axis_session,
    build_two_axis_system,
    two_axis_observables,
)
from repro.core.validation import validate_model


class TestTwoAxisModel:
    def test_model_structure(self):
        model, configs = build_two_axis_system()
        assert sorted(model.modules) == [
            "DistributionModX", "DistributionModY",
            "SpeedControlModX", "SpeedControlModY",
        ]
        assert sorted(model.comm_units) == [
            "MotorUnitX", "MotorUnitY", "SwHwUnitX", "SwHwUnitY",
        ]
        assert validate_model(model) == []
        assert len(model.bindings) == 16

    def test_axis_services_are_disjoint(self):
        model, _ = build_two_axis_system()
        x_services = set(model.comm_unit("SwHwUnitX").services)
        y_services = set(model.comm_unit("SwHwUnitY").services)
        assert x_services.isdisjoint(y_services)
        assert "MotorPositionX" in x_services
        assert "MotorPositionY" in y_services

    def test_each_axis_binds_to_its_own_units(self):
        model, _ = build_two_axis_system()
        assert model.unit_for("DistributionModX", "MotorPositionX").name == "SwHwUnitX"
        assert model.unit_for("SpeedControlModY", "SendMotorPulsesY").name == "MotorUnitY"


class TestTwoAxisCosimulation:
    @pytest.fixture(scope="class")
    def run(self):
        config_x = MotorControllerConfig(final_position=30, segment=10, speed_limit=8)
        config_y = MotorControllerConfig(final_position=16, segment=8, speed_limit=4)
        session = build_two_axis_session(config_x, config_y)
        result = session.run_until_software_done(max_time=20_000_000)
        return config_x, config_y, session, result

    def test_both_axes_reach_their_targets(self, run):
        config_x, config_y, session, result = run
        outcome = two_axis_observables(session, result)
        assert outcome["X"]["position"] == config_x.final_position
        assert outcome["Y"]["position"] == config_y.final_position
        assert outcome["X"]["finished"] and outcome["Y"]["finished"]

    def test_pulse_counts_match_travel_per_axis(self, run):
        config_x, config_y, session, result = run
        outcome = two_axis_observables(session, result)
        assert outcome["X"]["pulses"] == config_x.total_travel
        assert outcome["Y"]["pulses"] == config_y.total_travel
        assert outcome["X"]["missed_pulses"] == 0
        assert outcome["Y"]["missed_pulses"] == 0

    def test_axes_do_not_interfere(self, run):
        config_x, config_y, _, result = run
        # Each Distribution module only ever talks to its own axis's services.
        for record in result.trace.completed(caller="DistributionModX"):
            assert record.service.endswith("X")
        for record in result.trace.completed(caller="DistributionModY"):
            assert record.service.endswith("Y")
        assert result.trace.count(caller="DistributionModX",
                                  service="MotorPositionX") == config_x.segments
        assert result.trace.count(caller="DistributionModY",
                                  service="MotorPositionY") == config_y.segments

    def test_segment_counts_per_axis(self, run):
        config_x, config_y, session, result = run
        outcome = two_axis_observables(session, result)
        assert outcome["X"]["segments"] == config_x.segments
        assert outcome["Y"]["segments"] == config_y.segments
