"""Property-based tests (hypothesis) of the IR core invariants."""

from hypothesis import given, settings, strategies as st

from repro.ir import FsmBuilder, Assign, INT, FsmInstance, constant_fold, evaluate, var
from repro.ir.expr import BinOp, Const, UnOp, Var
from repro.ir.interp import _int_div, _int_mod
from repro.ir.transform import reachable_states

# Operators that are safe for arbitrary integer operands (no division by zero).
_SAFE_BIN_OPS = ["add", "sub", "mul", "eq", "ne", "lt", "le", "gt", "ge",
                 "and", "or", "xor", "min", "max"]
_UN_OPS = ["not", "neg", "abs"]

_values = st.integers(min_value=-1000, max_value=1000)
_var_names = st.sampled_from(["a", "b", "c"])


def _expressions(depth=3):
    base = st.one_of(_values.map(Const), _var_names.map(Var))
    return st.recursive(
        base,
        lambda children: st.one_of(
            st.tuples(st.sampled_from(_SAFE_BIN_OPS), children, children)
            .map(lambda t: BinOp(*t)),
            st.tuples(st.sampled_from(_UN_OPS), children).map(lambda t: UnOp(*t)),
        ),
        max_leaves=12,
    )


class TestExpressionProperties:
    @given(expr=_expressions(), a=_values, b=_values, c=_values)
    @settings(max_examples=150, deadline=None)
    def test_constant_fold_preserves_value(self, expr, a, b, c):
        env = {"a": a, "b": b, "c": c}
        assert evaluate(constant_fold(expr), env) == evaluate(expr, env)

    @given(a=_values, b=_values.filter(lambda v: v != 0))
    @settings(max_examples=200, deadline=None)
    def test_division_identity(self, a, b):
        quotient = _int_div(a, b)
        remainder = _int_mod(a, b)
        assert quotient * b + remainder == a
        assert abs(remainder) < abs(b)

    @given(a=_values, b=_values)
    @settings(max_examples=100, deadline=None)
    def test_comparisons_are_consistent(self, a, b):
        env = {"a": a, "b": b}
        lt = evaluate(var("a").lt(var("b")), env)
        ge = evaluate(var("a").ge(var("b")), env)
        assert lt != ge
        eq = evaluate(var("a").eq(var("b")), env)
        ne = evaluate(var("a").ne(var("b")), env)
        assert eq != ne

    @given(a=_values, b=_values)
    @settings(max_examples=100, deadline=None)
    def test_min_max_bound_the_operands(self, a, b):
        env = {"a": a, "b": b}
        low = evaluate(BinOp("min", var("a"), var("b")), env)
        high = evaluate(BinOp("max", var("a"), var("b")), env)
        assert low <= a <= high or low <= b <= high
        assert low == min(a, b) and high == max(a, b)


class TestFsmProperties:
    @given(limit=st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_counter_fsm_terminates_in_exactly_limit_steps(self, limit):
        build = FsmBuilder("COUNTER")
        build.variable("COUNT", INT, 0)
        with build.state("Run") as state:
            state.do(Assign("COUNT", var("COUNT") + 1))
            state.go("Stop", when=var("COUNT").ge(limit))
            state.stay()
        with build.state("Stop", done=True) as state:
            state.stay()
        instance = FsmInstance(build.build(initial="Run"))
        result = instance.run_to_done(max_steps=limit + 5)
        assert instance.steps == limit
        assert result.done

    @given(chain_length=st.integers(min_value=1, max_value=20),
           orphans=st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_reachable_states_of_a_chain(self, chain_length, orphans):
        from repro.ir.fsm import Transition
        build = FsmBuilder("CHAIN")
        for index in range(chain_length):
            transitions = []
            if index + 1 < chain_length:
                transitions = [Transition(f"S{index + 1}")]
            build.add_state(f"S{index}", transitions=transitions,
                            done=(index + 1 == chain_length))
        for index in range(orphans):
            build.add_state(f"O{index}", done=True)
        fsm = build.build(initial="S0")
        reachable = reachable_states(fsm)
        assert reachable == {f"S{i}" for i in range(chain_length)}
        assert len(fsm.states) == chain_length + orphans
