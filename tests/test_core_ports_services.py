"""Unit tests of ports, services and modules of the core model."""

import pytest

from repro.core.module import HardwareModule, SoftwareModule
from repro.core.port import Port, PortDirection, check_unique_ports, input_port, output_port
from repro.core.service import Service, ServiceParam
from repro.ir import FsmBuilder, Assign, INT, PortWrite, var
from repro.ir.dtypes import BIT, word_type
from repro.utils.errors import ModelError

from tests.conftest import make_host_module, make_put_like_service, make_server_module


class TestPort:
    def test_defaults(self):
        port = Port("DATA")
        assert port.direction is PortDirection.INOUT
        assert port.dtype == BIT
        assert port.initial == 0

    def test_helpers(self):
        assert input_port("A").direction is PortDirection.IN
        assert output_port("B").direction is PortDirection.OUT

    def test_validation(self):
        with pytest.raises(ModelError):
            Port("bad name")
        with pytest.raises(ModelError):
            Port("DATA", direction="in")
        with pytest.raises(ModelError):
            Port("DATA", dtype=int)

    def test_initial_value_follows_dtype(self):
        from repro.ir.dtypes import EnumType
        port = Port("STATE", dtype=EnumType("states", ["A", "B"]))
        assert port.initial == "A"

    def test_check_unique_ports(self):
        ports = check_unique_ports([Port("A"), Port("B")])
        assert list(ports) == ["A", "B"]
        with pytest.raises(ModelError):
            check_unique_ports([Port("A"), Port("A")])
        with pytest.raises(ModelError):
            check_unique_ports(["not a port"])


class TestService:
    def test_put_like_service_shape(self, put_service):
        assert put_service.param_names == ["REQUEST"]
        assert put_service.returns is None
        assert set(put_service.ports_used()) == {"B_FULL", "DATAIN", "PUTRDY"}
        assert put_service.interface == "HostIf"

    def test_service_requires_fsm(self):
        with pytest.raises(ModelError):
            Service("Bad", fsm=None)

    def test_service_requires_done_state(self):
        build = FsmBuilder("NEVER")
        with build.state("Spin") as state:
            state.stay()
        with pytest.raises(ModelError, match="done state"):
            Service("NeverDone", build.build(initial="Spin"))

    def test_parameters_must_be_fsm_variables(self):
        build = FsmBuilder("SVC")
        with build.state("A", done=True) as state:
            state.stay()
        fsm = build.build(initial="A")
        with pytest.raises(ModelError, match="declared"):
            Service("Svc", fsm, params=[ServiceParam("MISSING", INT)])

    def test_returns_requires_result_var(self):
        build = FsmBuilder("SVC")
        with build.state("A", done=True) as state:
            state.stay()
        fsm = build.build(initial="A")
        with pytest.raises(ModelError, match="result_var"):
            Service("Svc", fsm, returns=word_type())

    def test_service_param_validation(self):
        with pytest.raises(ModelError):
            ServiceParam("x", int)


class TestModules:
    def test_software_module_requires_fsm(self):
        with pytest.raises(ModelError):
            SoftwareModule("Bad", fsm="not an fsm")

    def test_software_module_services_used(self):
        module = make_host_module()
        assert module.services_used() == ["HostPut"]
        assert module.kind == "software"
        assert len(module.behaviours()) == 1

    def test_hardware_module_processes(self):
        module = make_server_module()
        assert module.kind == "hardware"
        assert list(module.processes) == ["SERVER"]
        assert module.process("SERVER").name == "SERVER"
        with pytest.raises(ModelError):
            module.process("MISSING")

    def test_hardware_module_duplicate_process_rejected(self):
        build = FsmBuilder("P")
        with build.state("A", done=True) as state:
            state.stay()
        fsm = build.build(initial="A")
        with pytest.raises(ModelError):
            HardwareModule("HW", [fsm, fsm])

    def test_hardware_module_internal_signals(self):
        build = FsmBuilder("P")
        with build.state("A") as state:
            state.do(PortWrite("WIRE", 1))
            state.stay()
        module = HardwareModule("HW", [build.build(initial="A")],
                                internal_signals=[Port("WIRE", dtype=BIT)])
        assert module.all_signal_names() == ["WIRE"]

    def test_module_name_validation(self):
        build = FsmBuilder("F")
        with build.state("A", done=True) as state:
            state.stay()
        with pytest.raises(ModelError):
            SoftwareModule("bad name", build.build(initial="A"))
