"""Unit tests of the delta-cycle simulation kernel."""

import pytest

from repro.desim import (
    KERNELS,
    Delta,
    Monitor,
    ReferenceSimulator,
    SignalChange,
    Simulator,
    Timeout,
    WaveformRecorder,
    create_simulator,
)
from repro.desim.monitor import StabilityMonitor
from repro.desim.simtime import format_time
from repro.utils.errors import SimulationError


class TestSetup:
    def test_duplicate_signal_name_rejected(self):
        sim = Simulator()
        sim.add_signal("s")
        with pytest.raises(SimulationError):
            sim.add_signal("s")

    def test_duplicate_process_name_rejected(self):
        sim = Simulator()
        sim.add_process("p", lambda: None)
        with pytest.raises(SimulationError):
            sim.add_process("p", lambda: None)

    def test_unknown_signal_lookup_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.signal("missing")

    def test_clock_period_must_be_even_and_positive(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.add_clock("clk", period=5)
        with pytest.raises(SimulationError):
            sim.add_clock("clk2", period=0)

    def test_generator_process_with_sensitivity_rejected(self):
        sim = Simulator()
        sig = sim.add_signal("s")

        def gen():
            yield Timeout(1)

        with pytest.raises(SimulationError):
            sim.add_process("bad", gen, sensitivity=[sig])


class TestScheduling:
    def test_delayed_transaction_applies_at_the_right_time(self):
        sim = Simulator()
        sig = sim.add_signal("s", init=0)

        def stim():
            sim.schedule(sig, 1, delay=50)
            yield Timeout(200)

        sim.add_process("stim", stim)
        sim.run()
        assert sig.value == 1
        assert sig.last_changed == 50

    def test_negative_delay_rejected(self):
        sim = Simulator()
        sig = sim.add_signal("s")
        with pytest.raises(ValueError):
            sim.schedule(sig, 1, delay=-1)

    def test_zero_delay_assignment_takes_effect_next_delta(self):
        sim = Simulator()
        a = sim.add_signal("a", init=0)
        b = sim.add_signal("b", init=0)
        observed = []

        def chain():
            if a.event:
                observed.append(("a_seen", sim.now, b.value))
                sim.schedule(b, a.value + 1, 0)

        sim.add_process("chain", chain, sensitivity=[a])

        def stim():
            yield Timeout(10)
            sim.schedule(a, 5, 0)
            yield Timeout(10)

        sim.add_process("stim", stim)
        sim.run()
        assert b.value == 6
        # When the chain process saw the event on a, b was still the old value.
        assert observed[0] == ("a_seen", 10, 0)

    def test_run_until_stops_at_the_requested_time(self):
        sim = Simulator()
        sim.add_clock("clk", period=10)
        end = sim.run(until=95)
        assert end <= 95
        assert sim.now <= 95

    def test_run_for_advances_relative_to_now(self):
        sim = Simulator()
        sim.add_clock("clk", period=10)
        sim.run(until=50)
        sim.run_for(30)
        assert sim.now <= 80

    def test_simulation_without_activity_ends_immediately(self):
        sim = Simulator()
        sim.add_signal("s")
        assert sim.run() == 0


class TestClockAndProcesses:
    def test_clock_produces_expected_number_of_edges(self):
        sim = Simulator()
        clk = sim.add_clock("clk", period=10)
        edges = []

        def counter():
            if clk.event and clk.value == 1:
                edges.append(sim.now)

        sim.add_process("counter", counter, sensitivity=[clk])
        sim.run(until=100)
        # Edges at 0, 10, ..., 100.
        assert len(edges) == 11
        assert edges[1] - edges[0] == 10

    def test_sensitivity_process_not_run_without_events(self):
        sim = Simulator()
        sig = sim.add_signal("quiet")
        runs = []
        sim.add_process("watcher", lambda: runs.append(sim.now),
                        sensitivity=[sig], initial_run=False)
        sim.run(until=100)
        assert runs == []

    def test_generator_process_timeout_sequence(self):
        sim = Simulator()
        times = []

        def stepper():
            for _ in range(3):
                yield Timeout(25)
                times.append(sim.now)

        sim.add_process("stepper", stepper)
        sim.run()
        assert times == [25, 50, 75]

    def test_generator_wait_on_signal_change(self):
        sim = Simulator()
        data = sim.add_signal("data", init=0)
        seen = []

        def producer():
            yield Timeout(30)
            sim.schedule(data, 1)
            yield Timeout(30)
            sim.schedule(data, 2)

        def consumer():
            while True:
                yield SignalChange(data)
                seen.append((sim.now, data.value))
                if data.value >= 2:
                    return

        sim.add_process("producer", producer)
        sim.add_process("consumer", consumer)
        sim.run()
        assert seen == [(30, 1), (60, 2)]

    def test_signal_change_with_timeout_resumes_without_event(self):
        sim = Simulator()
        data = sim.add_signal("data", init=0)
        wakeups = []

        def watcher():
            yield SignalChange(data, timeout=40)
            wakeups.append((sim.now, data.event))

        sim.add_process("watcher", watcher)
        sim.run()
        assert wakeups == [(40, False)]

    def test_delta_wait_resumes_in_same_time_point(self):
        sim = Simulator()
        marks = []

        def process():
            marks.append(("before", sim.now))
            yield Delta()
            marks.append(("after", sim.now))

        sim.add_process("p", process)
        sim.run()
        assert marks == [("before", 0), ("after", 0)]

    def test_finished_generator_is_not_rerun(self):
        sim = Simulator()
        counter = {"runs": 0}

        def one_shot():
            counter["runs"] += 1
            yield Timeout(10)

        process = sim.add_process("oneshot", one_shot)
        sim.run(until=100)
        assert process.finished
        assert counter["runs"] == 1

    def test_zero_delay_oscillation_hits_delta_limit(self):
        sim = Simulator(max_deltas=50)
        a = sim.add_signal("a", init=0)

        def oscillator():
            sim.schedule(a, 1 - a.value, 0)

        sim.add_process("osc", oscillator, sensitivity=[a])

        def kick():
            yield Timeout(5)
            sim.schedule(a, 1, 0)

        sim.add_process("kick", kick)
        with pytest.raises(SimulationError, match="delta-cycle limit"):
            sim.run(until=100)

    def test_statistics_are_collected(self):
        sim = Simulator()
        sim.add_clock("clk", period=10)
        sim.run(until=100)
        stats = sim.statistics
        assert stats["transactions"] > 0
        assert stats["process_runs"] > 0
        assert stats["delta_cycles"] > 0


class TestMonitors:
    def test_monitor_records_violations(self):
        sim = Simulator()
        sig = sim.add_signal("level", init=0)
        monitor = sim.add_monitor(Monitor("bound", lambda s: s.peek("level") <= 2,
                                           message="level exceeded 2"))

        def stim():
            for value in (1, 2, 3, 1):
                sim.schedule(sig, value)
                yield Timeout(10)

        sim.add_process("stim", stim)
        sim.run()
        assert not monitor.ok
        assert any("level exceeded" in v.message for v in monitor.violations)

    def test_monitor_fail_fast_raises(self):
        sim = Simulator()
        sig = sim.add_signal("level", init=0)
        sim.add_monitor(Monitor("bound", lambda s: s.peek("level") == 0, fail_fast=True))

        def stim():
            yield Timeout(10)
            sim.schedule(sig, 1)
            yield Timeout(10)

        sim.add_process("stim", stim)
        with pytest.raises(SimulationError):
            sim.run()

    def test_stability_monitor_accepts_stable_data(self):
        sim = Simulator()
        data = sim.add_signal("data", init=0)
        valid = sim.add_signal("valid", init=0)
        monitor = sim.add_monitor(StabilityMonitor("stable", data, valid))

        def stim():
            sim.schedule(data, 42)
            yield Timeout(10)
            sim.schedule(valid, 1)
            yield Timeout(30)
            sim.schedule(valid, 0)
            yield Timeout(10)
            sim.schedule(data, 7)
            yield Timeout(10)

        sim.add_process("stim", stim)
        sim.run()
        assert monitor.ok

    def test_stability_monitor_catches_change_while_valid(self):
        sim = Simulator()
        data = sim.add_signal("data", init=0)
        valid = sim.add_signal("valid", init=0)
        monitor = sim.add_monitor(StabilityMonitor("stable", data, valid))

        def stim():
            sim.schedule(data, 1)
            sim.schedule(valid, 1)
            yield Timeout(10)
            sim.schedule(data, 2)  # changes while valid is asserted
            yield Timeout(10)

        sim.add_process("stim", stim)
        sim.run()
        assert not monitor.ok


class TestRunStallRegressions:
    def test_pending_zero_delay_transaction_resumes_run(self):
        # Regression: a zero-delay transaction injected between two run()
        # calls was invisible to _next_activity_time (which only consulted
        # the future heap and the timed waits), so run() returned without
        # waking processes blocked on the signal.
        sim = Simulator()
        sig = sim.add_signal("s", init=0)
        seen = []

        def waiter():
            yield SignalChange(sig)
            seen.append((sim.now, sig.value))

        sim.add_process("w", waiter)
        sim.run(until=50)
        assert seen == []
        sim.poke("s", 1, 0)  # due exactly at self.now
        sim.run()
        assert seen == [(0, 1)]
        assert sig.value == 1

    def test_past_due_wait_is_not_treated_as_idle(self):
        # Regression: a deadline at or before self.now made
        # _next_activity_time return None ("idle") instead of self.now
        # ("due immediately"), stalling run().  Past-due deadlines arise
        # when a co-simulation driver moves time between run() calls.
        sim = Simulator()
        sig = sim.add_signal("s", init=0)
        woke = []

        def watcher():
            yield SignalChange(sig, timeout=10)
            woke.append(sim.now)

        sim.add_process("w", watcher)
        sim.run(until=4)
        sim.now = 12  # external driver advanced time past the deadline
        assert sim._next_activity_time() == 12
        sim.run()
        assert woke == [12]


class TestSchedulingScalability:
    @staticmethod
    def _run_with_idle_population(idle_count, until=1_000):
        sim = Simulator()
        clk = sim.add_clock("clk", period=10)
        ticks = []

        def counter():
            if clk.value == 1:
                ticks.append(sim.now)

        sim.add_process("counter", counter, sensitivity=[clk], initial_run=False)
        for index in range(idle_count):
            idle_sig = sim.add_signal(f"idle{index}")

            def idle_waiter(idle_sig=idle_sig):
                while True:
                    yield SignalChange(idle_sig, timeout=1_000_000_000)

            sim.add_process(f"idle{index}", idle_waiter)
        sim.run(until=until)
        return sim.statistics

    def test_process_runs_flat_as_idle_population_grows(self):
        # Per-delta work must scale with activity, not population: growing
        # the idle-waiter count 10x may only add the one-off initial run of
        # each new process, never recurring wakeups.
        small = self._run_with_idle_population(10)
        large = self._run_with_idle_population(100)
        assert large["process_runs"] - small["process_runs"] == 90
        assert large["delta_cycles"] == small["delta_cycles"]
        assert large["time_points"] == small["time_points"]


class TestWaitWakeCancel:
    def test_signal_wake_consumes_the_timeout(self):
        sim = Simulator()
        sig = sim.add_signal("s", init=0)
        wakes = []

        def watcher():
            yield SignalChange(sig, timeout=100)
            wakes.append(("event", sim.now, sig.event))
            yield Timeout(500)
            wakes.append(("later", sim.now))

        sim.add_process("w", watcher)

        def stim():
            yield Timeout(10)
            sim.schedule(sig, 1)

        sim.add_process("stim", stim)
        sim.run()
        # The event fired first (t=10); the abandoned deadline at t=100 must
        # not wake the process again — its next wake is the explicit
        # Timeout(500) at t=510.
        assert wakes == [("event", 10, True), ("later", 510)]
        assert sim.processes["w"].run_count == 3

    def test_timeout_consumes_the_signal_wait(self):
        sim = Simulator()
        sig = sim.add_signal("s", init=0)
        wakes = []

        def watcher():
            yield SignalChange(sig, timeout=40)
            wakes.append(("timeout", sim.now, sig.event))
            yield SignalChange(sig)
            wakes.append(("event", sim.now, sig.value))

        sim.add_process("w", watcher)

        def stim():
            yield Timeout(100)
            sim.schedule(sig, 7)

        sim.add_process("stim", stim)
        sim.run()
        # The deadline fired first (t=40, no event); the stale waiter-index
        # entry from that first wait must not double-wake the process when
        # the signal finally changes at t=100.
        assert wakes == [("timeout", 40, False), ("event", 100, 7)]
        assert sim.processes["w"].run_count == 3

    def test_repeated_timed_out_waits_do_not_leak_waiter_entries(self):
        # Watchdog pattern: a bounded wait on a signal that never changes,
        # re-issued after every timeout.  Each timeout wake leaves a stale
        # entry in the signal's waiter list; compaction must keep the list
        # O(1) instead of growing with simulated time.
        sim = Simulator()
        sig = sim.add_signal("quiet", init=0)
        wakes = []

        def watchdog():
            while True:
                yield SignalChange(sig, timeout=10)
                wakes.append(sim.now)

        sim.add_process("watchdog", watchdog)
        sim.run(until=10_000)
        assert len(wakes) == 1_000
        assert len(sim._waiters.get(id(sig), ())) <= 2

    def test_multi_signal_wait_wakes_exactly_once(self):
        sim = Simulator()
        a = sim.add_signal("a", init=0)
        b = sim.add_signal("b", init=0)
        wakes = []

        def watcher():
            yield SignalChange(a, b)
            wakes.append(sim.now)

        sim.add_process("w", watcher)

        def stim():
            yield Timeout(10)
            sim.schedule(a, 1)
            sim.schedule(b, 1)

        sim.add_process("stim", stim)
        sim.run()
        # Both watched signals changed in the same delta: one wake, not two.
        assert wakes == [10]
        assert sim.processes["w"].run_count == 2


class TestSameDeltaWakeOrdering:
    """Pinned regressions surfaced by the differential conformance kit."""

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_sensitivity_run_order_is_registration_order(self, kernel):
        # Regression: the sensitivity index was a set of process names, so
        # same-delta run order followed the string hashes — different in
        # every interpreter process under hash randomization.  Order must
        # be registration order, identically in both kernels.
        sim = create_simulator(kernel)
        clk = sim.add_clock("clk", period=10)
        order = []
        # Names chosen so hash order is unlikely to match registration
        # order under many hash seeds.
        for tag in ("foxtrot", "alpha", "echo", "bravo", "dingo", "charlie"):
            def body(tag=tag):
                if clk.value == 1:
                    order.append(tag)
            sim.add_process(f"writer_{tag}", body, sensitivity=[clk],
                            initial_run=False)
        sim.run(until=10)
        assert order == ["foxtrot", "alpha", "echo", "bravo",
                         "dingo", "charlie"] * 2

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_same_delta_last_write_wins_by_registration_order(self, kernel):
        # Two processes writing the same signal in the same delta: the
        # later-registered process must win, in every interpreter process.
        sim = create_simulator(kernel)
        clk = sim.add_clock("clk", period=10)
        shared = sim.add_signal("shared", init=0)

        def write(value):
            def body():
                if clk.value == 1:
                    sim.schedule(shared, value, 0)
            return body

        sim.add_process("first_writer", write(1), sensitivity=[clk],
                        initial_run=False)
        sim.add_process("second_writer", write(2), sensitivity=[clk],
                        initial_run=False)
        sim.run(until=10)
        assert shared.value == 2


class TestKernelSelection:
    def test_registry_contents(self):
        assert KERNELS["production"] is Simulator
        assert KERNELS["reference"] is ReferenceSimulator

    def test_create_simulator_selects_kernel(self):
        assert type(create_simulator()) is Simulator
        assert type(create_simulator("reference")) is ReferenceSimulator
        assert create_simulator("reference", max_deltas=7).max_deltas == 7

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SimulationError, match="unknown kernel"):
            create_simulator("optimistic")


class TestReferenceKernelParity:
    """The naive oracle must honour the trickiest wait semantics directly
    (the generated corpus covers the rest differentially)."""

    def test_signal_wake_consumes_timeout_on_reference(self):
        sim = ReferenceSimulator()
        sig = sim.add_signal("s", init=0)
        wakes = []

        def watcher():
            yield SignalChange(sig, timeout=100)
            wakes.append(("event", sim.now, sig.event))
            yield Timeout(500)
            wakes.append(("later", sim.now))

        sim.add_process("w", watcher)

        def stim():
            yield Timeout(10)
            sim.schedule(sig, 1)

        sim.add_process("stim", stim)
        sim.run()
        assert wakes == [("event", 10, True), ("later", 510)]

    def test_timeout_consumes_signal_wait_on_reference(self):
        sim = ReferenceSimulator()
        sig = sim.add_signal("s", init=0)
        wakes = []

        def watcher():
            yield SignalChange(sig, timeout=40)
            wakes.append(("timeout", sim.now, sig.event))
            yield SignalChange(sig)
            wakes.append(("event", sim.now, sig.value))

        sim.add_process("w", watcher)

        def stim():
            yield Timeout(100)
            sim.schedule(sig, 7)

        sim.add_process("stim", stim)
        sim.run()
        assert wakes == [("timeout", 40, False), ("event", 100, 7)]

    def test_multi_signal_wait_wakes_once_on_reference(self):
        sim = ReferenceSimulator()
        a = sim.add_signal("a", init=0)
        b = sim.add_signal("b", init=0)
        wakes = []

        def watcher():
            yield SignalChange(a, b)
            wakes.append(sim.now)

        sim.add_process("w", watcher)

        def stim():
            yield Timeout(10)
            sim.schedule(a, 1)
            sim.schedule(b, 1)

        sim.add_process("stim", stim)
        sim.run()
        assert wakes == [10]
        assert sim.processes["w"].run_count == 2


class TestFormatTime:
    @pytest.mark.parametrize("value, expected", [
        (0, "0 ns"),
        (999, "999 ns"),
        (1_000, "1 us"),
        (1_500, "1500 ns"),
        (2_000_000, "2 ms"),
        (3_000_000_000, "3 s"),
    ])
    def test_format_time(self, value, expected):
        assert format_time(value) == expected


class TestRecorderIntegration:
    def test_recorder_sees_changes_through_the_kernel(self):
        sim = Simulator()
        clk = sim.add_clock("clk", period=20)
        recorder = sim.add_recorder(WaveformRecorder([clk]))
        sim.run(until=100)
        assert recorder.count_pulses("clk") >= 5
        assert recorder.history("clk")[0][0] == 0
