"""Unit tests of the delta-cycle simulation kernel."""

import pytest

from repro.desim import (
    Delta,
    Monitor,
    SignalChange,
    Simulator,
    Timeout,
    WaveformRecorder,
)
from repro.desim.monitor import StabilityMonitor
from repro.desim.simtime import format_time
from repro.utils.errors import SimulationError


class TestSetup:
    def test_duplicate_signal_name_rejected(self):
        sim = Simulator()
        sim.add_signal("s")
        with pytest.raises(SimulationError):
            sim.add_signal("s")

    def test_duplicate_process_name_rejected(self):
        sim = Simulator()
        sim.add_process("p", lambda: None)
        with pytest.raises(SimulationError):
            sim.add_process("p", lambda: None)

    def test_unknown_signal_lookup_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.signal("missing")

    def test_clock_period_must_be_even_and_positive(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.add_clock("clk", period=5)
        with pytest.raises(SimulationError):
            sim.add_clock("clk2", period=0)

    def test_generator_process_with_sensitivity_rejected(self):
        sim = Simulator()
        sig = sim.add_signal("s")

        def gen():
            yield Timeout(1)

        with pytest.raises(SimulationError):
            sim.add_process("bad", gen, sensitivity=[sig])


class TestScheduling:
    def test_delayed_transaction_applies_at_the_right_time(self):
        sim = Simulator()
        sig = sim.add_signal("s", init=0)

        def stim():
            sim.schedule(sig, 1, delay=50)
            yield Timeout(200)

        sim.add_process("stim", stim)
        sim.run()
        assert sig.value == 1
        assert sig.last_changed == 50

    def test_negative_delay_rejected(self):
        sim = Simulator()
        sig = sim.add_signal("s")
        with pytest.raises(ValueError):
            sim.schedule(sig, 1, delay=-1)

    def test_zero_delay_assignment_takes_effect_next_delta(self):
        sim = Simulator()
        a = sim.add_signal("a", init=0)
        b = sim.add_signal("b", init=0)
        observed = []

        def chain():
            if a.event:
                observed.append(("a_seen", sim.now, b.value))
                sim.schedule(b, a.value + 1, 0)

        sim.add_process("chain", chain, sensitivity=[a])

        def stim():
            yield Timeout(10)
            sim.schedule(a, 5, 0)
            yield Timeout(10)

        sim.add_process("stim", stim)
        sim.run()
        assert b.value == 6
        # When the chain process saw the event on a, b was still the old value.
        assert observed[0] == ("a_seen", 10, 0)

    def test_run_until_stops_at_the_requested_time(self):
        sim = Simulator()
        sim.add_clock("clk", period=10)
        end = sim.run(until=95)
        assert end <= 95
        assert sim.now <= 95

    def test_run_for_advances_relative_to_now(self):
        sim = Simulator()
        sim.add_clock("clk", period=10)
        sim.run(until=50)
        sim.run_for(30)
        assert sim.now <= 80

    def test_simulation_without_activity_ends_immediately(self):
        sim = Simulator()
        sim.add_signal("s")
        assert sim.run() == 0


class TestClockAndProcesses:
    def test_clock_produces_expected_number_of_edges(self):
        sim = Simulator()
        clk = sim.add_clock("clk", period=10)
        edges = []

        def counter():
            if clk.event and clk.value == 1:
                edges.append(sim.now)

        sim.add_process("counter", counter, sensitivity=[clk])
        sim.run(until=100)
        # Edges at 0, 10, ..., 100.
        assert len(edges) == 11
        assert edges[1] - edges[0] == 10

    def test_sensitivity_process_not_run_without_events(self):
        sim = Simulator()
        sig = sim.add_signal("quiet")
        runs = []
        sim.add_process("watcher", lambda: runs.append(sim.now),
                        sensitivity=[sig], initial_run=False)
        sim.run(until=100)
        assert runs == []

    def test_generator_process_timeout_sequence(self):
        sim = Simulator()
        times = []

        def stepper():
            for _ in range(3):
                yield Timeout(25)
                times.append(sim.now)

        sim.add_process("stepper", stepper)
        sim.run()
        assert times == [25, 50, 75]

    def test_generator_wait_on_signal_change(self):
        sim = Simulator()
        data = sim.add_signal("data", init=0)
        seen = []

        def producer():
            yield Timeout(30)
            sim.schedule(data, 1)
            yield Timeout(30)
            sim.schedule(data, 2)

        def consumer():
            while True:
                yield SignalChange(data)
                seen.append((sim.now, data.value))
                if data.value >= 2:
                    return

        sim.add_process("producer", producer)
        sim.add_process("consumer", consumer)
        sim.run()
        assert seen == [(30, 1), (60, 2)]

    def test_signal_change_with_timeout_resumes_without_event(self):
        sim = Simulator()
        data = sim.add_signal("data", init=0)
        wakeups = []

        def watcher():
            yield SignalChange(data, timeout=40)
            wakeups.append((sim.now, data.event))

        sim.add_process("watcher", watcher)
        sim.run()
        assert wakeups == [(40, False)]

    def test_delta_wait_resumes_in_same_time_point(self):
        sim = Simulator()
        marks = []

        def process():
            marks.append(("before", sim.now))
            yield Delta()
            marks.append(("after", sim.now))

        sim.add_process("p", process)
        sim.run()
        assert marks == [("before", 0), ("after", 0)]

    def test_finished_generator_is_not_rerun(self):
        sim = Simulator()
        counter = {"runs": 0}

        def one_shot():
            counter["runs"] += 1
            yield Timeout(10)

        process = sim.add_process("oneshot", one_shot)
        sim.run(until=100)
        assert process.finished
        assert counter["runs"] == 1

    def test_zero_delay_oscillation_hits_delta_limit(self):
        sim = Simulator(max_deltas=50)
        a = sim.add_signal("a", init=0)

        def oscillator():
            sim.schedule(a, 1 - a.value, 0)

        sim.add_process("osc", oscillator, sensitivity=[a])

        def kick():
            yield Timeout(5)
            sim.schedule(a, 1, 0)

        sim.add_process("kick", kick)
        with pytest.raises(SimulationError, match="delta-cycle limit"):
            sim.run(until=100)

    def test_statistics_are_collected(self):
        sim = Simulator()
        sim.add_clock("clk", period=10)
        sim.run(until=100)
        stats = sim.statistics
        assert stats["transactions"] > 0
        assert stats["process_runs"] > 0
        assert stats["delta_cycles"] > 0


class TestMonitors:
    def test_monitor_records_violations(self):
        sim = Simulator()
        sig = sim.add_signal("level", init=0)
        monitor = sim.add_monitor(Monitor("bound", lambda s: s.peek("level") <= 2,
                                           message="level exceeded 2"))

        def stim():
            for value in (1, 2, 3, 1):
                sim.schedule(sig, value)
                yield Timeout(10)

        sim.add_process("stim", stim)
        sim.run()
        assert not monitor.ok
        assert any("level exceeded" in v.message for v in monitor.violations)

    def test_monitor_fail_fast_raises(self):
        sim = Simulator()
        sig = sim.add_signal("level", init=0)
        sim.add_monitor(Monitor("bound", lambda s: s.peek("level") == 0, fail_fast=True))

        def stim():
            yield Timeout(10)
            sim.schedule(sig, 1)
            yield Timeout(10)

        sim.add_process("stim", stim)
        with pytest.raises(SimulationError):
            sim.run()

    def test_stability_monitor_accepts_stable_data(self):
        sim = Simulator()
        data = sim.add_signal("data", init=0)
        valid = sim.add_signal("valid", init=0)
        monitor = sim.add_monitor(StabilityMonitor("stable", data, valid))

        def stim():
            sim.schedule(data, 42)
            yield Timeout(10)
            sim.schedule(valid, 1)
            yield Timeout(30)
            sim.schedule(valid, 0)
            yield Timeout(10)
            sim.schedule(data, 7)
            yield Timeout(10)

        sim.add_process("stim", stim)
        sim.run()
        assert monitor.ok

    def test_stability_monitor_catches_change_while_valid(self):
        sim = Simulator()
        data = sim.add_signal("data", init=0)
        valid = sim.add_signal("valid", init=0)
        monitor = sim.add_monitor(StabilityMonitor("stable", data, valid))

        def stim():
            sim.schedule(data, 1)
            sim.schedule(valid, 1)
            yield Timeout(10)
            sim.schedule(data, 2)  # changes while valid is asserted
            yield Timeout(10)

        sim.add_process("stim", stim)
        sim.run()
        assert not monitor.ok


class TestFormatTime:
    @pytest.mark.parametrize("value, expected", [
        (0, "0 ns"),
        (999, "999 ns"),
        (1_000, "1 us"),
        (1_500, "1500 ns"),
        (2_000_000, "2 ms"),
        (3_000_000_000, "3 s"),
    ])
    def test_format_time(self, value, expected):
        assert format_time(value) == expected


class TestRecorderIntegration:
    def test_recorder_sees_changes_through_the_kernel(self):
        sim = Simulator()
        clk = sim.add_clock("clk", period=20)
        recorder = sim.add_recorder(WaveformRecorder([clk]))
        sim.run(until=100)
        assert recorder.count_pulses("clk") >= 5
        assert recorder.history("clk")[0][0] == 0
