"""Unit tests of the target platform models."""

import pytest

from repro.platforms import (
    IsaBus,
    MicrocodedPlatform,
    MultiprocessorPlatform,
    PcAtFpgaPlatform,
    UnixIpcPlatform,
    XC4005,
    XC4010,
    available_platforms,
    builtin_platforms,
    get_platform,
    register_platform,
    unregister_platform,
)
from repro.platforms.base import BusModel, ProcessorModel
from repro.platforms.fpga import operator_clbs, operator_delay_ns
from repro.utils.errors import SynthesisError


class TestProcessorAndBusModels:
    def test_cycle_time(self):
        cpu = ProcessorModel("cpu", clock_hz=10_000_000)
        assert cpu.cycle_ns == 100.0

    def test_activation_time_grows_with_work(self):
        cpu = ProcessorModel("cpu", clock_hz=10_000_000)
        idle = cpu.activation_ns(statements_executed=1)
        busy = cpu.activation_ns(statements_executed=10, reads=2, writes=2)
        assert busy > idle

    def test_invalid_clock_rejected(self):
        with pytest.raises(SynthesisError):
            ProcessorModel("cpu", clock_hz=0)

    def test_bus_transfer_time(self):
        bus = BusModel("bus", width_bits=16, clock_hz=10_000_000,
                       cycles_per_transfer=3, setup_cycles=1)
        assert bus.cycle_ns == 100.0
        assert bus.transfer_ns(1) == 400.0
        assert bus.transfer_ns(2) == 700.0

    def test_words_for_bits(self):
        bus = BusModel("bus", width_bits=16, clock_hz=1_000_000)
        assert bus.words_for_bits(16) == 1
        assert bus.words_for_bits(17) == 2
        assert bus.words_for_bits(1) == 1


class TestIsaBus:
    def test_address_assignment_starts_at_base(self):
        bus = IsaBus(base_address=0x300)
        addresses = bus.assign_addresses(["A", "B", "C"])
        assert addresses == {"A": 0x300, "B": 0x301, "C": 0x302}

    def test_window_overflow_assignment_still_total(self):
        # Overflowing the window must not abort assignment: the co-synthesis
        # flow reports the overflow as a constraint problem and needs the
        # complete (if unmappable) address map to do so.
        bus = IsaBus(window=2)
        addresses = bus.assign_addresses(["A", "B", "C"])
        assert addresses == {"A": 0x300, "B": 0x301, "C": 0x302}
        assert addresses["C"] not in bus.address_range()

    def test_transaction_log(self):
        bus = IsaBus()
        bus.record_write(0x300, 5, 100)
        bus.record_read(0x301, 1, 200)
        summary = bus.traffic_summary()
        assert summary["reads"] == 1 and summary["writes"] == 1
        assert summary["bus_time_ns"] == 2 * bus.transfer_ns(1)
        bus.reset_log()
        assert bus.traffic_summary()["total"] == 0


class TestFpgaDevice:
    def test_family_members(self):
        assert XC4005.clb_count == 196
        assert XC4010.clb_count == 400
        assert XC4010.flip_flops == 800

    def test_fits_and_utilisation(self):
        assert XC4005.fits(100)
        assert not XC4005.fits(500)
        assert XC4005.utilisation(98) == pytest.approx(0.5)

    def test_max_frequency(self):
        assert XC4010.max_frequency_hz(50.0) == pytest.approx(20e6)
        with pytest.raises(SynthesisError):
            XC4010.max_frequency_hz(0)

    def test_operator_cost_tables(self):
        assert operator_clbs("add") == 9
        assert operator_clbs("add", width_bits=32) > operator_clbs("add", width_bits=16)
        assert operator_delay_ns("mul") > operator_delay_ns("add")
        with pytest.raises(SynthesisError):
            operator_clbs("fft")
        with pytest.raises(SynthesisError):
            operator_delay_ns("fft")


class TestPlatforms:
    def test_registry_contains_the_four_builtin_platforms(self):
        assert set(available_platforms()) >= {
            "pc_at_fpga", "unix_ipc", "microcoded", "multiproc"
        }

    def test_get_platform_unknown_name(self):
        with pytest.raises(SynthesisError):
            get_platform("does_not_exist")

    def test_register_custom_platform(self):
        register_platform("custom_test_platform", lambda: PcAtFpgaPlatform(name="custom_test_platform"),
                          replace=True)
        try:
            platform = get_platform("custom_test_platform")
            assert platform.name == "custom_test_platform"
        finally:
            unregister_platform("custom_test_platform")

    def test_pc_at_defaults_match_the_paper(self):
        platform = PcAtFpgaPlatform()
        assert platform.bus.base_address == 0x300
        assert platform.bus.width_bits == 16
        assert platform.bus.clock_hz == 10_000_000
        assert platform.device is XC4010
        assert platform.has_hardware

    def test_pc_at_port_syntax_assigns_isa_addresses(self):
        platform = PcAtFpgaPlatform()
        syntax = platform.port_syntax(["DATAIN", "B_FULL"])
        assert syntax.read_expr("DATAIN") == "inport(0x300)"
        assert syntax.read_expr("B_FULL") == "inport(0x301)"

    def test_unix_ipc_has_no_hardware(self):
        platform = UnixIpcPlatform()
        assert not platform.has_hardware
        assert platform.hardware_clock_ns() is None
        syntax = platform.port_syntax(["DATAIN"])
        assert "ipc_receive" in syntax.read_expr("DATAIN")

    def test_microcoded_platform_cheap_port_access(self):
        platform = MicrocodedPlatform()
        assert platform.processor.io_read_cycles <= 4
        assert "ucode_read" in platform.port_syntax(["X"]).read_expr("X")

    def test_multiprocessor_addresses_are_word_spaced(self):
        platform = MultiprocessorPlatform()
        addresses = platform.assign_addresses(["A", "B"])
        assert addresses["B"] - addresses["A"] == 4

    def test_software_activation_time_ordering(self):
        # Port accesses on the IPC platform are far more expensive than on the
        # PC-AT, which is the point of the retargeting comparison.
        pc = PcAtFpgaPlatform()
        ipc = UnixIpcPlatform()
        assert (ipc.software_activation_ns(statements=3, reads=1, writes=1)
                > pc.software_activation_ns(statements=3, reads=1, writes=1))

    def test_platform_summary(self):
        summary = PcAtFpgaPlatform().summary()
        assert summary["platform"] == "pc_at_fpga"
        assert "i386" in summary["processor"]


class TestRegistrySemantics:
    """The replace/shadow contract the DSE platform sweep relies on."""

    def _custom(self, name="shadow_test"):
        return lambda: UnixIpcPlatform(name=name)

    def test_builtin_names_are_stable(self):
        assert builtin_platforms() == [
            "microcoded", "multiproc", "pc_at_fpga", "unix_ipc",
        ]

    def test_reusing_a_builtin_name_requires_replace(self):
        with pytest.raises(SynthesisError, match="built-in.*replace=True"):
            register_platform("unix_ipc", self._custom())

    def test_reusing_a_custom_name_requires_replace(self):
        register_platform("shadow_test", self._custom())
        try:
            with pytest.raises(SynthesisError, match="custom.*replace=True"):
                register_platform("shadow_test", self._custom())
        finally:
            unregister_platform("shadow_test")

    def test_replace_shadows_a_builtin_and_unregister_restores_it(self):
        register_platform("unix_ipc", lambda: UnixIpcPlatform(
            name="unix_ipc", cpu_clock_hz=120_000_000), replace=True)
        try:
            assert get_platform("unix_ipc").processor.clock_hz == 120_000_000
            # the shadow does not remove the name from the listing
            assert "unix_ipc" in available_platforms()
        finally:
            unregister_platform("unix_ipc")
        assert get_platform("unix_ipc").processor.clock_hz == 60_000_000

    def test_replace_true_overwrites_a_custom_factory(self):
        register_platform("shadow_test", self._custom())
        register_platform(
            "shadow_test", lambda: UnixIpcPlatform(name="shadow_test",
                                                   cpu_clock_hz=1_000_000),
            replace=True)
        try:
            assert get_platform("shadow_test").processor.clock_hz == 1_000_000
        finally:
            unregister_platform("shadow_test")

    def test_unregister_rejects_builtins_and_unknown_names(self):
        with pytest.raises(SynthesisError, match="built-in"):
            unregister_platform("pc_at_fpga")
        with pytest.raises(SynthesisError, match="no custom platform"):
            unregister_platform("never_registered")

    def test_custom_platform_joins_available_and_the_dse_sweep_axis(self):
        register_platform("shadow_test", self._custom())
        try:
            assert "shadow_test" in available_platforms()
        finally:
            unregister_platform("shadow_test")
        assert "shadow_test" not in available_platforms()
