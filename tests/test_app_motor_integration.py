"""Integration tests: the complete Adaptive Motor Controller in co-simulation."""

import pytest

from repro.analysis import service_latency_stats
from repro.apps.motor_controller import (
    MotorControllerConfig,
    RealTimeConstraints,
    build_session,
    build_view_library_for,
    observables,
)
from repro.core.views import ViewKind


class TestMotorControllerCosimulation:
    def test_motor_reaches_the_final_position(self, motor_cosim_result):
        config, session, result = motor_cosim_result
        assert session.motor.position == config.final_position
        assert session.motor.missed_pulses == 0
        assert result.sw_finished["DistributionMod"]

    def test_pulse_count_equals_travel_distance(self, motor_cosim_result):
        config, session, _ = motor_cosim_result
        assert session.motor.pulse_count == config.total_travel
        assert session.motor.steps_forward == config.total_travel
        assert session.motor.steps_backward == 0

    def test_segment_count_matches_configuration(self, motor_cosim_result):
        config, session, result = motor_cosim_result
        obs = observables(session, result)
        assert obs["segments_commanded"] == config.segments
        assert obs["position_commands"] == config.segments
        assert obs["state_reports"] == config.segments
        assert obs["constraints_sent"] == 1

    def test_real_time_constraints_met(self, motor_cosim_result):
        config, session, result = motor_cosim_result
        report = RealTimeConstraints(config).check(session, result)
        assert report["functional_ok"]
        assert report["pulse_ok"]
        assert report["response_ok"]
        assert report["ok"]
        table = RealTimeConstraints.as_table(report)
        assert "MET" in table

    def test_every_interface_service_was_exercised(self, motor_cosim_result):
        _, _, result = motor_cosim_result
        seen = set(result.trace.services_seen())
        assert {"SetupControl", "MotorPosition", "ReadMotorState",
                "ReadMotorConstraints", "ReadMotorPosition", "ReturnMotorState",
                "SendMotorPulses", "ReadSampledData"} <= seen

    def test_latency_statistics_are_consistent(self, motor_cosim_result):
        _, _, result = motor_cosim_result
        stats = service_latency_stats(result.trace)
        # Pulse emission through the HW/HW unit is much faster than the
        # software-visible handshake services.
        assert stats["SendMotorPulses"].mean < stats["MotorPosition"].mean
        assert stats["ReadSampledData"].mean <= stats["ReadMotorPosition"].mean

    def test_command_channel_waveform_shows_handshakes(self, motor_cosim_result):
        config, session, _ = motor_cosim_result
        full_edges = session.waveform.count_pulses("SwHwUnit_CMD_FULL")
        # One FULL pulse per command word: constraints + one per segment.
        assert full_edges == 1 + config.segments

    def test_hardware_cycles_advance(self, motor_cosim_result):
        _, _, result = motor_cosim_result
        assert result.hw_cycles["SpeedControlMod"] > 100


class TestScenarioVariations:
    @pytest.mark.parametrize("final, segment", [(10, 10), (18, 5), (30, 7)])
    def test_various_travel_configurations(self, final, segment):
        config = MotorControllerConfig(final_position=final, segment=segment,
                                       speed_limit=8)
        session = build_session(config)
        session.run_until_software_done(max_time=20_000_000)
        assert session.motor.position == final
        assert session.motor.pulse_count == final

    def test_low_speed_limit_slows_the_pulse_train(self):
        fast = build_session(MotorControllerConfig(final_position=16, segment=8,
                                                   speed_limit=8, pulse_gap_base=6))
        fast.run_until_software_done(max_time=20_000_000)
        slow = build_session(MotorControllerConfig(final_position=16, segment=8,
                                                   speed_limit=1, pulse_gap_base=6))
        slow.run_until_software_done(max_time=20_000_000)
        assert fast.motor.position == slow.motor.position == 16
        assert min(slow.motor.pulse_periods()) > min(fast.motor.pulse_periods())

    def test_strict_motor_limit_causes_missed_pulses(self):
        # A motor that cannot keep up with the commanded pulse rate misses
        # steps — the discontinuous behaviour the controller must avoid, and
        # the reason the constraint check exists.
        config = MotorControllerConfig(final_position=12, segment=12, speed_limit=8,
                                       min_pulse_period_ns=5_000)
        session = build_session(config)
        result = session.run_until_software_done(max_time=3_000_000)
        report = RealTimeConstraints(config).check(session, result)
        assert session.motor.missed_pulses > 0
        assert not report["ok"]

    def test_start_position_offset(self):
        config = MotorControllerConfig(final_position=30, segment=10,
                                       start_position=20)
        session = build_session(config)
        session.run_until_software_done(max_time=10_000_000)
        assert session.motor.position == 30
        assert session.motor.pulse_count == 10


class TestViewLibraryForTheApplication:
    def test_all_views_generated_for_two_platforms(self):
        from repro.platforms import get_platform
        platforms = {name: get_platform(name) for name in ("pc_at_fpga", "microcoded")}
        library = build_view_library_for(platforms)
        services = library.services()
        assert "MotorPosition" in services and "SendMotorPulses" in services
        # SW/HW unit services have synthesis views for both platforms.
        for platform_name in platforms:
            assert library.has("MotorPosition", ViewKind.SW_SYNTH, platform_name)
        # The HW/HW motor interface is never expanded for software targets.
        assert not library.has("SendMotorPulses", ViewKind.SW_SYNTH, "pc_at_fpga")
        assert library.missing_views(["SetupControl", "ReadMotorState"],
                                     platforms=["pc_at_fpga"]) == []
