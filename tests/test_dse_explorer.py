"""Tests of the DSE engine: coverage, Pareto correctness, memoization,
heuristic determinism and cosim validation of the front."""

import pytest

from repro.dse import (
    Candidate,
    DesignSpaceExplorer,
    dominates,
    pareto_front,
)
from repro.dse.cost import CandidateEvaluator
from repro.testkit import generate_system
from repro.utils.errors import SynthesisError

from tests.conftest import (
    ALL_PLATFORMS,
    HW_PLATFORMS,
    make_producer_consumer_model,
)


def explore_fixture(**kwargs):
    explorer = DesignSpaceExplorer(make_producer_consumer_model(),
                                   platforms=ALL_PLATFORMS)
    return explorer, explorer.explore(**kwargs)


class TestExhaustiveCoverage:
    def test_covers_all_placements_per_platform(self):
        _explorer, report = explore_fixture(mode="exhaustive")
        # 2 movable modules: 2^2 placements on each hardware platform plus
        # the single all-software placement on unix_ipc.
        assert len(report.scores) == 3 * 4 + 1
        seen = {s.candidate.key() for s in report.scores}
        assert len(seen) == len(report.scores)
        for platform in HW_PLATFORMS:
            subsets = {key[1] for key in seen if key[0] == platform}
            assert subsets == {(), ("HostMod",), ("ServerMod",),
                               ("HostMod", "ServerMod")}
            assert report.stats[platform]["enumerated"] == 4
            assert report.stats[platform]["evaluated"] == 4
        assert report.stats["unix_ipc"] == {
            "enumerated": 1, "evaluated": 1, "feasible": 1,
        }

    def test_auto_mode_resolves_to_exhaustive_for_small_models(self):
        _explorer, report = explore_fixture(mode="auto")
        assert report.mode == "exhaustive"

    def test_explicit_exhaustive_refuses_huge_spaces(self):
        system = generate_system(0, networks=9)
        explorer = DesignSpaceExplorer(system.build_model(),
                                       platforms=ALL_PLATFORMS)
        with pytest.raises(SynthesisError, match="refused"):
            explorer.explore(mode="exhaustive")

    def test_exhaustive_guard_keys_on_enumeration_size_not_movables(self):
        """21 movable modules on a software-only platform enumerate exactly
        one placement — exhaustive (and auto) must accept that sweep."""
        system = generate_system(0, networks=9)
        explorer = DesignSpaceExplorer(system.build_model(),
                                       platforms=("unix_ipc",))
        report = explorer.explore(mode="exhaustive")
        assert len(report.scores) == 1
        assert report.scores[0].candidate.key() == ("unix_ipc", ())
        assert explorer.resolve_mode("auto") == "exhaustive"


class TestParetoFront:
    def test_front_is_pinned_for_the_fixture_model(self):
        """Hand-checkable: multiproc (fastest CPU+bus) dominates the partial
        placements of the other platforms; the three all-hardware placements
        tie on (area, latency, load) = (82, 40, 0) and are all kept; unix_ipc
        (syscall-priced IPC) and pc_at/microcoded partials are dominated."""
        _explorer, report = explore_fixture(mode="exhaustive")
        assert [s.candidate.label() for s in report.front] == [
            "multiproc:all-sw",
            "multiproc:HostMod",
            "multiproc:ServerMod",
            "microcoded:HostMod+ServerMod",
            "multiproc:HostMod+ServerMod",
            "pc_at_fpga:HostMod+ServerMod",
        ]
        all_hw = [s for s in report.front if len(s.candidate.hw_modules) == 2]
        assert {s.objectives() for s in all_hw} == {(82, 40.0, 0.0)}

    def test_front_matches_independent_dominance_filter(self):
        _explorer, report = explore_fixture(mode="exhaustive")
        feasible = [s for s in report.scores if s.feasible]
        expected = {
            s.candidate.key() for s in feasible
            if not any(dominates(o.objectives(), s.objectives())
                       for o in feasible)
        }
        assert {s.candidate.key() for s in report.front} == expected

    def test_front_ignores_infeasible_scores(self):
        _explorer, report = explore_fixture(mode="exhaustive")
        assert all(s.feasible for s in report.front)

    def test_dominates_is_strict(self):
        assert dominates((1, 1, 1), (2, 2, 2))
        assert dominates((1, 2, 2), (2, 2, 2))
        assert not dominates((2, 2, 2), (2, 2, 2))
        assert not dominates((1, 3, 1), (2, 2, 2))

    def test_pareto_front_collapses_duplicate_candidates(self):
        _explorer, report = explore_fixture(mode="exhaustive")
        doubled = list(report.scores) + list(report.scores)
        assert [s.candidate.key() for s in pareto_front(doubled)] == \
            [s.candidate.key() for s in report.front]


class TestWinnersAndConstraints:
    def test_front_members_carry_full_cosynthesis_artefacts(self):
        _explorer, report = explore_fixture(mode="exhaustive")
        entries = report.front_entries()
        assert len(entries) == len(report.front)
        for entry in entries:
            artefacts = entry["cosynthesis"]
            assert artefacts["ok"] is True
            assert artefacts["platform"] == entry["platform"]
            assert sorted(artefacts["hardware"]) == entry["hw_modules"]
        host_hw = next(e for e in entries
                       if e["platform"] == "multiproc"
                       and e["hw_modules"] == ["HostMod", "ServerMod"])
        assert host_hw["cosynthesis"]["hardware"]["HostMod"]["estimate"]["clbs_total"] > 0

    def test_static_prune_matches_flow_constraint_check(self):
        """The microcoded platform's XC4005 cannot hold the 4-module
        all-hardware placement; the static model and the full flow agree."""
        system = generate_system(0, networks=2)
        explorer = DesignSpaceExplorer(system.build_model(),
                                       platforms=ALL_PLATFORMS)
        report = explorer.explore(mode="exhaustive")
        infeasible = [s for s in report.scores if not s.feasible]
        assert len(infeasible) == 1
        (score,) = infeasible
        assert score.candidate.platform == "microcoded"
        assert len(score.candidate.hw_modules) == 4
        assert "does not fit" in score.reasons[0]

    def test_address_count_collapses_duplicate_port_names_like_the_flow(self):
        """Two units sharing unqualified port names (legal: uniqueness is
        per unit) must count once, exactly like the flow's address map."""
        from repro.comm import handshake_channel
        from repro.core import SystemModel
        from repro.cosyn import TargetArchitecture
        from tests.conftest import make_host_module

        model = SystemModel("DupPorts")
        for index in ("0", "1"):
            model.add_comm_unit(handshake_channel(
                f"Chan{index}", put_name=f"Put{index}", get_name=f"Get{index}",
                prefix="SAME"))
            model.add_software_module(make_host_module(
                name=f"Host{index}", service=f"Put{index}"))
            model.bind(f"Host{index}", f"Put{index}", f"Chan{index}")
        evaluator = CandidateEvaluator(model, ALL_PLATFORMS)
        score = evaluator.evaluate(Candidate("pc_at_fpga", ()))
        target = TargetArchitecture(model,
                                    evaluator.platforms["pc_at_fpga"])
        assert score.address_count == len(target.address_map())

    def test_all_sw_candidate_has_zero_area_and_hw_clock(self):
        _explorer, report = explore_fixture(mode="exhaustive")
        all_sw = next(s for s in report.scores
                      if s.candidate.key() == ("multiproc", ()))
        assert all_sw.area_clbs == 0
        assert all_sw.clock_ns == 0.0
        assert all_sw.sw_load_ns > 0


class TestCostFlowParity:
    def test_static_feasibility_agrees_with_the_full_flow(self):
        """The cost model's prune must match CosynthesisFlow's verdict on
        every candidate, or DSE drops placements the flow accepts (and vice
        versa) — differential parity over two exhaustively swept systems."""
        from repro.cosyn import CosynthesisFlow
        from repro.dse import repartition

        for seed in (0, 1):
            system = generate_system(seed, networks=2)
            model = system.build_model()
            explorer = DesignSpaceExplorer(model, platforms=ALL_PLATFORMS)
            report = explorer.explore(mode="exhaustive",
                                      synthesize_winners=False)
            for score in report.scores:
                flow = CosynthesisFlow(
                    repartition(model, score.candidate.hw_modules),
                    explorer.platforms[score.candidate.platform],
                )
                assert score.feasible == flow.run().ok, score.candidate.label()


class TestMemoization:
    def test_shared_synthesis_work_is_done_once(self):
        explorer, report = explore_fixture(mode="exhaustive")
        stats = explorer.evaluator.stats
        # 2 modules x (4 platforms software + 1 device-family-wide hardware)
        assert stats["synthesis_calls"] == 2 * (len(ALL_PLATFORMS) + 1)
        assert stats["cache_hits"] > 0
        # Without the memo every candidate would re-synthesize its modules.
        requests = stats["synthesis_calls"] + stats["cache_hits"]
        assert requests > 2 * len(report.scores) - 4
        assert stats["synthesis_calls"] < requests / 2

    def test_evaluator_results_are_deterministic(self):
        model = make_producer_consumer_model()
        first = CandidateEvaluator(model, ALL_PLATFORMS)
        second = CandidateEvaluator(model, ALL_PLATFORMS)
        candidate = Candidate("pc_at_fpga", ("ServerMod",))
        assert first.evaluate(candidate) == second.evaluate(candidate)


class TestHeuristicSearch:
    @pytest.fixture(scope="class")
    def big_system(self):
        system = generate_system(0, networks=9)
        model = system.build_model()
        assert len(model.modules) >= 20
        return system, model

    def test_finds_feasible_candidates_on_20plus_module_model(self, big_system):
        _system, model = big_system
        explorer = DesignSpaceExplorer(model, platforms=ALL_PLATFORMS)
        report = explorer.explore(mode="auto", seed=3)
        assert report.mode == "heuristic"
        assert len(report.feasible) >= 1
        assert len(report.front) >= 1

    def test_deterministic_for_a_fixed_seed(self, big_system):
        system, _model = big_system
        reports = [
            DesignSpaceExplorer(system.build_model(),
                                platforms=ALL_PLATFORMS).explore(
                mode="heuristic", seed=3)
            for _ in range(2)
        ]
        assert reports[0].to_json(include_scores=True) == \
            reports[1].to_json(include_scores=True)

    def test_different_seeds_explore_different_candidates(self, big_system):
        system, _model = big_system
        visited = []
        for seed in (3, 4):
            report = DesignSpaceExplorer(
                system.build_model(), platforms=ALL_PLATFORMS,
            ).explore(mode="heuristic", seed=seed, restarts=2)
            visited.append({s.candidate.key() for s in report.scores})
        assert visited[0] != visited[1]


class TestValidation:
    def test_unplaceable_candidate_yields_a_verdict_not_an_abort(self):
        from repro.apps.motor_controller import build_system
        from repro.dse import validate_candidate

        model, _config = build_system()
        # SpeedControlMod has three processes and cannot move to software.
        verdict = validate_candidate(model, Candidate("pc_at_fpga", ()))
        assert verdict["ok"] is False
        assert "co-simulation failed" in verdict["problems"][0]

    def test_front_survives_cosim_validation(self):
        system = generate_system(0, networks=2)
        explorer = DesignSpaceExplorer(
            system.build_model(), platforms=ALL_PLATFORMS,
            pins={name: "sw" for name in system.sw_only},
            cosim_params=system.cosim_params,
            expectations=system.expectations,
        )
        report = explorer.explore(mode="exhaustive", validate=True)
        assert report.validation is not None
        assert len(report.validation) == len(report.front)
        failed = [item for item in report.validation if not item["ok"]]
        assert failed == []
        assert all(item["end_time"] is not None for item in report.validation)
