"""Cross-check of the static race analysis against the dynamic detector.

The contract: the static RACE001 write-set analysis over-approximates the
dynamic detector — any same-delta multi-writer event a
``detect_races=True`` simulation records involves a signal the static
analysis already flagged (static ⊇ dynamic).  The generated conformance
corpus is race-free, so the inclusion is exercised both ways: clean seeds
must stay dynamically silent, and the duplicate-writer mutant must race
both statically and dynamically.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cosim import CosimSession
from repro.desim import create_simulator
from repro.lint.races import collect_write_contexts, static_race_signals
from repro.lint.selfcheck import build_dup_writer_model
from repro.testkit.models import generate_system
from repro.testkit.oracles import run_session_to_completion

KERNELS = ("production", "reference")


def _run_with_detection(system, kernel):
    session = CosimSession(system.build_model(), kernel=kernel,
                           detect_races=True, **system.cosim_params)
    run_session_to_completion(session, system.expectations)
    return session.simulator


class TestKernelDetector:
    """Unit-level behaviour of ``Simulator(detect_races=True)``."""

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_same_delta_multi_write_logged(self, kernel):
        sim = create_simulator(kernel, detect_races=True)
        clk = sim.add_clock("clk", period=10)
        sig = sim.add_signal("shared", init=0)

        def writer(value):
            def proc():
                if clk.value == 1:
                    sim.schedule(sig, value, 0)
            return proc

        sim.add_process("w_a", writer(1), sensitivity=[clk], initial_run=False)
        sim.add_process("w_b", writer(2), sensitivity=[clk], initial_run=False)
        sim.run(until=40)
        assert sim.race_signals() == {"shared"}
        event = sim.race_log[0]
        assert event["writers"] == ["w_a", "w_b"]
        assert set(event) == {"time", "delta", "signal", "writers"}

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_single_writer_and_delayed_writes_do_not_race(self, kernel):
        sim = create_simulator(kernel, detect_races=True)
        clk = sim.add_clock("clk", period=10)
        sig = sim.add_signal("s", init=0)

        def toggle():
            if clk.value == 1:
                sim.schedule(sig, 1 - sig.value, 0)

        sim.add_process("solo", toggle, sensitivity=[clk], initial_run=False)
        # A delayed transaction landing in the same update phase is ordinary
        # scheduling, not a same-delta driver conflict.
        sim.poke("s", 7, delay=15)
        sim.run(until=60)
        assert sim.race_signals() == set()

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_force_release_never_counts_as_writer(self, kernel):
        sim = create_simulator(kernel, detect_races=True)
        clk = sim.add_clock("clk", period=10)
        sig = sim.add_signal("s", init=0)

        def drive():
            if clk.value == 1:
                sim.schedule(sig, 1, 0)
                sim.force("s", 5)

        sim.add_process("drv", drive, sensitivity=[clk], initial_run=False)
        sim.run(until=40)
        assert sim.race_signals() == set()

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_detection_off_by_default(self, kernel):
        sim = create_simulator(kernel)
        assert sim.detect_races is False
        clk = sim.add_clock("clk", period=10)
        sig = sim.add_signal("shared", init=0)
        for name, value in (("w_a", 1), ("w_b", 2)):
            def writer(v=value):
                if clk.value == 1:
                    sim.schedule(sig, v, 0)
            sim.add_process(name, writer, sensitivity=[clk], initial_run=False)
        sim.run(until=40)
        assert sim.race_log == []

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_external_poke_attributed_as_external(self, kernel):
        sim = create_simulator(kernel, detect_races=True)
        clk = sim.add_clock("clk", period=10)
        sig = sim.add_signal("s", init=0)

        def drive():
            if clk.value == 1:
                sim.schedule(sig, 1, 0)

        sim.add_process("drv", drive, sensitivity=[clk], initial_run=False)
        sim.run(until=14)
        sim.poke("s", 9)  # zero-delay testbench write between runs
        sim.run(until=15)
        writers = {w for e in sim.race_log for w in e["writers"]}
        assert "<external>" in writers or sim.race_log == []


class TestStaticDynamicInclusion:
    """Static RACE001 findings ⊇ dynamic findings, corpus-wide."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_clean_seed_stays_dynamically_silent(self, seed, kernel):
        system = generate_system(seed)
        static = static_race_signals(system.build_model())
        assert static == set()  # generator corpus passes static race lint
        simulator = _run_with_detection(system, kernel)
        assert simulator.race_signals() <= static, simulator.race_log

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_dup_writer_positive_control(self, kernel):
        model = build_dup_writer_model()
        static = static_race_signals(model)
        assert static  # both producers drive the channel's put-side ports
        session = CosimSession(build_dup_writer_model(), kernel=kernel,
                               detect_races=True)
        session.run(until=5_000)
        dynamic = session.simulator.race_signals()
        assert dynamic  # the detector actually observes the conflict
        assert dynamic <= static

    def test_static_contexts_cover_all_clocked_writers(self):
        contexts = collect_write_contexts(build_dup_writer_model())
        groups = {context["group"] for context in contexts}
        assert groups <= {"clocked", "activation"}
        names = {context["path"] for context in contexts}
        assert any("ProdA" in name for name in names)
        assert any("ProdB" in name for name in names)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=10, max_value=120),
       kernel=st.sampled_from(KERNELS))
def test_property_static_race_lint_implies_no_dynamic_race(seed, kernel):
    """A system passing the static race lint never trips ``detect_races``."""
    system = generate_system(seed)
    static = static_race_signals(system.build_model())
    if static:  # pragma: no cover - generator corpus is race-free
        return
    simulator = _run_with_detection(system, kernel)
    assert simulator.race_signals() == set(), simulator.race_log
