"""Tests of the ``python -m repro.dse`` command-line entry."""

import json

from repro.dse.__main__ import main


class TestDseCli:
    def test_quick_run_writes_a_valid_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        exit_code = main(["--quick", "--out", str(out)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "design-space exploration" in captured.out
        assert "Pareto front" in captured.out
        report = json.loads(out.read_text())
        assert report["mode"] == "exhaustive"
        assert report["feasible"] >= 1
        assert report["front"]
        assert report["validation"] is not None
        assert all(item["ok"] for item in report["validation"])
        for entry in report["front"]:
            assert entry["cosynthesis"]["ok"] is True

    def test_motor_model_exploration(self, capsys):
        exit_code = main(["--model", "motor"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "AdaptiveMotorController" in captured.out
        # Speed Control has three processes: pinned to hardware, so it
        # appears in every front placement.
        assert "SpeedControlMod" in captured.out

    def test_motor_model_validation_attaches_the_plant(self, tmp_path):
        out = tmp_path / "motor.json"
        exit_code = main(["--model", "motor", "--validate",
                          "--out", str(out)])
        assert exit_code == 0
        report = json.loads(out.read_text())
        assert report["validation"]
        assert all(item["ok"] for item in report["validation"])

    def test_full_scores_flag_includes_every_candidate(self, tmp_path):
        out = tmp_path / "full.json"
        assert main(["--quick", "--full-scores", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert len(report["scores"]) == report["evaluated"]

    def test_pin_flag_restricts_the_space(self, tmp_path):
        out = tmp_path / "pinned.json"
        exit_code = main(["--model", "testkit", "--networks", "1",
                          "--mode", "exhaustive",
                          "--pin", "Prod0=sw", "--out", str(out)])
        assert exit_code == 0
        report = json.loads(out.read_text())
        assert "Prod0" in report["pinned_sw"]
        for entry in report["front"]:
            assert "Prod0" not in entry["hw_modules"]

    def test_bad_pin_is_rejected_before_building_the_model(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(["--pin", "Prod0=fpga"])
        assert excinfo.value.code == 2
        assert "expects MODULE=sw or MODULE=hw" in capsys.readouterr().err

    def test_testkit_only_flags_are_rejected_for_the_motor_model(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(["--model", "motor", "--seed", "7"])
        assert excinfo.value.code == 2
        assert "only apply to --model testkit" in capsys.readouterr().err

    def test_invalid_networks_value_is_a_clean_error(self, capsys):
        assert main(["--networks", "0"]) == 2
        assert "networks must be >= 1" in capsys.readouterr().err

    def test_quick_respects_an_explicit_model(self, capsys):
        assert main(["--quick", "--model", "motor"]) == 0
        captured = capsys.readouterr()
        assert "AdaptiveMotorController" in captured.out
        assert "exhaustive mode" in captured.out

    def test_workers_flag_matches_serial_output(self, tmp_path):
        serial, parallel = tmp_path / "serial.json", tmp_path / "parallel.json"
        base = ["--model", "testkit", "--networks", "2",
                "--mode", "exhaustive", "--full-scores"]
        assert main(base + ["--out", str(serial)]) == 0
        assert main(base + ["--workers", "2", "--out", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()
