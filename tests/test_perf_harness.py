"""Smoke tests of the kernel perf harness (``python -m benchmarks.perf``).

Running the harness's quick mode inside the test suite guarantees the
benchmark code keeps working as the kernel evolves — a harness that only
runs by hand silently rots.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.perf import (  # noqa: E402  (path setup above)
    WORKLOADS,
    compute_speedups,
    run_suite,
    update_bench_file,
)


def test_quick_suite_times_every_workload_point():
    run = run_suite(quick=True, process_counts=(5, 10))
    assert len(run["results"]) == len(WORKLOADS) * 2
    for point in run["results"]:
        assert point["wall_s"] >= 0
        assert point["sim_ns"] > 0
        assert point["statistics"]["process_runs"] > 0
    assert run["quick"] is True
    assert run["process_counts"] == [5, 10]


def test_idle_heavy_workload_is_actually_idle():
    # The workload contract the benchmark interprets: idle waiters run only
    # once (initially), whatever their count.
    run = run_suite(quick=True, process_counts=(5, 50))
    by_n = {
        (p["workload"], p["n_processes"]): p["statistics"] for p in run["results"]
    }
    small = by_n[("idle_heavy", 5)]
    large = by_n[("idle_heavy", 50)]
    assert large["process_runs"] - small["process_runs"] == 45


def test_update_bench_file_merges_labels_and_computes_speedup(tmp_path):
    path = tmp_path / "bench.json"
    run = run_suite(quick=True, process_counts=(5,))
    update_bench_file(path, "seed", run)
    document = update_bench_file(path, "current", run)
    assert set(document["runs"]) == {"seed", "current"}
    assert "speedup" in document
    acceptance = document["acceptance"]
    # The quick sweep does not include the 10k acceptance point, so the
    # verdict must be "not passed" rather than crashing or passing vacuously.
    assert acceptance["speedup"] is None
    assert acceptance["pass"] is False
    for points in document["speedup"].values():
        for ratio in points.values():
            assert ratio > 0
    reloaded = json.loads(path.read_text())
    assert reloaded["schema"] == "bench-kernel/1"


def test_invalid_repeats_rejected():
    import pytest

    from benchmarks.perf.harness import time_point
    from benchmarks.perf.workloads import WORKLOADS as workloads

    with pytest.raises(ValueError, match="repeats"):
        time_point(workloads[0], 5, quick=True, repeats=0)


def test_compute_speedups_only_compares_shared_points():
    seed = {"results": [
        {"workload": "idle_heavy", "n_processes": 10, "wall_s": 2.0},
        {"workload": "idle_heavy", "n_processes": 10_000, "wall_s": 50.0},
    ]}
    current = {"results": [
        {"workload": "idle_heavy", "n_processes": 10, "wall_s": 1.0},
        {"workload": "idle_heavy", "n_processes": 100, "wall_s": 1.0},
    ]}
    speedup, acceptance = compute_speedups(seed, current)
    assert speedup == {"idle_heavy": {"10": 2.0}}
    assert acceptance["pass"] is False
