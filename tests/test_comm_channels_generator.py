"""Unit tests of channel factories and the automatic view generation."""

import pytest

from repro.comm import (
    build_view_library,
    fifo_channel,
    generate_service_views,
    handshake_channel,
    shared_register_channel,
)
from repro.core.views import ViewKind
from repro.platforms import get_platform
from repro.utils.errors import ViewError


class TestChannelFactories:
    def test_handshake_channel_is_consistent(self):
        unit = handshake_channel("Chan", put_name="P", get_name="G")
        assert unit.check_ports() == []
        assert set(unit.services) == {"P", "G"}
        assert len(unit.controllers) == 1

    def test_fifo_channel_depth_and_consistency(self):
        unit = fifo_channel("Fifo", depth=3)
        assert unit.check_ports() == []
        assert "depth 3" in unit.controller.description

    def test_shared_register_channel_has_no_controller(self):
        unit = shared_register_channel("Reg")
        assert unit.controllers == []
        assert unit.check_ports() == []

    def test_prefix_normalisation(self):
        unit = handshake_channel("Chan", prefix="ABC")
        assert any(name.startswith("ABC_") for name in unit.ports)


class TestViewGeneration:
    def test_generate_views_for_one_service(self):
        unit = handshake_channel("Chan", put_name="P", get_name="G")
        platform = get_platform("pc_at_fpga")
        views = generate_service_views(
            unit, "P", platforms={"pc_at_fpga": platform.port_syntax(list(unit.ports))}
        )
        kinds = {view.kind for view in views}
        assert kinds == {ViewKind.HW, ViewKind.SW_SIM, ViewKind.SW_SYNTH}
        hw = next(view for view in views if view.kind is ViewKind.HW)
        sim = next(view for view in views if view.kind is ViewKind.SW_SIM)
        synth = next(view for view in views if view.kind is ViewKind.SW_SYNTH)
        assert hw.language == "vhdl" and "procedure P(" in hw.text
        assert "cliOutput" in sim.text
        assert "outport(0x3" in synth.text
        assert synth.platform == "pc_at_fpga"
        assert synth.metadata["read_cycles"] > 0

    def test_build_view_library_covers_all_services(self):
        units = [handshake_channel("Chan", put_name="P", get_name="G"),
                 shared_register_channel("Reg", put_name="W", get_name="R")]
        library = build_view_library(units)
        assert sorted(library.services()) == ["G", "P", "R", "W"]
        # Two views (HW + SW_SIM) per service when no platforms are given.
        assert len(library) == 8
        assert library.missing_views(["P", "G", "R", "W"]) == []

    def test_duplicate_service_name_across_units_rejected(self):
        units = [handshake_channel("A", put_name="P", get_name="G1"),
                 handshake_channel("B", put_name="P", get_name="G2")]
        with pytest.raises(ViewError, match="more than one unit"):
            build_view_library(units)

    def test_library_extension_keeps_existing_views(self):
        first = build_view_library([handshake_channel("A", put_name="P", get_name="G")])
        combined = build_view_library(
            [shared_register_channel("B", put_name="W", get_name="R")], library=first
        )
        assert combined is first
        assert sorted(combined.services()) == ["G", "P", "R", "W"]

    def test_views_per_platform(self):
        unit = handshake_channel("Chan", put_name="P", get_name="G")
        platforms = {
            "pc_at_fpga": get_platform("pc_at_fpga").port_syntax(list(unit.ports)),
            "microcoded": get_platform("microcoded").port_syntax(list(unit.ports)),
        }
        library = build_view_library([unit], platforms=platforms)
        assert library.platforms() == ["microcoded", "pc_at_fpga"]
        pc_view = library.get("P", ViewKind.SW_SYNTH, "pc_at_fpga")
        micro_view = library.get("P", ViewKind.SW_SYNTH, "microcoded")
        assert "outport" in pc_view.text
        assert "ucode_write" in micro_view.text
