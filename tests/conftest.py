"""Shared fixtures: small systems reused across the test suite."""

import pytest

#: The built-in platform set, pinned explicitly so registry changes made by
#: other tests (custom platform registration) cannot leak into fixtures.
ALL_PLATFORMS = ("microcoded", "multiproc", "pc_at_fpga", "unix_ipc")
HW_PLATFORMS = ("microcoded", "multiproc", "pc_at_fpga")

from repro.comm import handshake_channel
from repro.core import SystemModel, SoftwareModule, HardwareModule
from repro.core.service import Service, ServiceParam
from repro.ir import FsmBuilder, Assign, PortWrite, var, port, INT
from repro.ir.dtypes import word_type


def make_put_like_service(name="PUT", prefix=""):
    """A Figure-3-style PUT service over DATAIN / B_FULL / PUTRDY ports."""
    data_type = word_type(16)
    build = FsmBuilder(name)
    build.variable("REQUEST", data_type, 0)
    with build.state("INIT") as state:
        state.go("WAIT_B_FULL", when=port(f"{prefix}B_FULL").eq(1))
        state.go("DATA_RDY", actions=[PortWrite(f"{prefix}DATAIN", var("REQUEST")),
                                      PortWrite(f"{prefix}PUTRDY", 1)])
    with build.state("WAIT_B_FULL") as state:
        state.go("INIT", when=port(f"{prefix}B_FULL").eq(0))
        state.stay()
    with build.state("DATA_RDY") as state:
        state.go("IDLE", when=port(f"{prefix}B_FULL").eq(1),
                 actions=[PortWrite(f"{prefix}PUTRDY", 0)])
        state.stay()
    with build.state("IDLE", done=True) as state:
        state.go("INIT")
    fsm = build.build(initial="INIT")
    return Service(name, fsm, params=[ServiceParam("REQUEST", data_type)],
                   interface="HostIf")


def make_host_module(words=5, start=10, name="HostMod", service="HostPut"):
    """Software module sending *words* increasing values through *service*."""
    build = FsmBuilder("HOST")
    build.variable("VALUE", INT, start)
    build.variable("COUNT", INT, 0)
    with build.state("Send") as state:
        state.call(service, args=[var("VALUE")], then="Advance")
    with build.state("Advance") as state:
        state.go("Finish", when=var("COUNT").ge(words - 1))
        state.go("Send", actions=[Assign("VALUE", var("VALUE") + 1),
                                  Assign("COUNT", var("COUNT") + 1)])
    with build.state("Finish", done=True) as state:
        state.stay()
    return SoftwareModule(name, build.build(initial="Send"))


def make_server_module(name="ServerMod", service="ServerGet"):
    """Hardware module accumulating every word received through *service*."""
    build = FsmBuilder("SERVER")
    build.variable("RX", INT, 0)
    build.variable("TOTAL", INT, 0)
    build.variable("RECEIVED", INT, 0)
    with build.state("Receive") as state:
        state.call(service, store="RX", then="Accumulate")
    with build.state("Accumulate") as state:
        state.go("Receive", actions=[Assign("TOTAL", var("TOTAL") + var("RX")),
                                     Assign("RECEIVED", var("RECEIVED") + 1)])
    return HardwareModule(name, [build.build(initial="Receive")])


def make_producer_consumer_model(words=5, start=10):
    """Complete Figure-2-style system: host + server + handshake channel."""
    model = SystemModel("ProducerConsumer")
    model.add_comm_unit(
        handshake_channel("Channel", put_name="HostPut", get_name="ServerGet",
                          prefix="HS", put_interface="HostIf",
                          get_interface="ServerIf")
    )
    model.add_software_module(make_host_module(words=words, start=start))
    model.add_hardware_module(make_server_module())
    model.bind("HostMod", "HostPut", "Channel")
    model.bind("ServerMod", "ServerGet", "Channel")
    return model


@pytest.fixture
def put_service():
    return make_put_like_service()


@pytest.fixture
def producer_consumer_model():
    return make_producer_consumer_model()


@pytest.fixture
def motor_config():
    from repro.apps.motor_controller import MotorControllerConfig
    return MotorControllerConfig(final_position=24, segment=8, speed_limit=6)


@pytest.fixture(scope="module")
def motor_cosim_result():
    """One shared co-simulation run of a small motor scenario (module scope)."""
    from repro.apps.motor_controller import MotorControllerConfig, build_session
    config = MotorControllerConfig(final_position=24, segment=8, speed_limit=6)
    session = build_session(config)
    result = session.run_until_software_done(max_time=10_000_000)
    return config, session, result


@pytest.fixture(scope="module")
def pc_at_cosynthesis():
    """One shared co-synthesis run onto the PC-AT/FPGA platform (module scope)."""
    from repro.apps.motor_controller import (
        MotorControllerConfig, build_system, build_view_library_for,
    )
    from repro.cosyn import CosynthesisFlow
    from repro.platforms import get_platform

    config = MotorControllerConfig()
    model, _ = build_system(config)
    platform = get_platform("pc_at_fpga")
    library = build_view_library_for({platform.name: platform}, config)
    flow = CosynthesisFlow(model, platform, library=library)
    return config, model, platform, library, flow.run()
