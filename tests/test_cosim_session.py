"""Integration tests of the co-simulation session on the producer/consumer system."""

import pytest

from repro.comm import build_view_library
from repro.cosim import CosimSession, RunToIdle
from repro.desim import Monitor
from repro.utils.errors import SimulationError

from tests.conftest import make_producer_consumer_model


def run_producer_consumer(words=5, **session_kwargs):
    model = make_producer_consumer_model(words=words)
    session = CosimSession(model, **session_kwargs)
    result = session.run_until_software_done(max_time=500_000)
    return model, session, result


class TestProducerConsumerCosimulation:
    def test_all_words_are_transferred(self):
        _, session, result = run_producer_consumer(words=5)
        server = session.hardware_adapter("ServerMod").process_variables("SERVER")
        assert server["RECEIVED"] == 5
        assert server["TOTAL"] == sum(range(10, 15))
        assert result.sw_finished["HostMod"] is True

    def test_trace_matches_transfer_count(self):
        _, _, result = run_producer_consumer(words=4)
        assert result.trace.count(service="HostPut") == 4
        assert result.trace.count(service="ServerGet") == 4
        assert result.trace.mean_latency("HostPut") > 0

    def test_software_state_history_one_transition_per_activation(self):
        _, session, _ = run_producer_consumer(words=3)
        executor = session.software_executor("HostMod")
        history = executor.state_history()
        assert history[0] == "Send"
        assert history[-1] == "Finish"
        # One-transition rule: number of visited states == fired transitions + 1.
        assert len(history) == executor.transitions + 1

    def test_unit_and_module_signal_lookup(self):
        _, session, _ = run_producer_consumer(words=2)
        assert session.unit_signal("Channel", "HS_FULL").name == "Channel_HS_FULL"
        with pytest.raises(SimulationError):
            session.unit_signal("Channel", "MISSING")
        with pytest.raises(SimulationError):
            session.module_signal("ServerMod", "MISSING")
        with pytest.raises(SimulationError):
            session.software_executor("ServerMod")
        with pytest.raises(SimulationError):
            session.hardware_adapter("HostMod")

    def test_waveform_records_channel_activity(self):
        _, session, _ = run_producer_consumer(words=3)
        full_changes = session.waveform.history("Channel_HS_FULL")
        assert len(full_changes) >= 6, "FULL must toggle at least once per word"

    def test_monitor_integration(self):
        model = make_producer_consumer_model(words=3)
        session = CosimSession(model)
        monitor = session.add_monitor(
            Monitor("data_in_range",
                    lambda sim: sim.peek("Channel_HS_BUF") < 100,
                    message="buffered word out of range")
        )
        result = session.run_until_software_done(max_time=200_000)
        assert monitor.checks > 0
        assert result.all_monitors_ok

    def test_run_to_idle_policy_needs_fewer_activations(self):
        # The policies only differ when software activations are expensive
        # relative to the hardware clock (the back-annotated situation).
        _, _, one_shot = run_producer_consumer(words=4, sw_activation_period=1100)
        _, _, batched = run_producer_consumer(words=4, sw_activation_period=1100,
                                              activation_policy=RunToIdle())
        assert batched.sw_activations["HostMod"] < one_shot.sw_activations["HostMod"]
        # Functional outcome identical.
        assert batched.trace.count(service="HostPut") == one_shot.trace.count(
            service="HostPut")

    def test_validation_runs_at_construction(self):
        model = make_producer_consumer_model()
        model.bindings.clear()
        from repro.utils.errors import ValidationError
        with pytest.raises(ValidationError):
            CosimSession(model)

    def test_validation_can_use_view_library(self):
        model = make_producer_consumer_model()
        library = build_view_library([model.comm_unit("Channel")])
        session = CosimSession(model, library=library)
        result = session.run_until_software_done(max_time=200_000)
        assert result.sw_finished["HostMod"]

    def test_result_summary_fields(self):
        _, _, result = run_producer_consumer(words=2)
        summary = result.summary()
        assert summary["system"] == "ProducerConsumer"
        assert summary["service_calls"] == len(result.trace)
        assert summary["monitors_ok"] is True
        assert result.statistics["process_runs"] > 0

    def test_slower_clock_still_functionally_correct(self):
        _, session, result = run_producer_consumer(words=3, clock_period=500)
        server = session.hardware_adapter("ServerMod").process_variables("SERVER")
        assert server["RECEIVED"] == 3
        assert result.end_time > 0

    def test_software_slower_than_hardware_still_correct(self):
        _, session, _ = run_producer_consumer(words=3, clock_period=100,
                                              sw_activation_period=1700)
        server = session.hardware_adapter("ServerMod").process_variables("SERVER")
        assert server["RECEIVED"] == 3

    def test_build_is_idempotent(self):
        model = make_producer_consumer_model(words=2)
        session = CosimSession(model)
        session.build()
        session.build()
        result = session.run_until_software_done(max_time=200_000)
        assert result.sw_finished["HostMod"]
