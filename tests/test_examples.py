"""The example scripts must run to completion *and* report the right outcome.

Each script prints its functional end state; the assertions below pin that
state (positions reached, words transferred, constraints satisfied), so an
example silently producing wrong results fails the suite even though it
still exits 0.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: script -> substrings its stdout must contain (the reported end state).
EXPECTED_OUTPUT = {
    "quickstart.py": [
        "server received 5 words, total = 60",
        "HostPut",
        "ServerGet",
        "hw view (vhdl)",
        "sw_sim view (c)",
        "sw_synth view (c)",
    ],
    "motor_controller_cosim.py": [
        "motor_position: 60",
        "motor_pulses: 60",
        "missed_pulses: 0",
        "segments_commanded: 4",
        "final_sw_state: Finish",
        "software_finished: True",
        "| pulse_ok                     | True    |",
        "| response_ok                  | True    |",
        "| overall                      | MET     |",
    ],
    "motor_controller_cosynthesis.py": [
        "co-synthesis of AdaptiveMotorController onto pc_at_fpga",
        "all co-synthesis constraints satisfied",
        "device XC4010 (fits)",
        "back-annotation: BackAnnotation(",
    ],
    "retarget_platforms.py": [
        "| pc_at_fpga | yes",
        "| microcoded | yes",
        "| multiproc  | yes",
        "platforms with SW synthesis views: ['microcoded', 'multiproc', 'pc_at_fpga']",
    ],
    "two_axis_table.py": [
        "| X    | 60",
        "| Y    | 24",
        "2-D table co-simulation finished",
    ],
}

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_every_example_has_expectations():
    # A new example must declare its expected end state here, so it cannot
    # join the repo as an import-only smoke test.
    assert EXAMPLES == sorted(EXPECTED_OUTPUT)


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_reports_expected_end_state(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout, "examples are expected to print their results"
    missing = [expected for expected in EXPECTED_OUTPUT[script]
               if expected not in completed.stdout]
    assert not missing, (
        f"{script} did not report the expected end state; missing "
        f"{missing!r}; stdout tail:\n{completed.stdout[-2000:]}"
    )
