"""The example scripts must run to completion (they contain their own asserts)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "motor_controller_cosim.py",
    "motor_controller_cosynthesis.py",
    "retarget_platforms.py",
    "two_axis_table.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout, "examples are expected to print their results"
