"""Determinism and merge coverage of the area/timing estimator.

The DSE cost model memoizes per-module estimates and sums/maxes them via
:meth:`AreaTimingEstimate.merge`; both only make sense when the same FSMD
always yields the identical estimate.
"""

from repro.core.module import HardwareModule
from repro.cosyn.hls.estimate import AreaTimingEstimate, estimate_fsmd, estimate_module
from repro.dse.cost import build_hw_fsmds
from repro.ir import Assign, FsmBuilder, INT, var


def make_compute_fsm(name="CALC"):
    build = FsmBuilder(name)
    build.variable("A", INT, 1)
    build.variable("B", INT, 2)
    build.variable("C", INT, 0)
    with build.state("Work") as state:
        state.go("More", actions=[Assign("C", var("A") * var("B") + var("C"))])
    with build.state("More") as state:
        state.go("Work", actions=[Assign("A", var("A") + 1),
                                  Assign("B", var("B") - var("A"))])
    return build.build(initial="Work")


def make_fsmds(name="CALC"):
    return build_hw_fsmds(HardwareModule("CalcMod", [make_compute_fsm(name)]))


class TestAreaTimingEstimateMerge:
    def test_merge_sums_area_and_maxes_critical_path(self):
        left = AreaTimingEstimate("L", clbs_datapath=10, clbs_registers=4,
                                  clbs_controller=6, clbs_interconnect=2,
                                  critical_path_ns=30.0, flip_flops=20)
        right = AreaTimingEstimate("R", clbs_datapath=1, clbs_registers=2,
                                   clbs_controller=3, clbs_interconnect=4,
                                   critical_path_ns=45.0, flip_flops=8)
        merged = left.merge(right)
        assert merged.name == "L+R"
        assert merged.clbs_datapath == 11
        assert merged.clbs_registers == 6
        assert merged.clbs_controller == 9
        assert merged.clbs_interconnect == 6
        assert merged.clbs_total == left.clbs_total + right.clbs_total
        assert merged.flip_flops == 28
        assert merged.critical_path_ns == 45.0

    def test_merge_is_commutative_on_totals(self):
        (fsmd,) = make_fsmds()
        first = estimate_fsmd(fsmd)
        second = AreaTimingEstimate("other", clbs_datapath=5,
                                    critical_path_ns=99.0, flip_flops=3)
        ab, ba = first.merge(second), second.merge(first)
        assert ab.clbs_total == ba.clbs_total
        assert ab.flip_flops == ba.flip_flops
        assert ab.critical_path_ns == ba.critical_path_ns

    def test_merge_accepts_explicit_name(self):
        left = AreaTimingEstimate("L")
        assert left.merge(AreaTimingEstimate("R"), name="Both").name == "Both"

    def test_merge_does_not_mutate_operands(self):
        left = AreaTimingEstimate("L", clbs_datapath=10, critical_path_ns=30.0)
        right = AreaTimingEstimate("R", clbs_datapath=1, critical_path_ns=45.0)
        left.merge(right)
        assert left.clbs_datapath == 10 and right.clbs_datapath == 1
        assert left.critical_path_ns == 30.0


class TestEstimateDeterminism:
    def test_same_fsmd_yields_identical_estimate(self):
        first = estimate_fsmd(make_fsmds()[0])
        second = estimate_fsmd(make_fsmds()[0])
        assert first.as_dict() == second.as_dict()

    def test_estimate_module_is_deterministic(self):
        totals = []
        for _ in range(2):
            total, per_process = estimate_module(make_fsmds(), "CalcMod")
            assert total.name == "CalcMod"
            assert len(per_process) == 1
            totals.append(total.as_dict())
        assert totals[0] == totals[1]

    def test_estimate_module_merges_multiple_processes(self):
        fsmds = make_fsmds("P1") + make_fsmds("P2")
        total, per_process = estimate_module(fsmds, "TwoProc")
        assert len(per_process) == 2
        assert total.clbs_total == sum(e.clbs_total for e in per_process)
        assert total.critical_path_ns == max(e.critical_path_ns
                                             for e in per_process)

    def test_dse_hardware_cost_equals_direct_estimate(self):
        """The memoized DSE hardware cost is exactly the estimator's answer."""
        from repro.dse.cost import CandidateEvaluator
        from tests.conftest import make_producer_consumer_model

        model = make_producer_consumer_model()
        evaluator = CandidateEvaluator(model, ("pc_at_fpga",))
        cached = evaluator.hardware_cost("ServerMod")
        direct, _ = estimate_module(
            build_hw_fsmds(model.module("ServerMod")), "ServerMod")
        assert cached.as_dict() == direct.as_dict()
