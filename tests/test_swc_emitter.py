"""Unit tests of the C back end (SW simulation and SW synthesis views)."""

import pytest

from repro.ir import FsmBuilder, Assign, If, INT, PortWrite, port, var
from repro.ir.expr import BinOp, UnOp
from repro.swc import (
    CliPortSyntax,
    IoPortSyntax,
    IpcSyntax,
    MicrocodeSyntax,
    emit_expr,
    emit_module_function,
    emit_program,
    emit_service_view,
    emit_stmt,
)
from repro.utils.errors import SynthesisError

from tests.conftest import make_host_module, make_put_like_service


class TestExpressionEmission:
    def test_operators(self):
        syntax = CliPortSyntax()
        assert emit_expr(var("a") + 1, syntax) == "(a + 1)"
        assert emit_expr(var("a").eq(2), syntax) == "(a == 2)"
        assert emit_expr(var("a").and_(var("b")), syntax) == "(a && b)"
        assert emit_expr(UnOp("not", var("a")), syntax) == "(!a)"
        assert emit_expr(UnOp("abs", var("a")), syntax) == "((a) < 0 ? -(a) : (a))"

    def test_min_max_emit_ternaries(self):
        text = emit_expr(BinOp("min", var("a"), var("b")), CliPortSyntax())
        assert "?" in text and "<" in text

    def test_port_read_uses_syntax(self):
        assert emit_expr(port("B_FULL"), CliPortSyntax()) == "cliGetPortValue(map(B_FULL))"
        io_syntax = IoPortSyntax({"B_FULL": 0x301})
        assert emit_expr(port("B_FULL"), io_syntax) == "inport(0x301)"

    def test_enum_prefix_applied_to_string_constants(self):
        from repro.ir.expr import Const
        assert emit_expr(Const("INIT"), CliPortSyntax(), enum_prefix="PUT_") == "PUT_INIT"

    def test_statement_emission(self):
        syntax = CliPortSyntax()
        assert emit_stmt(Assign("x", 1), syntax) == ["  x = 1;"]
        assert emit_stmt(PortWrite("DATAIN", var("x")), syntax) == [
            "  cliOutput(map(DATAIN), x);"
        ]
        lines = emit_stmt(If(var("x").eq(1), [Assign("y", 2)], [Assign("y", 3)]), syntax)
        assert lines[0] == "  if ((x == 1)) {"
        assert any("else" in line for line in lines)


class TestSyntaxes:
    def test_io_syntax_requires_address(self):
        syntax = IoPortSyntax({"DATAIN": 0x300})
        with pytest.raises(SynthesisError):
            syntax.read_expr("UNKNOWN")

    def test_io_syntax_prologue_lists_addresses(self):
        syntax = IoPortSyntax({"DATAIN": 0x300, "B_FULL": 0x301})
        prologue = "\n".join(syntax.prologue())
        assert "#define map_DATAIN 0x300" in prologue
        assert "#define map_B_FULL 0x301" in prologue

    def test_ipc_syntax(self):
        syntax = IpcSyntax({"DATAIN": "42"})
        assert syntax.read_expr("DATAIN") == "ipc_receive(42)"
        assert "ipc_send" in syntax.write_stmt("DATAIN", "5")
        assert syntax.read_cycles > 100

    def test_microcode_syntax(self):
        syntax = MicrocodeSyntax()
        assert syntax.read_expr("DATAIN") == "ucode_read(DATAIN_REG)"
        assert "ucode_write" in syntax.write_stmt("DATAIN", "1")


class TestServiceView:
    def test_simulation_view_shape(self, put_service):
        text = emit_service_view(put_service)
        assert "int PUT(unsigned int REQUEST)" in text
        assert "cliGetPortValue(map(B_FULL))" in text
        assert "cliOutput(map(DATAIN), REQUEST);" in text
        assert "switch (PUT_NEXTSTATE)" in text
        assert "return DONE;" in text
        assert "PUT_INIT, PUT_WAIT_B_FULL, PUT_DATA_RDY, PUT_IDLE" in text

    def test_synthesis_view_uses_physical_addresses(self, put_service):
        syntax = IoPortSyntax({"DATAIN": 0x300, "B_FULL": 0x301, "PUTRDY": 0x302})
        text = emit_service_view(put_service, syntax)
        assert "inport(0x301)" in text
        assert "outport(0x300, REQUEST);" in text
        assert "cliOutput" not in text

    def test_views_differ_only_in_port_accesses(self, put_service):
        sim_view = emit_service_view(put_service)
        synth_view = emit_service_view(
            put_service, IoPortSyntax({"DATAIN": 0x300, "B_FULL": 0x301, "PUTRDY": 0x302})
        )
        # Same control structure: identical number of case labels and states.
        assert sim_view.count("case ") == synth_view.count("case ")
        assert sim_view.count("NEXTSTATE =") == synth_view.count("NEXTSTATE =")

    def test_service_returning_value_gets_output_parameter(self):
        from repro.comm import make_get_service
        service = make_get_service("GET", "HS_")
        text = emit_service_view(service)
        assert "int GET(unsigned int *VALUE_out)" in text
        assert "*VALUE_out = VALUE;" in text

    def test_service_with_nested_call_rejected(self):
        build = FsmBuilder("NESTED")
        with build.state("A") as state:
            state.call("Other", then="B")
        with build.state("B", done=True) as state:
            state.stay()
        from repro.core.service import Service
        service = Service("NESTED", build.build(initial="A"))
        with pytest.raises(SynthesisError):
            emit_service_view(service)


class TestModuleFunction:
    def test_module_function_shape(self):
        module = make_host_module()
        text = emit_module_function(module)
        assert "int HOST(void)" in text
        assert "if (HostPut(VALUE)) { NextState = HOST_Advance; }" in text
        assert "switch (NextState)" in text

    def test_store_becomes_pointer_argument(self):
        from repro.core.module import SoftwareModule
        build = FsmBuilder("READER")
        build.variable("RX", INT, 0)
        with build.state("Fetch") as state:
            state.call("ServerGet", store="RX", then="Finish")
        with build.state("Finish", done=True) as state:
            state.stay()
        module = SoftwareModule("ReaderMod", build.build(initial="Fetch"))
        text = emit_module_function(module)
        assert "ServerGet(&RX)" in text

    def test_program_assembles_views_and_main(self, put_service):
        module = make_host_module(service="PUT")
        text = emit_program(module, [put_service], platform_name="pc_at_fpga")
        assert "Target platform: pc_at_fpga" in text
        assert "int PUT(unsigned int REQUEST)" in text
        assert "int HOST(void)" in text
        assert "int main(void)" in text
        assert text.index("int PUT") < text.index("int HOST") < text.index("int main")
