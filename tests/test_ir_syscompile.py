"""Whole-system compilation (:mod:`repro.ir.syscompile`) contracts.

The fused tier's one promise is *invisibility*: a session run on the
generated whole-system step function must be byte-identical — waveforms,
traces, states, kernel statistics — to the per-FSM compiled tier and the
interpreter, on both kernels.  This file pins that promise over the
testkit's generated population (plain, fault-injected and real-time
scenario families), plus the machinery around it: the differential
shadow oracle, batched multi-scenario execution, source caching, the
lint pre-flight refusal path and the tier counters.

The full 334-scenario sweep across all three tiers runs via
``python -m repro.testkit --system-mode differential``; here the same
check runs at quick scale so tier-1 catches a divergence early.
"""

import pytest

from repro.cosim import CosimSession
from repro.ir import (
    SystemCompileError,
    compile_system,
    generate_system_source,
    model_digest,
    system_spec,
)
from repro.ir.syscompile import SOURCE_FORMAT, SystemProgram
from repro.lint.selfcheck import MUTANTS
from repro.sweep.cache import ArtifactCache
from repro.sweep.jobs import CosimJob
from repro.testkit.models import generate_system
from repro.testkit.oracles import check_cosim_conformance, cosim_fingerprint
from repro.testkit.scenarios import (
    FAULT_KINDS,
    FaultScenario,
    RealtimeScenario,
    check_fault_scenario,
    check_realtime_scenario,
)
from repro.utils.canonical import content_digest
from repro.utils.errors import SimulationError


class TestLockstepDifferential:
    """Fused vs per-FSM vs interpreter, both kernels, byte-identical."""

    @staticmethod
    def _tier_fingerprints(seed, kernel, until=40_000):
        system = generate_system(seed)
        fingerprints = []
        for system_mode in ("fused", "per-fsm", "interpreted"):
            session = CosimSession(system.build_model(), kernel=kernel,
                                   system_mode=system_mode,
                                   **system.cosim_params)
            result = session.run(until=until)
            fingerprints.append(cosim_fingerprint(session, result))
        return fingerprints

    @pytest.mark.parametrize("seed", range(10))
    def test_generated_system_identical_across_tiers(self, seed):
        fused, per_fsm, interpreted = self._tier_fingerprints(seed,
                                                              "production")
        assert fused == per_fsm
        assert fused == interpreted

    @pytest.mark.parametrize("seed", [2, 7])
    def test_reference_kernel_agrees_too(self, seed):
        assert self._tier_fingerprints(seed, "production") \
            == self._tier_fingerprints(seed, "reference")

    @pytest.mark.parametrize("seed", [0, 5])
    def test_full_conformance_matrix_at_quick_scale(self, seed):
        # The complete oracle (completion runs, determinism double-runs,
        # functional expectations) across all three tiers on both kernels;
        # the 334-scenario version runs via
        # ``python -m repro.testkit --system-mode differential``.
        problems = check_cosim_conformance(generate_system(seed),
                                           system_mode="differential")
        assert not problems, "\n".join(problems)

    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_fault_family_identical_across_tiers(self, kind, seed):
        problems = check_fault_scenario(FaultScenario(seed, kind),
                                        system_mode="differential")
        assert not problems, "\n".join(problems)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_realtime_family_identical_across_tiers(self, seed):
        problems = check_realtime_scenario(RealtimeScenario(seed),
                                           system_mode="differential")
        assert not problems, "\n".join(problems)


class TestSessionModes:
    def test_fused_is_the_default_tier(self):
        session = CosimSession(generate_system(0).build_model())
        session.run(until=20_000)
        assert session.system_tier == "fused"
        counters = session.fsm_counters()
        assert counters["system_compile_hits"] > 0
        assert counters["system_fallback"] == 0
        # Every hardware step is accounted to exactly one tier.
        assert counters["steps"] == (counters["compile_hits"]
                                     + counters["fallback"]
                                     + counters["system_compile_hits"])

    def test_interpreted_system_mode_forces_interpreted_fsms(self):
        model = generate_system(0).build_model()
        session = CosimSession(model, system_mode="interpreted")
        session.run(until=5_000)
        assert session.system_tier == "interpreted"
        assert session.fsm_counters()["system_compile_hits"] == 0
        with pytest.raises(SimulationError):
            CosimSession(model, system_mode="interpreted",
                         fsm_mode="compiled")

    def test_detect_races_falls_back_to_per_fsm(self):
        session = CosimSession(generate_system(0).build_model(),
                               detect_races=True)
        session.build()
        assert session.system_tier == "per-fsm"
        assert "detect_races" in session.system_fallback_reason

    def test_differential_session_runs_clean_on_a_real_model(self):
        session = CosimSession(generate_system(3).build_model(),
                               system_mode="differential")
        session.run(until=20_000)
        assert session.system_tier == "differential"
        checker = session.system_checker
        assert checker.checked_edges > 0
        assert checker.compared_steps > 0

    def test_differential_flags_a_diverging_prediction(self):
        # Unit-level: a shadow whose prediction disagrees with what the
        # per-FSM instance actually did must raise, naming the instance.
        class _Clock:
            _value = 1
            last_changed = 0

        class _Instance:
            current = "A"
            env = {}
            transitions_fired = 0

        def shadow(pre, out):
            out[0] = ("B", {}, 1)  # predicts a transition that never fired

        from repro.ir.syscompile import ShadowChecker

        checker = ShadowChecker(_Clock(), [_Instance()], ["Net0.Ctrl"],
                                shadow)
        checker.pre()
        with pytest.raises(SimulationError,
                           match="system differential divergence"):
            checker.post()

    def test_differential_skips_unpredicted_instances(self):
        class _Clock:
            _value = 1
            last_changed = 0

        class _Instance:
            current = "A"
            env = {}
            transitions_fired = 0

        def shadow(pre, out):
            out[0] = None  # service-calling edge: comparison is skipped

        from repro.ir.syscompile import ShadowChecker

        checker = ShadowChecker(_Clock(), [_Instance()], ["Net0.Ctrl"],
                                shadow)
        checker.pre()
        checker.post()
        assert checker.checked_edges == 1
        assert checker.compared_steps == 0


class TestCheckpointUnderFused:
    def test_resume_matches_uninterrupted_fused_run(self):
        system = generate_system(4)
        straight = CosimSession(system.build_model(), **system.cosim_params)
        expected = straight.run(until=30_000)
        assert straight.system_tier == "fused"

        interrupted = CosimSession(system.build_model(),
                                   **system.cosim_params)
        interrupted.run(until=12_345)
        checkpoint = interrupted.save()
        resumed = CosimSession(system.build_model(),
                               **system.cosim_params).restore(checkpoint)
        actual = resumed.run(until=30_000)
        assert actual.summary() == expected.summary()


class TestBatchedExecution:
    def test_batch_digest_folds_the_sequential_digests(self):
        sequential = [CosimJob(2, coverage=True).execute()
                      for _ in range(3)]
        batch_record, batch_payload = CosimJob(2, coverage=True,
                                               batch=3).execute()
        per_scenario = [record["fingerprint_digest"]
                        for record, _ in sequential]
        assert all(digest == per_scenario[0] for digest in per_scenario)
        assert len(batch_record["scenarios"]) == 3
        assert [entry["fingerprint_digest"]
                for entry in batch_record["scenarios"]] == per_scenario
        assert batch_record["fingerprint_digest"] \
            == content_digest(per_scenario)
        # Coverage payloads are per scenario and identical to standalone.
        assert batch_payload["coverage"] \
            == [payload["coverage"] for _, payload in sequential]

    def test_faulted_batch_spreads_injection_offsets(self):
        job = CosimJob(1, fault_kind="stuck_handshake", batch=2,
                       fault_at_offset=500)
        record, _ = job.execute()
        assert len(record["scenarios"]) == 2
        assert record["functional_problems"] is None
        assert job.spec()["fault_at_offset"] == 500

    def test_checkpoint_refuses_batch(self):
        with pytest.raises(ValueError, match="single-scenario"):
            CosimJob(0, checkpoint_at=1_000, batch=2)


class TestSourceCache:
    def test_artifact_cache_round_trips_generated_source(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        model = generate_system(5).build_model()
        program = compile_system(model, cache=cache)
        key = ArtifactCache.key_for({"kind": "syscompile",
                                     "format": SOURCE_FORMAT,
                                     "digest": model_digest(model)})
        payload = cache.get(key)
        assert payload is not None
        assert payload["source"] == program.source
        # A fresh, structurally identical model compiles from the cached
        # source: same digest, same program text, no regeneration needed.
        rebuilt = generate_system(5).build_model()
        assert model_digest(rebuilt) == model_digest(model)
        warm = compile_system(rebuilt, cache=cache)
        assert warm is not program  # weak cache is per model object
        assert warm.source == program.source

    def test_program_is_weakly_cached_per_model(self):
        model = generate_system(0).build_model()
        assert compile_system(model) is compile_system(model)

    def test_spec_records_protocol_templates(self):
        model = generate_system(1).build_model()
        spec = system_spec(model)
        assert spec["syscompile"] == SOURCE_FORMAT
        tags = [controller["protocol"]
                for unit in spec["units"]
                for controller in unit["controllers"]]
        source = generate_system_source(model)
        for tag in tags:
            if tag:
                assert f"protocol {tag}" in source

    def test_digest_excludes_bindings_but_not_structure(self):
        left = generate_system(6).build_model()
        right = generate_system(6).build_model()
        other = generate_system(7).build_model()
        assert model_digest(left) == model_digest(right)
        assert model_digest(left) != model_digest(other)


class TestLintPreflight:
    def _mutant_model(self):
        builder, rule = MUTANTS["dup-writer"]
        return builder()

    def test_lint_errors_refuse_compilation(self):
        with pytest.raises(SystemCompileError, match="lint errors"):
            compile_system(self._mutant_model())

    def test_lint_false_bypasses_the_preflight(self):
        program = compile_system(self._mutant_model(), lint=False)
        assert isinstance(program, SystemProgram)

    def test_session_degrades_to_per_fsm_with_reason(self):
        session = CosimSession(self._mutant_model())
        session.build()
        assert session.system_tier == "per-fsm"
        assert "lint errors" in session.system_fallback_reason
