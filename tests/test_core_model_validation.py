"""Unit tests of the system model and whole-model validation."""

import pytest

from repro.comm import build_view_library, handshake_channel
from repro.core import SystemModel, validate_model
from repro.core.views import MultiViewLibrary, ViewKind
from repro.utils.errors import ModelError, ValidationError

from tests.conftest import (
    make_host_module,
    make_producer_consumer_model,
    make_server_module,
)


class TestSystemModel:
    def test_duplicate_module_names_rejected(self):
        model = SystemModel("Sys")
        model.add_software_module(make_host_module())
        with pytest.raises(ModelError):
            model.add_software_module(make_host_module())

    def test_module_and_unit_namespaces_are_shared(self):
        model = SystemModel("Sys")
        model.add_comm_unit(handshake_channel("Shared"))
        with pytest.raises(ModelError):
            model.add_software_module(make_host_module(name="Shared"))

    def test_wrong_module_kind_rejected(self):
        model = SystemModel("Sys")
        with pytest.raises(ModelError):
            model.add_software_module(make_server_module())
        with pytest.raises(ModelError):
            model.add_hardware_module(make_host_module())

    def test_bind_validates_names(self):
        model = SystemModel("Sys")
        model.add_software_module(make_host_module())
        model.add_comm_unit(handshake_channel("Channel", put_name="HostPut"))
        with pytest.raises(ModelError):
            model.bind("NoModule", "HostPut", "Channel")
        with pytest.raises(ModelError):
            model.bind("HostMod", "HostPut", "NoUnit")
        with pytest.raises(ModelError):
            model.bind("HostMod", "NoService", "Channel")

    def test_double_binding_rejected(self):
        model = SystemModel("Sys")
        model.add_software_module(make_host_module())
        model.add_comm_unit(handshake_channel("Channel", put_name="HostPut"))
        model.bind("HostMod", "HostPut", "Channel")
        with pytest.raises(ModelError):
            model.bind("HostMod", "HostPut", "Channel")

    def test_bind_interface_binds_all_services(self):
        model = SystemModel("Sys")
        model.add_software_module(make_host_module())
        model.add_hardware_module(make_server_module())
        model.add_comm_unit(
            handshake_channel("Channel", put_name="HostPut", get_name="ServerGet",
                              put_interface="HostIf", get_interface="ServerIf")
        )
        bindings = model.bind_interface("HostMod", "Channel", "HostIf")
        assert len(bindings) == 1
        assert model.unit_for("HostMod", "HostPut").name == "Channel"

    def test_unit_for_unbound_service_raises(self):
        model = SystemModel("Sys")
        model.add_software_module(make_host_module())
        with pytest.raises(ModelError):
            model.unit_for("HostMod", "HostPut")

    def test_queries(self, producer_consumer_model):
        model = producer_consumer_model
        assert [m.name for m in model.software_modules()] == ["HostMod"]
        assert [m.name for m in model.hardware_modules()] == ["ServerMod"]
        assert model.services_required() == ["HostPut", "ServerGet"]
        assert model.module("HostMod").name == "HostMod"
        assert model.comm_unit("Channel").name == "Channel"
        with pytest.raises(ModelError):
            model.module("Nope")
        with pytest.raises(ModelError):
            model.comm_unit("Nope")

    def test_topology_summary(self, producer_consumer_model):
        topology = producer_consumer_model.topology()
        assert topology["software_modules"] == ["HostMod"]
        assert topology["hardware_modules"] == ["ServerMod"]
        assert topology["comm_units"] == ["Channel"]
        assert len(topology["bindings"]) == 2
        kinds = {edge["module"]: edge["module_kind"] for edge in topology["bindings"]}
        assert kinds == {"HostMod": "software", "ServerMod": "hardware"}


class TestValidation:
    def test_valid_model_passes(self, producer_consumer_model):
        assert validate_model(producer_consumer_model) == []

    def test_unbound_service_detected(self):
        model = SystemModel("Sys")
        model.add_software_module(make_host_module())
        problems = validate_model(model, raise_on_error=False)
        assert any("not bound" in p for p in problems)
        with pytest.raises(ValidationError):
            validate_model(model)

    def test_binding_to_never_called_service_detected(self, producer_consumer_model):
        model = producer_consumer_model
        # HostMod never calls ServerGet, but bind it anyway.
        model.bindings.append(type(model.bindings[0])("HostMod", "ServerGet", "Channel"))
        problems = validate_model(model, raise_on_error=False)
        assert any("never calls" in p for p in problems)

    def test_view_library_gaps_detected(self, producer_consumer_model):
        empty_library = MultiViewLibrary()
        problems = validate_model(producer_consumer_model, library=empty_library,
                                  raise_on_error=False)
        assert any("SW simulation view" in p for p in problems)
        assert any("HW view" in p for p in problems)

    def test_view_library_with_all_views_passes(self, producer_consumer_model):
        library = build_view_library([producer_consumer_model.comm_unit("Channel")])
        assert validate_model(producer_consumer_model, library=library) == []

    def test_platform_views_checked_when_requested(self, producer_consumer_model):
        library = build_view_library([producer_consumer_model.comm_unit("Channel")])
        problems = validate_model(producer_consumer_model, library=library,
                                  platforms=["pc_at_fpga"], raise_on_error=False)
        assert any("SW synthesis view" in p for p in problems)

    def test_library_must_be_a_multiview_library(self, producer_consumer_model):
        problems = validate_model(producer_consumer_model, library={},
                                  raise_on_error=False)
        assert any("MultiViewLibrary" in p for p in problems)
