"""Unit tests of signals and resolved signals."""

import pytest

from repro.desim.signal import ResolvedSignal, Signal
from repro.utils.errors import SimulationError, ModelError


class TestSignal:
    def test_initial_value_and_name(self):
        signal = Signal("data", init=7)
        assert signal.name == "data"
        assert signal.value == 7
        assert signal.read() == 7
        assert signal.change_count == 0

    def test_invalid_name_rejected(self):
        with pytest.raises(ModelError):
            Signal("bad name")

    def test_stage_then_apply_changes_value_and_sets_event(self):
        signal = Signal("data", init=0)
        signal.stage(5)
        assert signal.value == 0, "staged value must not be visible before apply"
        changed = signal.apply_pending(now=100)
        assert changed is True
        assert signal.value == 5
        assert signal.event is True
        assert signal.last_changed == 100
        assert signal.change_count == 1

    def test_apply_without_pending_is_a_noop(self):
        signal = Signal("data", init=0)
        assert signal.apply_pending(now=10) is False
        assert signal.event is False

    def test_same_value_transaction_produces_no_event(self):
        signal = Signal("data", init=3)
        signal.stage(3)
        assert signal.apply_pending(now=50) is False
        assert signal.event is False
        assert signal.change_count == 0

    def test_last_stage_wins_within_one_delta(self):
        signal = Signal("data", init=0)
        signal.stage(1)
        signal.stage(2)
        signal.apply_pending(now=0)
        assert signal.value == 2

    def test_clear_event(self):
        signal = Signal("data", init=0)
        signal.stage(1)
        signal.apply_pending(now=0)
        signal.clear_event()
        assert signal.event is False
        assert signal.value == 1

    def test_reset_restores_initial_state(self):
        signal = Signal("data", init=9)
        signal.stage(1)
        signal.apply_pending(now=5)
        signal.reset()
        assert signal.value == 9
        assert signal.change_count == 0
        assert signal.last_changed == 0


class TestResolvedSignal:
    def test_single_driver_behaves_like_plain_signal(self):
        signal = ResolvedSignal("bus", init=0)
        signal.drive("a", 4)
        signal.apply_pending(now=0)
        assert signal.value == 4

    def test_conflicting_drivers_raise(self):
        signal = ResolvedSignal("bus", init=0)
        signal.drive("a", 1)
        with pytest.raises(SimulationError):
            signal.drive("b", 2)

    def test_agreeing_drivers_resolve(self):
        signal = ResolvedSignal("bus", init=0)
        signal.drive("a", 7)
        signal.drive("b", 7)
        signal.apply_pending(now=0)
        assert signal.value == 7

    def test_releasing_a_driver_with_none(self):
        signal = ResolvedSignal("bus", init=0)
        signal.drive("a", 5)
        signal.apply_pending(now=0)
        signal.drive("a", None)
        signal.apply_pending(now=1)
        assert signal.value == 0, "no drivers left resolves to the default 0"

    def test_custom_resolver(self):
        signal = ResolvedSignal("wired_or", init=0, resolver=lambda vals: int(any(vals)))
        signal.drive("a", 0)
        signal.drive("b", 1)
        signal.apply_pending(now=0)
        assert signal.value == 1
