"""Tests for the long-lived job service (repro.server).

Most tests drive :class:`JobService` directly — the HTTP layer is a thin
shim — with one end-to-end pass through a real ``ThreadingHTTPServer``
socket.  Queue-shape tests construct the service *without* ``start()``,
so submissions stay deterministically queued.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import TELEMETRY
from repro.obs.metrics import parse_prometheus
from repro.server import JobService, QueueFullError, create_server
from repro.server.service import JOB_STATES


def _wait_done(service, records, timeout=90):
    deadline = time.monotonic() + timeout
    while any(r.state not in ("done", "failed") for r in records):
        assert time.monotonic() < deadline, \
            f"jobs stuck: {[r.summary() for r in records]}"
        time.sleep(0.05)


@pytest.fixture(scope="module")
def running_service(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("server-cache")
    service = JobService(workers=2, cache=str(cache_dir)).start()
    yield service
    service.stop()


class TestJobLifecycle:
    def test_kernel_job_runs_to_done(self, running_service):
        record = running_service.submit_spec(
            {"kind": "kernel", "size": "tiny", "seed": 11})
        assert record.state in ("queued", "running", "done")
        _wait_done(running_service, [record])
        assert record.state == "done"
        assert record.error is None
        assert record.record["fingerprint_digest"]
        assert record.started_at is not None
        assert record.finished_at >= record.started_at

    def test_batch_submission_mixes_kinds(self, running_service):
        records = running_service.submit_body([
            {"kind": "kernel", "size": "tiny", "seed": 12},
            {"kind": "cosim", "seed": 4, "networks": 1},
            {"kind": "conformance", "scenario": "kernel-tiny-2"},
        ])
        assert [r.job.kind for r in records] == \
            ["kernel", "cosim", "conformance"]
        _wait_done(running_service, records)
        assert all(r.state == "done" for r in records)
        cosim = records[1].record
        assert cosim["functional_problems"] == []
        assert cosim["fsm"]["compile_hits"] > 0
        conformance = records[2].record
        assert conformance["ok"] is True

    def test_failed_job_reports_its_error(self, running_service):
        # An unparsable conformance scenario raises inside the worker; the
        # error degrades to a failed record, not a dead service.
        record = running_service.submit_spec(
            {"kind": "conformance", "scenario": "not-a-scenario"})
        _wait_done(running_service, [record])
        assert record.state == "failed"
        assert "unrecognised scenario" in record.error

    def test_warm_cacheable_resubmission_is_served_from_cache(
            self, running_service):
        spec = {"kind": "cosim", "seed": 5, "networks": 1, "coverage": True}
        cold = running_service.submit_spec(spec)
        _wait_done(running_service, [cold])
        assert cold.state == "done" and not cold.cached
        assert running_service.artifact(cold.id) is not None

        warm = running_service.submit_spec(spec)
        # Answered at submission time: done immediately, never queued.
        assert warm.state == "done"
        assert warm.cached is True
        assert warm.record["coverage_digest"] == \
            cold.record["coverage_digest"]
        assert running_service.cache.stats["hits"] >= 1

    def test_artifact_of_uncacheable_job_is_none(self, running_service):
        record = running_service.submit_spec(
            {"kind": "kernel", "size": "tiny", "seed": 13})
        _wait_done(running_service, [record])
        assert running_service.artifact(record.id) is None

    def test_durations_come_from_the_monotonic_clock(self, running_service):
        record = running_service.submit_spec(
            {"kind": "kernel", "size": "tiny", "seed": 14})
        _wait_done(running_service, [record])
        data = record.as_dict()
        # Wall stamps are kept for display; the duration fields are
        # monotonic differences and so can never be negative, even if the
        # wall clock stepped backwards mid-job.
        assert data["queue_wait_s"] >= 0
        assert data["run_s"] >= 0
        assert record.finished_mono >= record.started_mono \
            >= record.submitted_mono
        assert running_service.metrics()["uptime_s"] >= 0

    def test_prometheus_exposition_parses_and_matches_json(
            self, running_service):
        text = running_service.prometheus_metrics()
        samples = parse_prometheus(text)
        values = {(name, tuple(sorted(labels.items()))): value
                  for name, labels, value in samples}
        snapshot = running_service.metrics()
        assert values[("repro_server_jobs_submitted_total", ())] \
            == snapshot["jobs"]["submitted"]
        for state, count in snapshot["jobs"]["by_state"].items():
            assert values[("repro_server_jobs_by_state",
                           (("state", state),))] == count

    def test_metrics_schema_and_fsm_aggregation(self, running_service):
        metrics = running_service.metrics()
        assert metrics["format"] == 1
        assert set(metrics["jobs"]["by_state"]) == set(JOB_STATES)
        assert metrics["jobs"]["submitted"] == len(running_service.jobs())
        assert metrics["queue"]["limit"] == running_service.queue_limit
        assert metrics["cache"]["writes"] >= 1
        # The cosim jobs above ran compiled FSMs; their per-job counters
        # must have rolled up into the service totals.
        assert metrics["fsm"]["compile_hits"] > 0
        assert metrics["fsm"]["steps"] > 0
        assert metrics["fsm"]["fallback"] == 0


class TestQueueShape:
    """Deterministic queue behaviour: the service is never started."""

    def test_queue_full_raises_and_keeps_fifo_order(self):
        service = JobService(workers=1, queue_limit=2)
        first = service.submit_spec({"kind": "kernel", "size": "tiny",
                                     "seed": 0})
        second = service.submit_spec({"kind": "kernel", "size": "tiny",
                                      "seed": 1})
        with pytest.raises(QueueFullError):
            service.submit_spec({"kind": "kernel", "size": "tiny",
                                 "seed": 2})
        assert [r.id for r in service.jobs()] == [first.id, second.id]
        assert service.metrics()["queue"]["depth"] == 2

    def test_batch_is_all_or_nothing(self):
        service = JobService(workers=1, queue_limit=2)
        service.submit_spec({"kind": "kernel", "size": "tiny", "seed": 0})
        with pytest.raises(QueueFullError):
            service.submit_body([
                {"kind": "kernel", "size": "tiny", "seed": 1},
                {"kind": "kernel", "size": "tiny", "seed": 2},
            ])
        # The rejected batch left nothing behind — not even its first job.
        assert len(service.jobs()) == 1
        assert service.metrics()["queue"]["depth"] == 1

    def test_invalid_spec_rejects_whole_batch_before_queueing(self):
        service = JobService(workers=1)
        with pytest.raises(ValueError, match="unknown job kind"):
            service.submit_body([
                {"kind": "kernel", "size": "tiny", "seed": 0},
                {"kind": "bogus"},
            ])
        assert service.jobs() == []

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="workers"):
            JobService(workers=0)
        with pytest.raises(ValueError, match="queue_limit"):
            JobService(queue_limit=0)
        with pytest.raises(ValueError, match="schedule"):
            JobService(schedules=[{"no": "jobs"}])
        with pytest.raises(ValueError, match="unknown job kind"):
            JobService(schedules=[{"jobs": [{"kind": "bogus"}]}])


class TestTick:
    def test_tick_enqueues_due_schedules_only(self):
        service = JobService(workers=1, queue_limit=8, schedules=[
            {"name": "everytick",
             "jobs": [{"kind": "kernel", "size": "tiny", "seed": 7}]},
            {"name": "everyother", "every": 2,
             "jobs": [{"kind": "kernel", "size": "tiny", "seed": 8}]},
        ])
        first = service.tick()
        assert first["tick"] == 1
        assert len(first["enqueued"]) == 1  # only the every-tick schedule
        second = service.tick()
        assert len(second["enqueued"]) == 2
        sources = [record.source for record in service.jobs()]
        assert sources == ["tick:everytick", "tick:everytick",
                           "tick:everyother"]

    def test_tick_reports_queue_rejections(self):
        service = JobService(workers=1, queue_limit=1, schedules=[
            {"name": "wide",
             "jobs": [{"kind": "kernel", "size": "tiny", "seed": 7},
                      {"kind": "kernel", "size": "tiny", "seed": 8}]},
        ])
        outcome = service.tick()
        assert len(outcome["enqueued"]) == 1
        assert len(outcome["rejected"]) == 1
        assert "wide" in outcome["rejected"][0]


class TestHttpServer:
    """One end-to-end pass over a real socket."""

    @pytest.fixture()
    def endpoint(self, tmp_path):
        service = JobService(workers=1, queue_limit=4,
                             cache=str(tmp_path / "cache")).start()
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        service.stop()

    @staticmethod
    def _call(base, method, path, body=None):
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(base + path, data=data,
                                         method=method)
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_submit_poll_and_metrics_over_http(self, endpoint):
        status, reply = self._call(endpoint, "POST", "/jobs",
                                   {"kind": "kernel", "size": "tiny",
                                    "seed": 21})
        assert status == 202 and reply["accepted"] == 1
        job_id = reply["jobs"][0]["id"]

        deadline = time.monotonic() + 90
        while True:
            status, job = self._call(endpoint, "GET", f"/jobs/{job_id}")
            assert status == 200
            if job["state"] in ("done", "failed"):
                break
            assert time.monotonic() < deadline, f"job stuck: {job}"
            time.sleep(0.05)
        assert job["state"] == "done", job["error"]
        assert job["record"]["fingerprint_digest"]
        assert job["spec"] == {"kind": "kernel", "size": "tiny",
                               "seed": 21, "kernel": "production"}

        status, listing = self._call(endpoint, "GET", "/jobs")
        assert status == 200
        assert [item["id"] for item in listing["jobs"]] == [job_id]

        status, metrics = self._call(endpoint, "GET", "/metrics")
        assert status == 200
        assert metrics["jobs"]["by_state"]["done"] == 1

    def test_prometheus_routes_over_http(self, endpoint):
        for path in ("/metrics/prometheus", "/metrics?format=prometheus"):
            request = urllib.request.Request(endpoint + path)
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/plain")
                samples = parse_prometheus(response.read().decode())
            assert any(name == "repro_server_uptime_seconds"
                       for name, _, _ in samples)

    def test_concurrent_metrics_reads_while_jobs_execute(self, endpoint):
        """Schema stability under load: /metrics (JSON and Prometheus)
        must stay well-formed while executors mutate the job table."""
        status, reply = self._call(endpoint, "POST", "/jobs", [
            {"kind": "kernel", "size": "tiny", "seed": 30 + offset}
            for offset in range(4)
        ])
        assert status == 202 and reply["accepted"] == 4

        errors = []
        expected_keys = {"format", "queue", "jobs", "cache", "fsm",
                         "ticks", "schedules", "pool_replacements",
                         "started_at", "uptime_s"}

        def hammer():
            try:
                for _ in range(20):
                    status, metrics = self._call(endpoint, "GET", "/metrics")
                    assert status == 200
                    assert set(metrics) == expected_keys
                    assert sum(metrics["jobs"]["by_state"].values()) \
                        == metrics["jobs"]["submitted"]
                    request = urllib.request.Request(
                        endpoint + "/metrics/prometheus")
                    with urllib.request.urlopen(request,
                                                timeout=30) as response:
                        parse_prometheus(response.read().decode())
            except Exception as exc:  # surfaced below, with context
                errors.append(exc)

        readers = [threading.Thread(target=hammer) for _ in range(4)]
        for reader in readers:
            reader.start()
        for reader in readers:
            reader.join(timeout=120)
        assert not errors, errors

        deadline = time.monotonic() + 90
        while True:
            status, listing = self._call(endpoint, "GET", "/jobs")
            if all(job["state"] in ("done", "failed")
                   for job in listing["jobs"]):
                break
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert all(job["state"] == "done" for job in listing["jobs"])

    def test_telemetry_enabled_exposition_includes_request_latency(
            self, endpoint):
        TELEMETRY.enable()
        try:
            self._call(endpoint, "GET", "/jobs")
            request = urllib.request.Request(endpoint + "/metrics/prometheus")
            with urllib.request.urlopen(request, timeout=30) as response:
                samples = parse_prometheus(response.read().decode())
            routes = {labels.get("route") for name, labels, _ in samples
                      if name == "repro_server_request_seconds_count"}
            assert "/jobs" in routes
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()

    def test_http_error_statuses(self, endpoint):
        status, reply = self._call(endpoint, "POST", "/jobs",
                                   {"kind": "bogus"})
        assert status == 400 and "unknown job kind" in reply["error"]
        status, reply = self._call(endpoint, "POST", "/jobs", [])
        assert status == 400
        status, reply = self._call(endpoint, "GET", "/nope")
        assert status == 404
        status, reply = self._call(endpoint, "GET", "/jobs/job-000099")
        assert status == 404
        status, reply = self._call(endpoint, "GET",
                                   "/jobs/job-000099/artifacts")
        assert status == 404
