"""Coverage instrumentation and the coverage-directed campaign.

Pins the tentpole contracts of ``repro.testkit.coverage`` and the
campaign loop in ``repro.testkit.generator``:

* the :class:`CoverageMap` of a run is **byte-identical** across the
  compiled and interpreted FSM execution tiers, and across
  ``PYTHONHASHSEED`` values (checked in subprocesses) — coverage is part
  of the deterministic observable surface, not a diagnostic;
* the coverage-directed generator strictly beats uniform random
  scenario selection on transition-edge coverage at an equal scenario
  budget (the acceptance criterion of the campaign design);
* scenario deduplication drops identical ``(seed, config)`` draws before
  dispatch, order-preserved;
* the scoreboard carries the sweep-facing summary fields.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.cosim import CosimSession
from repro.testkit.coverage import CoverageMap, attach_session, scoreboard
from repro.testkit.generator import (
    campaign_universe,
    dedupe_scenarios,
    run_directed,
    run_uniform,
)
from repro.testkit.models import generate_system
from repro.testkit.oracles import run_session_to_completion

SRC = str(Path(__file__).resolve().parent.parent / "src")


def coverage_json(seed, fsm_mode):
    """Serialized coverage of one full system run on the given FSM tier."""
    system = generate_system(seed)
    session = CosimSession(system.build_model(), fsm_mode=fsm_mode,
                           **system.cosim_params)
    coverage = attach_session(session, CoverageMap())
    result = run_session_to_completion(session, system.expectations)
    coverage.record_trace(result.trace)
    return coverage.to_json()


class TestCoverageDeterminism:
    @pytest.mark.parametrize("seed", [2, 5, 8])
    def test_byte_identical_across_fsm_tiers(self, seed):
        """Compiled and interpreted execution count the same transitions."""
        assert coverage_json(seed, "compiled") == coverage_json(seed,
                                                                "interpreted")

    def test_byte_identical_across_hash_seeds(self):
        """The directed campaign is hash-randomization independent.

        The campaign sums novelty weights over *sets* of coverage bins, so
        any float or iteration-order dependence would leak the interpreter
        hash seed into scenario selection.  Two subprocesses with
        different ``PYTHONHASHSEED`` must print identical digests.
        """
        probe = (
            "from repro.testkit.generator import run_directed\n"
            "campaign = run_directed(8, rng_seed=0)\n"
            "print(campaign['coverage'].digest())\n"
            "print([r['digest'] for r in campaign['reports']])\n"
        )
        outputs = []
        for hash_seed in ("0", "4242"):
            done = subprocess.run(
                [sys.executable, "-c", probe], capture_output=True, text=True,
                env={"PYTHONPATH": SRC, "PYTHONHASHSEED": hash_seed},
            )
            assert done.returncode == 0, done.stderr
            outputs.append(done.stdout)
        assert outputs[0] == outputs[1]


class TestDirectedCampaign:
    @pytest.mark.parametrize("rng_seed", [0, 2, 3])
    def test_directed_beats_uniform_on_edge_coverage(self, rng_seed):
        """Equal budget, strictly more transition edges covered.

        The acceptance bar of the directed loop: novelty-weighted
        mutation plus promise-decayed bin targeting must out-cover blind
        uniform draws at the same scenario budget.
        """
        budget = 24
        universe = campaign_universe()
        directed = run_directed(budget, rng_seed=rng_seed, universe=universe)
        uniform = run_uniform(budget, rng_seed=rng_seed)
        directed_edges = scoreboard(directed["coverage"],
                                    universe)["edge_coverage"]
        uniform_edges = scoreboard(uniform["coverage"],
                                   universe)["edge_coverage"]
        assert directed_edges > uniform_edges

    def test_campaign_reports_carry_family_observations(self):
        campaign = run_directed(10, rng_seed=0)
        assert campaign["executed"] == len(campaign["reports"]) <= 10
        families = {report["config"]["family"]
                    for report in campaign["reports"]}
        assert families <= {"system", "fault", "realtime"}
        for report in campaign["reports"]:
            if report["config"]["family"] == "fault":
                assert report["survival"] in (True, False)
            if report["config"]["family"] == "realtime":
                assert report["deadline_misses"] >= 0

    def test_campaign_never_dispatches_duplicate_configs(self):
        for campaign in (run_uniform(20, rng_seed=1),
                         run_directed(20, rng_seed=1)):
            digests = [report["digest"] for report in campaign["reports"]]
            assert len(digests) == len(set(digests))


class TestDedupeScenarios:
    def test_identical_configs_deduped_order_preserved(self):
        """Regression: identical (seed, config) draws collapse to one.

        The generator used to dispatch duplicate draws verbatim, wasting
        budget on runs whose outcome is seeded-deterministic and thus
        already known.
        """
        first = {"family": "system", "seed": 3}
        second = {"family": "fault", "seed": 3, "kind": "bus_contention",
                  "unit_index": 0}
        third = {"family": "system", "seed": 4}
        configs = [first, dict(second), dict(first), third,
                   dict(second), dict(first)]
        assert dedupe_scenarios(configs) == [first, second, third]

    def test_differing_knobs_are_not_duplicates(self):
        configs = [
            {"family": "fault", "seed": 1, "kind": "stuck_handshake"},
            {"family": "fault", "seed": 1, "kind": "dropped_handshake"},
            {"family": "fault", "seed": 2, "kind": "stuck_handshake"},
        ]
        assert dedupe_scenarios(configs) == configs


class TestScoreboard:
    def test_scoreboard_fields_and_ranges(self):
        system = generate_system(2)
        session = CosimSession(system.build_model(), **system.cosim_params)
        coverage = attach_session(session, CoverageMap())
        result = run_session_to_completion(session, system.expectations)
        coverage.record_trace(result.trace)
        from repro.testkit.coverage import coverage_universe

        board = scoreboard(coverage, coverage_universe(session.model),
                           fault_survival=0.75, deadline_misses=2)
        assert set(board) == {
            "states_visited", "states_total", "state_coverage",
            "edges_covered", "edges_total", "edge_coverage",
            "phase_bins", "call_bins", "fault_survival", "deadline_misses",
        }
        assert 0.0 <= board["state_coverage"] <= 1.0
        assert 0.0 <= board["edge_coverage"] <= 1.0
        assert board["fault_survival"] == 0.75
        assert board["deadline_misses"] == 2
