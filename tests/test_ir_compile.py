"""Differential tests of the compiled IR execution tier.

The compiled tier must be observably indistinguishable from the
tree-walking interpreter: byte-identical StepResult streams, environments,
port-access sequences, exceptions.  These tests pin that equivalence over
the full testkit generator scenario set (every module, controller and
service FSM of the generated systems), over random expression trees, and
end-to-end through the co-simulation backplane.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import (
    Assign,
    CompileError,
    FsmBuilder,
    FsmInstance,
    INT,
    compile_fsm,
    evaluate,
    var,
)
from repro.ir.compile import compile_expr_fn
from repro.ir.expr import BinOp, Const, Expr, PortRef, UnOp, Var
from repro.ir.interp import DEFAULT_HISTORY_LIMIT, DictPortAccessor
from repro.testkit.models import generate_system
from repro.testkit.oracles import check_cosim_conformance, cosim_fingerprint, run_cosim
from repro.utils.errors import SimulationError


class RecordingAccessor(DictPortAccessor):
    """Dict accessor that also records the read sequence."""

    def __init__(self, values=None):
        super().__init__(values)
        self.reads = []

    def read(self, port_name):
        value = super().read(port_name)
        self.reads.append((port_name, value))
        return value


class ScriptedHandler:
    """Deterministic pseudo-random call handler; same seed, same script."""

    def __init__(self, seed):
        self.rng = random.Random(seed)
        self.log = []

    def __call__(self, call, arg_values):
        done = self.rng.random() < 0.4
        value = self.rng.randrange(100)
        self.log.append((call.service, tuple(arg_values), done, value))
        return done, value


def result_tuple(step_result):
    return (step_result.from_state, step_result.to_state, step_result.fired,
            step_result.done, step_result.result, step_result.called)


def assert_differential(fsm, steps=60, args=None, port_values=None, seed=0,
                        reset_on_done=False):
    """Step *fsm* through both tiers in lockstep and compare every observable."""
    ports = {}
    instances = {}
    handlers = {}
    for mode in ("compiled", "interpreted"):
        ports[mode] = RecordingAccessor(port_values)
        handlers[mode] = ScriptedHandler(seed)
        instances[mode] = FsmInstance(fsm, ports=ports[mode],
                                      call_handler=handlers[mode],
                                      reset_on_done=reset_on_done,
                                      trace=True, mode=mode)
    compiled, interpreted = instances["compiled"], instances["interpreted"]
    assert compiled._program is not None, f"{fsm.name} did not compile"
    for index in range(steps):
        step_args = dict(args) if args else None
        left = compiled.step(step_args)
        right = interpreted.step(step_args)
        assert result_tuple(left) == result_tuple(right), (
            f"{fsm.name} step {index}: {left!r} != {right!r}"
        )
        assert compiled.env == interpreted.env, f"{fsm.name} step {index}"
        assert compiled.current == interpreted.current
    assert ports["compiled"].writes == ports["interpreted"].writes
    assert ports["compiled"].reads == ports["interpreted"].reads
    assert handlers["compiled"].log == handlers["interpreted"].log
    assert compiled.transitions_fired == interpreted.transitions_fired
    assert compiled.steps == interpreted.steps == steps
    assert compiled.compile_hits == steps and compiled.fallback == 0
    assert interpreted.fallback == steps and interpreted.compile_hits == 0
    history = [result_tuple(r) for r in compiled.history]
    assert history == [result_tuple(r) for r in interpreted.history]
    # The runtime state captures must agree on everything but the tier split.
    left_state = compiled.capture_state()
    right_state = interpreted.capture_state()
    for key in ("fsm", "current", "env", "steps", "transitions_fired",
                "history"):
        assert left_state[key] == right_state[key]


def generated_fsm_population(seed):
    """Every (fsm, args, reset_on_done) of one generated system model."""
    model = generate_system(seed).build_model()
    population = []
    for module in model.modules.values():
        for fsm in module.behaviours():
            population.append((fsm, None, False))
    for unit in model.comm_units.values():
        for controller in unit.controllers:
            population.append((controller.fsm, None, False))
        for service in unit.services.values():
            args = {name: 11 + 7 * index
                    for index, name in enumerate(service.param_names)}
            population.append((service.fsm, args, True))
    return population


class TestGeneratedScenarioParity:
    """Both tiers agree over the full generator scenario set."""

    @pytest.mark.parametrize("seed", range(10))
    def test_generated_system_fsms(self, seed):
        population = generated_fsm_population(seed)
        assert population
        for fsm, args, reset_on_done in population:
            assert_differential(fsm, steps=60, args=args, seed=seed,
                                reset_on_done=reset_on_done)

    @pytest.mark.parametrize("seed", (0, 3))
    def test_cosim_differential_oracle(self, seed):
        problems = check_cosim_conformance(generate_system(seed),
                                           fsm_mode="differential")
        assert problems == []

    def test_full_session_fingerprints_match_across_tiers(self):
        system = generate_system(5)
        fingerprints = {}
        for mode in ("compiled", "interpreted"):
            session, result = run_cosim(system, "production", fsm_mode=mode)
            fingerprints[mode] = cosim_fingerprint(session, result)
        assert fingerprints["compiled"] == fingerprints["interpreted"]


_values = st.integers(min_value=-1000, max_value=1000)
_leaves = st.one_of(
    _values.map(Const),
    st.sampled_from(["a", "b", "c"]).map(Var),
    st.sampled_from(["PX", "PY"]).map(PortRef),
)
_SAFE_BIN_OPS = ["add", "sub", "mul", "eq", "ne", "lt", "le", "gt", "ge",
                 "and", "or", "xor", "min", "max"]


def _expressions():
    return st.recursive(
        _leaves,
        lambda children: st.one_of(
            st.tuples(st.sampled_from(_SAFE_BIN_OPS), children, children)
            .map(lambda t: BinOp(*t)),
            st.tuples(st.sampled_from(["not", "neg", "abs"]), children)
            .map(lambda t: UnOp(*t)),
        ),
        max_leaves=16,
    )


class TestExpressionParity:
    @given(expr=_expressions(), a=_values, b=_values, c=_values)
    @settings(max_examples=150, deadline=None)
    def test_compiled_expression_matches_evaluate(self, expr, a, b, c):
        env = {"a": a, "b": b, "c": c}
        left_ports = RecordingAccessor({"PX": 5, "PY": -3})
        right_ports = RecordingAccessor({"PX": 5, "PY": -3})
        fn = compile_expr_fn(expr)
        assert fn(env, left_ports) == evaluate(expr, env, right_ports)
        # Eager evaluation everywhere: identical port-read sequences even
        # under and/or/xor (the interpreter never short-circuits).
        assert left_ports.reads == right_ports.reads

    def test_division_by_zero_raises_at_evaluation_time(self):
        for op in ("div", "mod"):
            expr = BinOp(op, 7, Const(0))  # constant subtree: must not fold
            fn = compile_expr_fn(expr)
            with pytest.raises(SimulationError):
                fn({}, None)
            with pytest.raises(SimulationError):
                evaluate(expr, {})

    def test_truncating_division_matches(self):
        for a in (-7, -1, 0, 1, 7):
            for b in (-3, -2, 2, 3):
                for op in ("div", "mod"):
                    expr = BinOp(op, Var("x"), Var("y"))
                    fn = compile_expr_fn(expr)
                    env = {"x": a, "y": b}
                    assert fn(env, None) == evaluate(expr, env)

    def test_undefined_variable_message_matches_interpreter(self):
        fn = compile_expr_fn(var("missing"))
        with pytest.raises(SimulationError, match="undefined variable 'missing'"):
            fn({}, None)

    def test_accessor_keyerror_propagates_unwrapped(self):
        # A KeyError escaping a user port accessor must propagate exactly as
        # it does through the interpreter — not be misreported as an
        # undefined variable (even if the port shares a read variable's name).
        class RawDictAccessor:
            def __init__(self, values):
                self.values = values

            def read(self, port_name):
                return self.values[port_name]

        expr = BinOp("add", var("P"), PortRef("P"))
        fn = compile_expr_fn(expr)
        env = {"P": 1}
        with pytest.raises(KeyError):
            fn(env, RawDictAccessor({}))
        with pytest.raises(KeyError):
            evaluate(expr, env, RawDictAccessor({}))


def counter_fsm(limit=3):
    build = FsmBuilder("COUNTER")
    build.variable("COUNT", INT, 0)
    with build.state("Run") as state:
        state.do(Assign("COUNT", var("COUNT") + 1))
        state.go("Stop", when=var("COUNT").ge(limit))
        state.stay()
    with build.state("Stop", done=True) as state:
        state.stay()
    return build.build(initial="Run")


class TestCompiledTier:
    def test_program_cached_and_shared_across_instances(self):
        fsm = counter_fsm()
        assert compile_fsm(fsm) is compile_fsm(fsm)
        first = FsmInstance(fsm)
        second = FsmInstance(fsm)
        assert first._program is second._program is compile_fsm(fsm)

    def test_mode_validated(self):
        with pytest.raises(SimulationError, match="unknown FSM execution mode"):
            FsmInstance(counter_fsm(), mode="jit")

    def test_steps_split_between_tiers(self):
        instance = FsmInstance(counter_fsm(5))
        instance.run_to_done()
        assert instance.steps == instance.compile_hits + instance.fallback
        assert instance.fallback == 0

    def test_unknown_node_falls_back_to_interpreter(self):
        class Opaque(Expr):
            """An expression node the compile tier cannot translate."""

        build = FsmBuilder("OPAQUE")
        build.variable("X", INT, 0)
        with build.state("Run") as state:
            state.do(Assign("X", Opaque()))
            state.stay()
        fsm = build.build(initial="Run")
        with pytest.raises(CompileError):
            compile_fsm(fsm, force=True)
        instance = FsmInstance(fsm, mode="compiled")
        assert instance._program is None
        # The interpreter cannot evaluate it either, but the error now
        # surfaces at step time through the fallback tier, as before.
        with pytest.raises(SimulationError, match="cannot evaluate"):
            instance.step()
        assert instance.fallback == 1

    def test_stale_program_reports_missing_state_explicitly(self):
        from repro.ir import State, Transition

        fsm = counter_fsm()
        instance = FsmInstance(fsm, mode="compiled")
        # Mutate the FSM after compilation: the cached program is now stale.
        late = State("Late", transitions=[Transition("Late")])
        fsm.states["Late"] = late
        fsm.state_order.append("Late")
        instance.current = "Late"
        with pytest.raises(SimulationError, match="force=True"):
            instance.step()
        compile_fsm(fsm, force=True)
        fresh = FsmInstance(fsm, mode="compiled")
        fresh.current = "Late"
        assert fresh.step().to_state == "Late"

    def test_reset_runs_exactly_once_during_init(self):
        calls = []

        class Counting(FsmInstance):
            def reset(self):
                calls.append(1)
                super().reset()

        Counting(counter_fsm())
        assert len(calls) == 1

    def test_service_call_parity_through_builder(self):
        build = FsmBuilder("CALLER")
        build.variable("RESULT", INT, 0)
        build.variable("SENT", INT, 0)
        with build.state("Calling") as state:
            state.call("Fetch", args=[var("SENT") + 2], store="RESULT",
                       then="Advance")
        with build.state("Advance") as state:
            state.go("Calling", actions=[Assign("SENT", var("SENT") + 1)])
        fsm = build.build(initial="Calling")
        assert_differential(fsm, steps=40, seed=7)


class TestHistoryRingBuffer:
    def test_default_cap_applies(self):
        instance = FsmInstance(counter_fsm(), trace=True)
        assert instance.history.maxlen == DEFAULT_HISTORY_LIMIT

    def test_small_cap_keeps_most_recent_window(self):
        build = FsmBuilder("SPIN")
        build.variable("N", INT, 0)
        with build.state("Run") as state:
            state.stay(actions=[Assign("N", var("N") + 1)])
        fsm = build.build(initial="Run")
        instance = FsmInstance(fsm, trace=True, history_limit=4)
        for _ in range(10):
            instance.step()
        assert instance.steps == 10
        assert len(instance.history) == 4

    def test_opt_out_is_unbounded(self):
        instance = FsmInstance(counter_fsm(200), trace=True,
                               history_limit=None)
        for _ in range(150):
            instance.step()
        assert len(instance.history) == 150
        assert instance.history.maxlen is None

    def test_capture_restore_preserves_window_and_cap(self):
        fsm = counter_fsm(50)
        source = FsmInstance(fsm, trace=True, history_limit=8)
        for _ in range(20):
            source.step()
        state = source.capture_state()
        target = FsmInstance(fsm, trace=True, history_limit=8)
        target.restore_state(state)
        assert target.history.maxlen == 8
        assert ([result_tuple(r) for r in target.history]
                == [result_tuple(r) for r in source.history])
        assert target.compile_hits == source.compile_hits
        assert target.fallback == source.fallback
        # Both must continue identically after the round-trip.
        for _ in range(10):
            assert result_tuple(source.step()) == result_tuple(target.step())


class TestStateHistoryEviction:
    def test_state_history_stays_accurate_after_ring_buffer_eviction(self):
        from repro.cosim.services import ServiceRegistry
        from repro.cosim.sw_executor import SoftwareExecutor
        from repro.core import SoftwareModule

        build = FsmBuilder("PING")
        build.variable("N", INT, 0)
        with build.state("Even") as state:
            state.go("Odd", actions=[Assign("N", var("N") + 1)])
        with build.state("Odd") as state:
            state.go("Even")
        module = SoftwareModule("PingMod", build.build(initial="Even"))
        executor = SoftwareExecutor(module, ServiceRegistry("PingMod"))
        # Shrink the ring buffer far below the run length to force eviction.
        executor.instance.history = type(executor.instance.history)(maxlen=6)
        executor.instance.history_limit = 6
        for _ in range(25):
            executor.activate()
        visited = executor.state_history()
        # Accurate suffix: starts at the first retained step's source state
        # and alternates without any silent gap.
        assert len(visited) == 7
        for left, right in zip(visited, visited[1:]):
            assert {left, right} == {"Even", "Odd"}


class TestSessionCounters:
    def test_summary_reports_tier_counters(self):
        system = generate_system(2)
        # Per-FSM wiring: every step lands on exactly one per-FSM tier.
        for mode, hot, cold in (("compiled", "compile_hits", "fallback"),
                                ("interpreted", "fallback", "compile_hits")):
            session, result = run_cosim(system, "production", fsm_mode=mode,
                                        system_mode="per-fsm")
            counters = result.summary()["fsm"]
            assert counters["steps"] > 0
            assert counters["transitions_fired"] > 0
            assert counters[hot] == counters["steps"]
            assert counters[cold] == 0
            assert counters["system_compile_hits"] == 0

    def test_summary_reports_fused_tier_counters(self):
        # Under the fused whole-system tier the controller and hardware
        # steps land on system_compile_hits; software executors and service
        # instances stay on the per-FSM compiled tier.
        system = generate_system(2)
        session, result = run_cosim(system, "production",
                                    system_mode="fused")
        counters = result.summary()["fsm"]
        assert result.summary()["system_mode"] == "fused"
        assert counters["system_compile_hits"] > 0
        assert counters["system_fallback"] == 0
        assert counters["steps"] == (counters["compile_hits"]
                                     + counters["fallback"]
                                     + counters["system_compile_hits"])
