"""Instrumentation-site tests: kernels, cosim session, sweep service.

Pins the three contracts of :mod:`repro.obs` at its call sites:

* both kernels report the same counter names (``kernel`` label apart),
* the disabled path touches no telemetry structure at all,
* enabling telemetry never changes simulated results.
"""

import pytest

from conftest import make_producer_consumer_model
from repro.cosim import CosimSession
from repro.desim import ReferenceSimulator, Simulator, SignalChange, Timeout
from repro.obs import TELEMETRY
from repro.sweep.jobs import CosimJob, KernelJob
from repro.sweep.service import SweepService


@pytest.fixture(autouse=True)
def clean_global_telemetry():
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


def _timeout_scenario(sim):
    """A small mixed workload: clocked counter + signal wait with deadline."""
    clk = sim.add_clock("clk", period=20)
    data = sim.add_signal("data", init=0)

    def producer():
        for value in range(5):
            sim.schedule(data, value + 1)
            yield Timeout(30)

    def watcher():
        while True:
            yield SignalChange([data], timeout=7)

    ticks = []
    sim.add_process("count", lambda: ticks.append(sim.now),
                    sensitivity=[clk])
    sim.add_process("producer", producer)
    sim.add_process("watcher", watcher)
    sim.run(until=200)


def _families(registry):
    return {family["name"]: family for family in
            registry.as_dict()["families"]}


class TestKernelInstrumentation:
    def test_disabled_run_binds_no_observer(self):
        sim = Simulator()
        _timeout_scenario(sim)
        assert sim._obs is None
        assert len(TELEMETRY.tracer) == 0
        assert TELEMETRY.metrics.as_dict()["families"] == []

    @pytest.mark.parametrize("factory,label", [
        (Simulator, "production"),
        (ReferenceSimulator, "reference"),
    ])
    def test_both_kernels_export_the_same_counter_names(self, factory,
                                                        label):
        TELEMETRY.enable()
        _timeout_scenario(factory())
        families = _families(TELEMETRY.metrics)
        for name in ("repro_kernel_delta_cycles_total",
                     "repro_kernel_process_runs_total",
                     "repro_kernel_transactions_total",
                     "repro_kernel_time_points_total",
                     "repro_kernel_timeouts_total",
                     "repro_kernel_phase_seconds_total",
                     "repro_kernel_process_seconds_total",
                     "repro_kernel_process_profile_runs_total",
                     "repro_kernel_delta_queue_depth",
                     "repro_kernel_timeout_heap_depth"):
            assert name in families, f"{name} missing for {label}"
            labels = [entry["labels"] for entry in families[name]["series"]]
            assert all(entry["kernel"] == label for entry in labels)

    def test_counters_match_the_statistics_deltas(self):
        TELEMETRY.enable()
        sim = Simulator()
        _timeout_scenario(sim)
        families = _families(TELEMETRY.metrics)
        for stat, name in (("delta_cycles",
                            "repro_kernel_delta_cycles_total"),
                           ("process_runs",
                            "repro_kernel_process_runs_total"),
                           ("timeouts", "repro_kernel_timeouts_total")):
            [entry] = families[name]["series"]
            assert entry["value"] == sim.statistics[stat]
        assert sim.statistics["timeouts"] > 0  # the scenario exercises it

    def test_per_process_profile_names_every_process(self):
        TELEMETRY.enable()
        _timeout_scenario(Simulator())
        families = _families(TELEMETRY.metrics)
        profiled = {entry["labels"]["process"] for entry in
                    families["repro_kernel_process_profile_runs_total"]
                    ["series"]}
        assert {"count", "producer", "watcher", "clk_gen"} <= profiled

    def test_statistics_parity_between_kernels(self):
        """Both kernels count the same events — the conformance fingerprint
        compares these dicts, so a counter drifting on one side is a bug."""
        production, reference = Simulator(), ReferenceSimulator()
        _timeout_scenario(production)
        _timeout_scenario(reference)
        assert "timeouts" in production.statistics
        assert production.statistics == reference.statistics

    def test_instrumented_run_matches_uninstrumented_results(self):
        plain = Simulator()
        _timeout_scenario(plain)
        TELEMETRY.enable()
        observed = Simulator()
        _timeout_scenario(observed)
        assert observed.statistics == plain.statistics
        assert observed.now == plain.now


class TestCosimInstrumentation:
    def _run(self):
        session = CosimSession(make_producer_consumer_model())
        return session, session.run_until_software_done(max_time=1_000_000)

    def test_disabled_run_records_nothing(self):
        self._run()
        assert len(TELEMETRY.tracer) == 0
        assert TELEMETRY.metrics.as_dict()["families"] == []

    def test_enabled_run_exports_counters_and_spans(self):
        TELEMETRY.enable()
        session, result = self._run()
        families = _families(TELEMETRY.metrics)
        [entry] = families["repro_cosim_runs_total"]["series"]
        assert entry["value"] == 1
        assert entry["labels"] == {"kernel": "production",
                                   "fsm_mode": "compiled"} \
            or entry["labels"]["kernel"] == "production"
        tiers = {entry["labels"]["tier"]: entry["value"] for entry in
                 families["repro_cosim_fsm_steps_total"]["series"]}
        fsm = session.fsm_counters()
        assert tiers.get("compiled", 0) == fsm["compile_hits"]
        assert tiers.get("interpreted", 0) == fsm["fallback"]
        [services] = families["repro_cosim_service_calls_total"]["series"]
        assert services["value"] == len(session.trace)
        names = {span["name"] for span in TELEMETRY.tracer.spans()}
        assert "cosim.build" in names
        assert "cosim.run_until_software_done" in names

    def test_rerun_counts_each_event_once(self):
        TELEMETRY.enable()
        session = CosimSession(make_producer_consumer_model())
        session.run(until=5_000)
        session.run(until=20_000)
        families = _families(TELEMETRY.metrics)
        fsm = session.fsm_counters()
        tiers = {entry["labels"]["tier"]: entry["value"] for entry in
                 families["repro_cosim_fsm_steps_total"]["series"]}
        assert sum(tiers.values()) == (fsm["compile_hits"] + fsm["fallback"]
                                       + fsm["system_compile_hits"])

    def test_telemetry_never_perturbs_simulated_results(self):
        _, plain = self._run()
        TELEMETRY.enable()
        _, observed = self._run()
        assert observed.end_time == plain.end_time
        assert observed.summary() == plain.summary()

    def test_summary_carries_service_latency_percentiles(self):
        _, result = self._run()
        services = result.summary()["services"]
        assert services, "expected at least one traced service"
        for stats in services.values():
            assert set(stats) == {"count", "mean", "p50", "p95", "max"}
            assert stats["p50"] <= stats["p95"] <= stats["max"]


class TestSweepInstrumentation:
    JOBS = [KernelJob("tiny", 0), KernelJob("tiny", 1), CosimJob(0)]

    def test_disabled_sweep_records_nothing(self):
        report = SweepService(self.JOBS, workers=1).run()
        assert report.ok
        assert len(TELEMETRY.tracer) == 0

    def test_serial_sweep_spans_and_counters(self):
        TELEMETRY.enable()
        report = SweepService(self.JOBS, workers=1).run()
        assert report.ok
        spans = TELEMETRY.tracer.spans(name="sweep.job")
        assert len(spans) == len(self.JOBS)
        assert {span["args"]["kind"] for span in spans} \
            == {"kernel", "cosim"}
        assert TELEMETRY.tracer.spans(name="sweep.batch")
        families = _families(TELEMETRY.metrics)
        outcomes = {(entry["labels"]["kind"], entry["labels"]["outcome"]):
                    entry["value"] for entry in
                    families["repro_sweep_jobs_total"]["series"]}
        assert outcomes == {("kernel", "ok"): 2, ("cosim", "ok"): 1}
        waits = families["repro_sweep_queue_wait_seconds"]["series"]
        assert waits[0]["count"] == len(self.JOBS)

    def test_pooled_sweep_reconstructs_worker_spans(self):
        TELEMETRY.enable()
        report = SweepService(self.JOBS, workers=2).run()
        assert report.ok
        spans = TELEMETRY.tracer.spans(name="sweep.job")
        assert len(spans) == len(self.JOBS)
        assert all(span["dur_us"] > 0 for span in spans)
        families = _families(TELEMETRY.metrics)
        assert "repro_sweep_worker_utilization" in families
        assert "repro_pool_items_total" in families

    def test_parallel_report_identical_to_serial_with_telemetry_on(self):
        TELEMETRY.enable()
        serial = SweepService(self.JOBS, workers=1).run()
        parallel = SweepService(self.JOBS, workers=2).run()
        assert serial.to_json() == parallel.to_json()
