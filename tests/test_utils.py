"""Unit tests of repro.utils: errors, identifiers, text, worker pool."""

import os
import signal
import time

import pytest

from repro.utils.errors import (
    ModelError,
    ReproError,
    SimulationError,
    SynthesisError,
    ValidationError,
    ViewError,
)
from repro.utils.ids import check_identifier, unique_name
from repro.utils.pool import PoolError, WorkerPool
from repro.utils.text import format_table, indent_block


class TestErrors:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (ModelError, SimulationError, SynthesisError, ViewError):
            assert issubclass(exc, ReproError)

    def test_validation_error_collects_problems(self):
        error = ValidationError(["first problem", "second problem"])
        assert error.problems == ["first problem", "second problem"]
        assert "first problem" in str(error)
        assert "second problem" in str(error)

    def test_validation_error_is_a_model_error(self):
        assert issubclass(ValidationError, ModelError)

    def test_validation_error_with_no_problems(self):
        error = ValidationError([])
        assert error.problems == []
        assert "unknown problem" in str(error)


class TestCheckIdentifier:
    def test_accepts_simple_names(self):
        assert check_identifier("B_FULL") == "B_FULL"
        assert check_identifier("SetupControl") == "SetupControl"
        assert check_identifier("x1") == "x1"

    def test_rejects_empty_and_non_string(self):
        with pytest.raises(ModelError):
            check_identifier("")
        with pytest.raises(ModelError):
            check_identifier(None)
        with pytest.raises(ModelError):
            check_identifier(42)

    def test_rejects_leading_digit_and_bad_chars(self):
        with pytest.raises(ModelError):
            check_identifier("1abc")
        with pytest.raises(ModelError):
            check_identifier("with space")
        with pytest.raises(ModelError):
            check_identifier("with-dash")

    def test_rejects_vhdl_incompatible_underscores(self):
        with pytest.raises(ModelError):
            check_identifier("double__underscore")
        with pytest.raises(ModelError):
            check_identifier("trailing_")

    def test_rejects_reserved_words_case_insensitive(self):
        for word in ("signal", "Case", "WAIT", "int", "switch"):
            with pytest.raises(ModelError):
                check_identifier(word)

    def test_error_message_names_the_role(self):
        with pytest.raises(ModelError, match="port name"):
            check_identifier("bad name", "port name")


class TestUniqueName:
    def test_generates_distinct_names(self):
        fresh = unique_name("tmp")
        names = {fresh() for _ in range(100)}
        assert len(names) == 100
        assert all(name.startswith("tmp") for name in names)

    def test_prefix_is_validated(self):
        with pytest.raises(ModelError):
            unique_name("bad prefix")

    def test_independent_factories_do_not_share_state(self):
        first = unique_name("a")
        second = unique_name("a")
        assert first() == second() == "a1"


class TestText:
    def test_indent_block_indents_non_empty_lines(self):
        text = "line1\n\nline2"
        indented = indent_block(text, levels=2, width=2)
        lines = indented.splitlines()
        assert lines[0] == "    line1"
        assert lines[1] == ""
        assert lines[2] == "    line2"

    def test_format_table_aligns_columns(self):
        table = format_table(["name", "value"], [("a", 1), ("longer", 22)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| name")
        assert all(line.startswith("|") and line.endswith("|") for line in lines)

    def test_format_table_handles_empty_rows(self):
        table = format_table(["only", "header"], [])
        assert "only" in table
        assert len(table.splitlines()) == 2

    def test_format_table_converts_cells_to_strings(self):
        table = format_table(["k", "v"], [("x", None), ("y", 3.5)])
        assert "None" in table
        assert "3.5" in table


def _double(value):
    return value * 2


def _die_on_seven(value):
    if value == 7:
        os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(0.01)
    return value * 2


class TestWorkerPool:
    def test_map_preserves_order(self):
        with WorkerPool(2) as pool:
            assert pool.map(_double, range(8)) == [v * 2 for v in range(8)]

    def test_map_of_nothing_is_empty(self):
        with WorkerPool(2) as pool:
            assert pool.map(_double, []) == []

    def test_pool_error_derives_from_repro_error(self):
        assert issubclass(PoolError, ReproError)

    def test_dead_worker_raises_pool_error_naming_the_item(self):
        """An OOM-killed/crashed worker must not hang the batch.

        Without detection this is an infinite wait: ``multiprocessing``
        replaces the dead process but the task it carried is lost, so
        ``Pool.map`` never returns.  The pool must notice the PID
        disappearing and fail the batch with the first unfinished index.
        """
        start = time.monotonic()
        with WorkerPool(2) as pool:
            with pytest.raises(PoolError) as info:
                pool.map(_die_on_seven, range(16), chunksize=1)
        assert time.monotonic() - start < 30
        assert info.value.item_index is not None
        assert 0 <= info.value.item_index < 16
        assert f"item {info.value.item_index} of 16" in str(info.value)

    def test_broken_pool_refuses_further_maps(self):
        pool = WorkerPool(2)
        try:
            with pytest.raises(PoolError):
                pool.map(_die_on_seven, range(16), chunksize=1)
            with pytest.raises(PoolError, match="broken"):
                pool.map(_double, range(4))
        finally:
            pool.close()

    def test_exceptional_context_exit_terminates_promptly(self):
        """Unwinding an exception through the pool must not join-hang."""
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="unrelated"):
            with WorkerPool(2) as pool:
                pool.map(_double, range(4))
                raise RuntimeError("unrelated failure mid-batch")
        assert time.monotonic() - start < 30
