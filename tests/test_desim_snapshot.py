"""Kernel snapshot/restore round-trips.

The contract under test: restoring a snapshot into a *fresh, identically
built* simulator and resuming produces byte-identical observables to the
uninterrupted run — on both kernels, across seeds and snapshot times — and
taking the snapshot never perturbs the simulator it came from.
"""

import pickle

import pytest

from repro.desim import (
    SignalChange,
    Simulator,
    Timeout,
    WaveformRecorder,
    create_simulator,
)
from repro.utils.errors import SimulationError


def build_network(kernel="production", seed=1):
    """A deterministic network covering every restorable process shape."""
    sim = create_simulator(kernel)
    clk = sim.add_clock("clk", period=10)
    slow = sim.add_clock("slow", period=14, start_delay=3)
    data = sim.add_signal("data", init=seed)
    acc = sim.add_signal("acc", init=0)
    flag = sim.add_signal("flag", init=0)

    def on_clk():
        if clk.value == 1:
            sim.schedule(acc, (acc.value + data.value) % 211, 0)

    sim.add_process("accum", on_clk, sensitivity=[clk], initial_run=False)

    def on_any():
        sim.schedule(flag, 1 - flag.value, 5)

    sim.add_process("edge", on_any, sensitivity=[slow], initial_run=False)

    def pump():
        while True:
            sim.schedule(data, (data.value * 5 + 1) % 31, 0)
            yield Timeout(7)

    sim.add_process("pump", pump, first_wait=Timeout(3), rearmable=True)

    def watcher():
        while True:
            sim.schedule(acc, (acc.value + flag.value + 1) % 211, 2)
            yield SignalChange(flag, timeout=40)

    sim.add_process("watch", watcher, first_wait=SignalChange(flag, timeout=9),
                    rearmable=True)
    recorder = sim.add_recorder(WaveformRecorder())
    return sim, recorder


def fingerprint(sim, recorder):
    return {
        "now": sim.now,
        "values": {name: signal.value for name, signal in sim.signals.items()},
        "change_counts": {name: signal.change_count
                          for name, signal in sim.signals.items()},
        "run_counts": {name: process.run_count
                       for name, process in sim.processes.items()},
        "statistics": dict(sim.statistics),
        "waveform": {name: list(changes)
                     for name, changes in recorder.changes.items()},
    }


class TestKernelSnapshotRestore:
    @pytest.mark.parametrize("kernel", ["production", "reference"])
    @pytest.mark.parametrize("seed,cut", [(1, 100), (2, 137), (9, 311)])
    def test_restore_resumes_byte_identical(self, kernel, seed, cut):
        straight, straight_rec = build_network(kernel, seed)
        straight.run(until=600)
        expected = fingerprint(straight, straight_rec)

        source, source_rec = build_network(kernel, seed)
        source.run(until=cut)
        blob = pickle.dumps((source.snapshot(), source_rec.capture_state()))

        target, target_rec = build_network(kernel, seed)
        snapshot, recorder_state = pickle.loads(blob)
        target.restore(snapshot)
        target_rec.restore_state(recorder_state)
        target.run(until=600)
        assert fingerprint(target, target_rec) == expected

    @pytest.mark.parametrize("kernel", ["production", "reference"])
    def test_snapshot_does_not_perturb_the_source(self, kernel):
        straight, straight_rec = build_network(kernel)
        straight.run(until=500)
        expected = fingerprint(straight, straight_rec)

        probed, probed_rec = build_network(kernel)
        for cut in (50, 123, 200, 377):
            probed.run(until=cut)
            probed.snapshot()
        probed.run(until=500)
        assert fingerprint(probed, probed_rec) == expected

    def test_restore_same_simulator_rewinds(self):
        sim, recorder = build_network()
        sim.run(until=150)
        snapshot = sim.snapshot()
        state_at_cut = fingerprint(sim, recorder)
        recorder_state = recorder.capture_state()
        sim.run(until=400)
        assert fingerprint(sim, recorder) != state_at_cut
        sim.restore(snapshot)
        recorder.restore_state(recorder_state)
        assert fingerprint(sim, recorder) == state_at_cut
        # ...and the replayed segment matches a straight run.
        straight, straight_rec = build_network()
        straight.run(until=400)
        sim.run(until=400)
        assert fingerprint(sim, recorder) == fingerprint(straight, straight_rec)

    def test_unstarted_target_is_started_by_restore(self):
        source, source_rec = build_network()
        source.run(until=99)
        snapshot = source.snapshot()
        target, target_rec = build_network()
        target.restore(snapshot)  # never ran
        target_rec.restore_state(source_rec.capture_state())
        source.run(until=300)
        target.run(until=300)
        assert fingerprint(target, target_rec) == fingerprint(source, source_rec)

    def test_snapshot_on_unstarted_simulator_captures_time_zero(self):
        sim, _ = build_network()
        snapshot = sim.snapshot()
        assert snapshot["now"] == 0
        assert snapshot["statistics"]["process_runs"] > 0  # start ran

    def test_non_rearmable_generator_is_refused(self):
        def build():
            sim = create_simulator()
            sig = sim.add_signal("sig", init=0)

            def script():
                total = 0  # loop-carried frame state: not rearmable
                for step in range(50):
                    total += step
                    sim.schedule(sig, total % 97, 0)
                    yield Timeout(5)

            sim.add_process("script", script)
            return sim

        source = build()
        source.run(until=20)
        snapshot = source.snapshot()
        target = build()
        with pytest.raises(SimulationError, match="non-rearmable"):
            target.restore(snapshot)

    def test_restore_rejects_structural_mismatch(self):
        source, _ = build_network()
        source.run(until=50)
        snapshot = source.snapshot()
        other = Simulator()
        other.add_signal("unrelated")
        with pytest.raises(SimulationError, match="different signal"):
            other.restore(snapshot)

    def test_restore_rejects_unknown_format(self):
        sim, _ = build_network()
        with pytest.raises(SimulationError, match="format"):
            sim.restore({"format": 99})

    @pytest.mark.parametrize("kernel", ["production", "reference"])
    def test_pending_pokes_between_runs_travel_with_the_snapshot(self, kernel):
        # Zero-delay activity injected between run() calls (a testbench
        # poke) is pending work the snapshot must carry, or the restored
        # run silently loses the write.
        straight, straight_rec = build_network(kernel)
        straight.run(until=100)
        straight.poke("data", 23, 0)
        straight.poke("flag", 9, 12)
        straight.run(until=300)
        expected = fingerprint(straight, straight_rec)

        source, source_rec = build_network(kernel)
        source.run(until=100)
        source.poke("data", 23, 0)
        source.poke("flag", 9, 12)
        snapshot = source.snapshot()
        target, target_rec = build_network(kernel)
        target.restore(snapshot)
        target_rec.restore_state(source_rec.capture_state())
        target.run(until=300)
        assert fingerprint(target, target_rec) == expected

    def test_snapshot_inside_a_process_is_refused(self):
        sim = create_simulator()
        sim.add_signal("sig", init=0)
        captured = {}

        def prober():
            yield Timeout(5)
            try:
                sim.snapshot()
            except SimulationError as exc:
                captured["error"] = str(exc)

        sim.add_process("prober", prober)
        sim.run(until=20)
        assert "between run() calls" in captured["error"]


class TestFirstWaitAndRearmableApi:
    def test_first_wait_requires_generator(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="generator"):
            sim.add_process("plain", lambda: None, first_wait=Timeout(5))

    def test_first_wait_must_be_wait_condition(self):
        sim = Simulator()

        def proc():
            yield Timeout(1)

        with pytest.raises(SimulationError, match="WaitCondition"):
            sim.add_process("proc", proc, first_wait=7)

    def test_rearmable_rejected_for_sensitivity_processes(self):
        sim = Simulator()
        sig = sim.add_signal("sig")
        with pytest.raises(SimulationError, match="rearmable"):
            sim.add_process("plain", lambda: None, sensitivity=[sig],
                            rearmable=True)

    @pytest.mark.parametrize("kernel", ["production", "reference"])
    def test_first_wait_defers_the_first_run(self, kernel):
        sim = create_simulator(kernel)
        sig = sim.add_signal("sig", init=0)
        ran_at = []

        def proc():
            while True:
                ran_at.append(sim.now)
                sim.schedule(sig, sig.value + 1, 0)
                yield Timeout(10)

        sim.add_process("proc", proc, first_wait=Timeout(25), rearmable=True)
        sim.run(until=60)
        assert ran_at == [25, 35, 45, 55]
        assert sig.value == 4
