"""Unit tests of IR expressions and statements."""

import pytest

from repro.ir.expr import BinOp, Const, PortRef, UnOp, Var, const, port, var, wrap
from repro.ir.stmt import Assign, If, Nop, PortWrite
from repro.utils.errors import ModelError


class TestExpressionConstruction:
    def test_const_accepts_scalars_and_strings(self):
        assert Const(5).value == 5
        assert Const("INIT").value == "INIT"
        assert Const(True).value is True

    def test_const_rejects_other_types(self):
        with pytest.raises(ModelError):
            Const(3.5)
        with pytest.raises(ModelError):
            Const([1, 2])

    def test_var_and_port_validate_names(self):
        assert Var("COUNT").name == "COUNT"
        assert PortRef("B_FULL").port_name == "B_FULL"
        with pytest.raises(ModelError):
            Var("not valid")
        with pytest.raises(ModelError):
            PortRef("signal")

    def test_binop_validates_operator(self):
        with pytest.raises(ModelError):
            BinOp("pow", Const(2), Const(3))

    def test_unop_validates_operator(self):
        with pytest.raises(ModelError):
            UnOp("sqrt", Const(4))

    def test_wrap_converts_scalars(self):
        wrapped = wrap(7)
        assert isinstance(wrapped, Const)
        assert wrap(wrapped) is wrapped
        with pytest.raises(ModelError):
            wrap(object())

    def test_factory_helpers(self):
        assert isinstance(const(1), Const)
        assert isinstance(var("x"), Var)
        assert isinstance(port("p"), PortRef)


class TestOperatorSugar:
    def test_arithmetic_operators_build_binops(self):
        expr = var("a") + 1
        assert isinstance(expr, BinOp) and expr.op == "add"
        assert (var("a") - var("b")).op == "sub"
        assert (var("a") * 2).op == "mul"

    def test_comparison_helpers(self):
        assert var("a").eq(1).op == "eq"
        assert var("a").ne(1).op == "ne"
        assert var("a").lt(1).op == "lt"
        assert var("a").le(1).op == "le"
        assert var("a").gt(1).op == "gt"
        assert var("a").ge(1).op == "ge"

    def test_logic_helpers(self):
        assert var("a").and_(var("b")).op == "and"
        assert var("a").or_(0).op == "or"

    def test_children_traversal(self):
        expr = (var("a") + 1).eq(port("p"))
        children = expr.children()
        assert len(children) == 2
        assert isinstance(children[0], BinOp)
        assert isinstance(children[1], PortRef)


class TestExpressionEquality:
    def test_structural_equality(self):
        assert var("x") == Var("x")
        assert const(3) == Const(3)
        assert (var("x") + 3) == BinOp("add", Var("x"), Const(3))

    def test_hashable(self):
        expressions = {var("x"), var("x"), const(1), port("p")}
        assert len(expressions) == 3


class TestStatements:
    def test_assign_validates_target(self):
        stmt = Assign("COUNT", var("COUNT") + 1)
        assert stmt.target == "COUNT"
        with pytest.raises(ModelError):
            Assign("bad name", 1)

    def test_portwrite_wraps_value(self):
        stmt = PortWrite("DATAIN", 5)
        assert isinstance(stmt.expr, Const)

    def test_if_holds_branches(self):
        stmt = If(var("a").eq(1), [Assign("x", 1)], [Assign("x", 2)])
        assert len(stmt.then) == 1
        assert len(stmt.orelse) == 1

    def test_nop_repr(self):
        assert "Nop" in repr(Nop())
