"""Unit tests of the Adaptive Motor Controller building blocks."""

import pytest

from repro.apps.motor_controller import (
    CMD_PREFIX,
    MotorControllerConfig,
    MotorModel,
    STAT_PREFIX,
    build_distribution,
    build_motor_unit,
    build_speed_control,
    build_sw_hw_unit,
    build_system,
)
from repro.apps.motor_controller.comm_units import (
    DISTRIBUTION_INTERFACE,
    MOTOR_INTERFACE,
    SPEED_CONTROL_INTERFACE,
)
from repro.core.validation import validate_model
from repro.desim import Simulator, Timeout
from repro.ir.transform import check_fsm
from repro.utils.errors import ModelError, SimulationError


class TestConfig:
    def test_segment_count(self):
        config = MotorControllerConfig(final_position=40, segment=10)
        assert config.segments == 4
        assert MotorControllerConfig(final_position=41, segment=10).segments == 5
        assert config.total_travel == 40

    def test_validation(self):
        with pytest.raises(ModelError):
            MotorControllerConfig(final_position=0, start_position=0)
        with pytest.raises(ModelError):
            MotorControllerConfig(segment=0)
        with pytest.raises(ModelError):
            MotorControllerConfig(speed_limit=0)


class TestCommUnits:
    def test_sw_hw_unit_interfaces_match_the_paper(self):
        unit = build_sw_hw_unit()
        assert set(unit.interfaces) == {DISTRIBUTION_INTERFACE, SPEED_CONTROL_INTERFACE}
        distribution = {s.name for s in unit.interface_services(DISTRIBUTION_INTERFACE)}
        speed_control = {s.name for s in unit.interface_services(SPEED_CONTROL_INTERFACE)}
        assert distribution == {"SetupControl", "MotorPosition", "ReadMotorState"}
        assert speed_control == {"ReadMotorConstraints", "ReadMotorPosition",
                                 "ReturnMotorState"}
        assert unit.check_ports() == []
        assert len(unit.controllers) == 2

    def test_sw_hw_unit_channels_have_expected_ports(self):
        unit = build_sw_hw_unit()
        assert f"{CMD_PREFIX}TAGBUF" in unit.ports
        assert f"{STAT_PREFIX}FULL" in unit.ports
        assert f"{STAT_PREFIX}TAGBUF" not in unit.ports, "status channel is untagged"

    def test_motor_unit_services(self):
        unit = build_motor_unit()
        assert set(unit.services) == {"SendMotorPulses", "ReadSampledData"}
        assert set(unit.interfaces) == {MOTOR_INTERFACE}
        assert unit.check_ports() == []
        assert "MOT_PULSE" in unit.ports and "MOT_DIR" in unit.ports

    def test_all_service_fsms_are_structurally_clean(self):
        for unit in (build_sw_hw_unit(), build_motor_unit()):
            for service in unit.services.values():
                assert check_fsm(service.fsm) == [], service.name


class TestBehaviours:
    def test_distribution_fsm_matches_figure_6(self):
        config = MotorControllerConfig()
        module = build_distribution(config)
        names = list(module.fsm.states)
        for expected in ("Start", "SetupControlCall", "Step", "MotorPositionCall",
                         "Next", "ReadStateCall", "NextStep", "Finish"):
            assert expected in names
        assert module.fsm.initial == "Start"
        assert module.services_used() == ["SetupControl", "MotorPosition",
                                          "ReadMotorState"]
        assert check_fsm(module.fsm) == []

    def test_speed_control_units_match_figure_7(self):
        module = build_speed_control(MotorControllerConfig())
        assert set(module.processes) == {"POSITION", "CORE", "TIMER"}
        assert set(module.services_used()) == {
            "ReadMotorConstraints", "ReadMotorPosition", "ReturnMotorState",
            "ReadSampledData", "SendMotorPulses",
        }
        for fsm in module.behaviours():
            assert check_fsm(fsm) == [], fsm.name
        # Internal signals of Figure 7 exist.
        for signal in ("TARGETSIG", "NEWTARGET", "BUSY", "PULSECMD", "PULSEACK"):
            assert signal in module.internal_signals

    def test_system_model_validates(self):
        model, config = build_system()
        assert validate_model(model) == []
        topology = model.topology()
        assert topology["software_modules"] == ["DistributionMod"]
        assert topology["hardware_modules"] == ["SpeedControlMod"]
        assert sorted(topology["comm_units"]) == ["MotorUnit", "SwHwUnit"]
        assert len(topology["bindings"]) == 8


class TestMotorModel:
    def _attach(self, motor):
        sim = Simulator()
        pulse = sim.add_signal("pulse", init=0)
        direction = sim.add_signal("direction", init=1)
        sample = sim.add_signal("sample", init=0)
        motor.attach(sim, pulse, direction, sample)
        return sim, pulse, direction, sample

    def test_steps_follow_pulses_and_direction(self):
        motor = MotorModel()
        sim, pulse, direction, sample = self._attach(motor)

        def stim():
            for _ in range(3):
                sim.schedule(pulse, 1)
                yield Timeout(50)
                sim.schedule(pulse, 0)
                yield Timeout(50)
            sim.schedule(direction, 0)
            yield Timeout(10)
            sim.schedule(pulse, 1)
            yield Timeout(50)
            sim.schedule(pulse, 0)
            yield Timeout(50)

        sim.add_process("stim", stim)
        sim.run()
        assert motor.position == 2
        assert motor.steps_forward == 3 and motor.steps_backward == 1
        assert sample.value == motor.position
        assert motor.pulse_count == 4

    def test_minimum_pulse_period_drops_fast_pulses(self):
        motor = MotorModel(min_pulse_period_ns=100)
        sim, pulse, _, _ = self._attach(motor)

        def stim():
            for gap in (200, 30, 200):
                sim.schedule(pulse, 1)
                yield Timeout(10)
                sim.schedule(pulse, 0)
                yield Timeout(gap)

        sim.add_process("stim", stim)
        sim.run()
        assert motor.missed_pulses == 1
        assert motor.position == 2

    def test_double_attach_rejected(self):
        motor = MotorModel()
        self._attach(motor)
        with pytest.raises(SimulationError):
            self._attach(motor)

    def test_summary_and_periods(self):
        motor = MotorModel()
        sim, pulse, _, _ = self._attach(motor)

        def stim():
            for _ in range(2):
                sim.schedule(pulse, 1)
                yield Timeout(40)
                sim.schedule(pulse, 0)
                yield Timeout(60)

        sim.add_process("stim", stim)
        sim.run()
        assert motor.pulse_periods() == [100]
        summary = motor.summary()
        assert summary["pulses"] == 2 and summary["position"] == 2
