"""Quick tier of the conformance kit, wired into plain pytest.

Each scenario is its own parametrized test, so a failure names the exact
scenario (``kernel-small-3``, ``system-2``) — reproduce it standalone with
``python -m repro.testkit --replay <name>``.  The full 270+ scenario sweep
runs via ``make conformance``.
"""

import pytest

from repro.testkit import (
    KernelScenario,
    check_cosim_conformance,
    check_cosyn_conformance,
    check_kernel_scenario,
    generate_system,
)
from repro.testkit.runner import (
    QUICK_COSIM_MODELS,
    QUICK_COSYN_MODELS,
    QUICK_FAULT_SEEDS,
    QUICK_KERNEL_TIER,
    QUICK_REALTIME_MODELS,
    replay,
    run_conformance,
)

KERNEL_PARAMS = [
    pytest.param(size, seed, id=f"kernel-{size}-{seed}")
    for size, count in QUICK_KERNEL_TIER
    for seed in range(count)
]


@pytest.mark.parametrize("size, seed", KERNEL_PARAMS)
def test_kernel_scenario_conformance(size, seed):
    scenario = KernelScenario(seed, size=size)
    problems = check_kernel_scenario(scenario)
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize(
    "seed", range(QUICK_COSIM_MODELS),
    ids=[f"system-{seed}" for seed in range(QUICK_COSIM_MODELS)],
)
def test_cosim_oracle(seed):
    system = generate_system(seed)
    problems = check_cosim_conformance(system)
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize(
    "seed", range(QUICK_COSYN_MODELS),
    ids=[f"system-{seed}" for seed in range(QUICK_COSYN_MODELS)],
)
def test_cosyn_oracle(seed):
    system = generate_system(seed)
    problems = check_cosyn_conformance(system)
    assert not problems, "\n".join(problems)


class TestKit:
    def test_generation_is_reproducible(self):
        # Two builds of one scenario produce identical fingerprints even on
        # the same kernel — the generator draws nothing outside its seeds.
        scenario = KernelScenario(11, size="tiny")
        first = scenario.build("production")
        second = scenario.build("production")
        first.run()
        second.run()
        assert first.fingerprint() == second.fingerprint()

    def test_scenario_sizes_scale(self):
        assert KernelScenario(0, size="tiny").n_processes < 20
        assert KernelScenario(0, size="stress").n_processes >= 900

    def test_generated_logs_are_nonempty(self):
        # A scenario that generates no observable activity tests nothing.
        instance = KernelScenario(0, size="small").build("production")
        instance.run()
        fingerprint = instance.fingerprint()
        assert fingerprint["log"], "generated scenario produced no activity"
        assert any(fingerprint["waveforms"].values())

    def test_replay_round_trip(self):
        assert replay("kernel-tiny-0") == []
        assert replay("system-0") == []
        assert replay("fault-stuck_handshake-1") == []
        assert replay("realtime-0") == []
        with pytest.raises(ValueError):
            replay("bogus-name")

    def test_report_aggregation(self):
        report = run_conformance(kernel_tier=(("tiny", 2),), cosim_models=1,
                                 cosyn_models=1, fault_seeds=0,
                                 realtime_models=0)
        assert report.scenarios_run == 4
        assert report.ok
        assert "4 scenarios — PASS" in report.summary()

    def test_fault_and_realtime_tiers_pass(self):
        """The quick fault/realtime tiers hold on both FSM execution tiers.

        ``fsm_mode="differential"`` runs every fault scenario on the
        compiled *and* interpreted tiers and cross-checks the full variant
        matrix — the ISSUE's "full conformance sweep passes with
        fault-injection scenarios in both fsm modes" criterion, at quick
        scale.
        """
        report = run_conformance(kernel_tier=(), cosim_models=0,
                                 cosyn_models=0,
                                 fault_seeds=QUICK_FAULT_SEEDS,
                                 realtime_models=QUICK_REALTIME_MODELS,
                                 fsm_mode="differential")
        assert report.ok, report.summary()
        assert report.scenarios_run == \
            4 * QUICK_FAULT_SEEDS + QUICK_REALTIME_MODELS

    def test_lossless_expectations_present(self):
        # At least some generated systems must carry functional oracles,
        # otherwise the cosim check degrades to determinism-only.
        systems = [generate_system(seed) for seed in range(10)]
        assert any(
            expected is not None
            for system in systems
            for expected in system.expectations.values()
        )


class TestWorkloadSourceHook:
    """The generator doubles as an oracle-free workload source for DSE."""

    def test_generate_models_yields_count_systems(self):
        from repro.testkit import generate_models

        systems = list(generate_models(3, seed_base=10))
        assert [s.seed for s in systems] == [10, 11, 12]
        assert all(s.name == f"system-{s.seed}" for s in systems)

    def test_networks_override_scales_the_model(self):
        from repro.testkit import generate_models

        (big,) = generate_models(1, networks=9)
        model = big.build_model()
        assert len(model.modules) >= 18
        assert len(model.comm_units) >= 9

    def test_networks_override_is_deterministic(self):
        left = generate_system(5, networks=4).build_model()
        right = generate_system(5, networks=4).build_model()
        assert left.topology() == right.topology()

    def test_sw_only_lists_exactly_the_relays(self):
        for seed in range(8):
            system = generate_system(seed, networks=4)
            model = system.build_model()
            relays = sorted(name for name in model.modules
                            if name.startswith("Relay"))
            assert sorted(system.sw_only) == relays

    def test_emit_models_cli_prints_json_without_oracles(self, capsys):
        import json

        from repro.testkit.__main__ import main

        assert main(["--emit-models", "2", "--networks", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        for index, line in enumerate(lines):
            record = json.loads(line)
            assert record["name"] == f"system-{index}"
            assert record["modules"] >= 6
            assert "topology" in record and "cosim_params" in record
