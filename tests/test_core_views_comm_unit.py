"""Unit tests of communication units and the multi-view library."""

import pytest

from repro.comm import handshake_channel, make_get_service, make_handshake_controller
from repro.core.comm_unit import CommunicationController, CommunicationUnit
from repro.core.port import Port
from repro.core.views import MultiViewLibrary, View, ViewKind
from repro.ir import FsmBuilder
from repro.utils.errors import ModelError, ViewError

from tests.conftest import make_put_like_service


class TestCommunicationUnit:
    def test_duplicate_service_rejected(self, put_service):
        unit = CommunicationUnit("Unit", services=[put_service])
        with pytest.raises(ModelError):
            unit.add_service(put_service)

    def test_duplicate_port_rejected(self):
        unit = CommunicationUnit("Unit", ports=[Port("A")])
        with pytest.raises(ModelError):
            unit.add_port(Port("A"))

    def test_service_and_port_lookup(self, put_service):
        unit = CommunicationUnit("Unit", ports=[Port("DATAIN")], services=[put_service])
        assert unit.service("PUT") is put_service
        assert unit.port("DATAIN").name == "DATAIN"
        with pytest.raises(ModelError):
            unit.service("MISSING")
        with pytest.raises(ModelError):
            unit.port("MISSING")

    def test_interfaces_group_services(self):
        unit = handshake_channel("Chan", put_name="P1", get_name="G1",
                                 put_interface="Host", get_interface="Server")
        assert [s.name for s in unit.interface_services("Host")] == ["P1"]
        assert [s.name for s in unit.interface_services("Server")] == ["G1"]
        with pytest.raises(ModelError):
            unit.interface_services("Missing")

    def test_check_ports_reports_undeclared(self, put_service):
        unit = CommunicationUnit("Unit", ports=[Port("DATAIN")], services=[put_service])
        problems = unit.check_ports()
        assert any("B_FULL" in p for p in problems)
        assert any("PUTRDY" in p for p in problems)

    def test_check_ports_clean_channel(self):
        unit = handshake_channel("Chan")
        assert unit.check_ports() == []

    def test_controller_validation(self):
        with pytest.raises(ModelError):
            CommunicationUnit("Unit", controllers=["not a controller"])
        with pytest.raises(ModelError):
            CommunicationController("Ctrl", fsm="not an fsm")

    def test_multiple_controllers(self):
        controllers = [make_handshake_controller("C1", "A_"),
                       make_handshake_controller("C2", "B_")]
        unit = CommunicationUnit("Unit", controllers=controllers)
        assert len(unit.controllers) == 2
        assert unit.controller is controllers[0]

    def test_unit_without_controller(self):
        unit = CommunicationUnit("Plain")
        assert unit.controller is None
        assert unit.controllers == []


class TestViews:
    def _view(self, kind=ViewKind.HW, platform=None, service="PUT"):
        language = "vhdl" if kind is ViewKind.HW else "c"
        return View(service, kind, language, "-- text", platform=platform)

    def test_sw_synth_view_requires_platform(self):
        with pytest.raises(ViewError):
            View("PUT", ViewKind.SW_SYNTH, "c", "...")

    def test_platform_forbidden_for_other_kinds(self):
        with pytest.raises(ViewError):
            View("PUT", ViewKind.HW, "vhdl", "...", platform="pc")

    def test_language_validated(self):
        with pytest.raises(ViewError):
            View("PUT", ViewKind.HW, "verilog", "...")

    def test_library_add_and_get(self):
        library = MultiViewLibrary()
        hw = library.add(self._view(ViewKind.HW))
        sim = library.add(self._view(ViewKind.SW_SIM))
        synth = library.add(self._view(ViewKind.SW_SYNTH, platform="pc_at_fpga"))
        assert library.get("PUT", ViewKind.HW) is hw
        assert library.get("PUT", ViewKind.SW_SIM) is sim
        assert library.get("PUT", ViewKind.SW_SYNTH, "pc_at_fpga") is synth
        assert len(library) == 3

    def test_duplicate_view_rejected_unless_replace(self):
        library = MultiViewLibrary([self._view(ViewKind.HW)])
        with pytest.raises(ViewError):
            library.add(self._view(ViewKind.HW))
        library.add(self._view(ViewKind.HW), replace=True)
        assert len(library) == 1

    def test_missing_view_error_mentions_platform(self):
        library = MultiViewLibrary()
        with pytest.raises(ViewError, match="communication primitive"):
            library.get("PUT", ViewKind.SW_SYNTH, "vme_board")

    def test_missing_views_report(self):
        library = MultiViewLibrary([self._view(ViewKind.HW)])
        missing = library.missing_views(["PUT", "GET"], platforms=["pc_at_fpga"])
        assert "PUT: missing SW simulation view" in missing
        assert "GET: missing HW view" in missing
        assert any("pc_at_fpga" in entry for entry in missing)

    def test_services_and_platforms_listing(self):
        library = MultiViewLibrary([
            self._view(ViewKind.HW, service="PUT"),
            self._view(ViewKind.SW_SYNTH, platform="pc_at_fpga", service="GET"),
        ])
        assert library.services() == ["GET", "PUT"]
        assert library.platforms() == ["pc_at_fpga"]
        assert len(library.views_of("PUT")) == 1

    def test_merge_libraries(self):
        first = MultiViewLibrary([self._view(ViewKind.HW, service="PUT")])
        second = MultiViewLibrary([self._view(ViewKind.HW, service="GET")])
        first.merge(second)
        assert len(first) == 2
