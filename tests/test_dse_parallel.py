"""Parallel candidate evaluation must be invisible in the results: a pool of
N workers yields byte-identical reports to a serial run."""

from repro.dse import DesignSpaceExplorer
from repro.testkit import generate_system

from tests.conftest import ALL_PLATFORMS, make_producer_consumer_model


def _report_bytes(model, workers, **explore_kwargs):
    explorer = DesignSpaceExplorer(model, platforms=ALL_PLATFORMS)
    report = explorer.explore(workers=workers, **explore_kwargs)
    return report.to_json(include_scores=True)


class TestParallelEvaluation:
    def test_exhaustive_serial_and_parallel_reports_are_byte_identical(self):
        serial = _report_bytes(make_producer_consumer_model(), 1,
                               mode="exhaustive")
        for workers in (2, 3):
            parallel = _report_bytes(make_producer_consumer_model(), workers,
                                     mode="exhaustive")
            assert parallel == serial

    def test_heuristic_serial_and_parallel_reports_are_byte_identical(self):
        system = generate_system(1, networks=4)
        serial = _report_bytes(system.build_model(), 1,
                               mode="heuristic", seed=7, restarts=2)
        parallel = _report_bytes(system.build_model(), 2,
                                 mode="heuristic", seed=7, restarts=2)
        assert parallel == serial

    def test_parallel_run_reports_same_front_labels(self):
        model = generate_system(0, networks=2).build_model()
        explorer = DesignSpaceExplorer(model, platforms=ALL_PLATFORMS)
        report = explorer.explore(mode="exhaustive", workers=2)
        assert [s.candidate.label() for s in report.front]
        assert all(s.feasible for s in report.front)
