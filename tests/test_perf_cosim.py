"""Smoke tests of the cosim perf harness (``python -m benchmarks.perf.cosim``).

Like ``test_perf_harness.py`` for the kernel suite: running the harness's
small points inside the test suite keeps the benchmark code working as the
backplane evolves, and the regression-gate logic (``--check``) is pinned on
synthetic runs so it cannot silently go vacuous.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.perf.cosim import (  # noqa: E402  (path setup above)
    ACCEPTANCE_POINT,
    ACCEPTANCE_THRESHOLD,
    SCHEMA,
    check_against_baseline,
    main,
    time_cosim_point,
)
from benchmarks.perf.cosim_workloads import COSIM_WORKLOADS  # noqa: E402
from benchmarks.perf.harness import update_bench_file  # noqa: E402

TRANSITION_RATE, MIXED_SYSTEM = COSIM_WORKLOADS


def test_quick_sizes_are_subset_of_full_sizes():
    # The --check gate compares quick runs against recorded baselines, so
    # every quick point must exist in the full sweep too.
    for workload in COSIM_WORKLOADS:
        assert set(workload.quick_sizes) <= set(workload.sizes)


def test_transition_rate_point_counts_transitions():
    point = time_cosim_point(TRANSITION_RATE, 2, "compiled", quick=True)
    assert point["wall_s"] >= 0
    assert point["fsm"]["steps"] > 0
    # Transition-rate-bound by construction: every step fires.
    assert point["fsm"]["transitions_fired"] == point["fsm"]["steps"]
    assert point["fsm"]["compile_hits"] == point["fsm"]["steps"]
    assert point["fsm"]["fallback"] == 0


def test_interpreted_point_reports_fallback_steps():
    point = time_cosim_point(MIXED_SYSTEM, 1, "interpreted", quick=True)
    assert point["fsm"]["fallback"] == point["fsm"]["steps"] > 0
    assert point["fsm"]["compile_hits"] == 0


def test_repeats_validated():
    with pytest.raises(ValueError, match="repeats"):
        time_cosim_point(TRANSITION_RATE, 2, "compiled", repeats=0)


def _synthetic_run(points):
    return {"results": [
        {"workload": workload, "n_processes": n, "wall_s": wall}
        for workload, n, wall in points
    ]}


def test_update_bench_file_computes_cosim_acceptance(tmp_path):
    path = tmp_path / "bench_cosim.json"
    seed = _synthetic_run([(ACCEPTANCE_POINT[0], ACCEPTANCE_POINT[1], 6.0)])
    current = _synthetic_run([(ACCEPTANCE_POINT[0], ACCEPTANCE_POINT[1], 1.0)])
    update_bench_file(path, "seed", seed, schema=SCHEMA,
                      point=ACCEPTANCE_POINT, threshold=ACCEPTANCE_THRESHOLD)
    document = update_bench_file(path, "current", current, schema=SCHEMA,
                                 point=ACCEPTANCE_POINT,
                                 threshold=ACCEPTANCE_THRESHOLD)
    assert json.loads(path.read_text())["schema"] == SCHEMA
    acceptance = document["acceptance"]
    assert acceptance["point"] == {"workload": ACCEPTANCE_POINT[0],
                                   "n_processes": ACCEPTANCE_POINT[1]}
    assert acceptance["speedup"] == 6.0
    assert acceptance["pass"] is True


def test_check_against_baseline_flags_regressions():
    baseline = _synthetic_run([("transition_rate", 2, 0.10),
                               ("mixed_system", 1, 0.20)])
    ok_run = _synthetic_run([("transition_rate", 2, 0.15),
                             ("mixed_system", 1, 0.25)])
    bad_run = _synthetic_run([("transition_rate", 2, 0.25),
                              ("mixed_system", 1, 0.25)])
    ok, _ = check_against_baseline(baseline, ok_run, max_slowdown=2.0)
    assert ok
    ok, lines = check_against_baseline(baseline, bad_run, max_slowdown=2.0)
    assert not ok
    assert any("REGRESSED" in line for line in lines)


def test_check_against_baseline_rejects_vacuous_comparison():
    baseline = _synthetic_run([("transition_rate", 64, 1.0)])
    run = _synthetic_run([("transition_rate", 2, 0.1)])
    ok, lines = check_against_baseline(baseline, run)
    assert not ok
    assert any("no shared points" in line for line in lines)


def test_check_cli_requires_recorded_baseline(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main(["--check", "--output", str(missing)]) == 1
    update_bench_file(tmp_path / "bench.json", "current", _synthetic_run([]),
                      schema=SCHEMA, point=ACCEPTANCE_POINT,
                      threshold=ACCEPTANCE_THRESHOLD)
    assert main(["--check", "--output", str(tmp_path / "bench.json")]) == 1
    err = capsys.readouterr().err
    assert "quick-baseline" in err


def test_check_cli_rejects_baseline_from_wrong_tier(tmp_path, capsys):
    # A baseline recorded on the interpreted tier must not silently gate a
    # compiled-tier run (it would be trivially green).
    baseline = dict(_synthetic_run([("transition_rate", 2, 0.5)]),
                    fsm_mode="interpreted", quick=True)
    path = tmp_path / "bench.json"
    update_bench_file(path, "quick-baseline", baseline, schema=SCHEMA,
                      point=ACCEPTANCE_POINT, threshold=ACCEPTANCE_THRESHOLD)
    assert main(["--check", "--output", str(path)]) == 1
    assert "re-record the baseline" in capsys.readouterr().err


def test_check_cli_rejects_full_tier_baseline(tmp_path, capsys):
    # A full-tier baseline does ~10x the quick tier's work per point, which
    # would make every wall-clock ratio trivially green.
    baseline = dict(_synthetic_run([("transition_rate", 2, 0.5)]),
                    fsm_mode="compiled", quick=False)
    path = tmp_path / "bench.json"
    update_bench_file(path, "quick-baseline", baseline, schema=SCHEMA,
                      point=ACCEPTANCE_POINT, threshold=ACCEPTANCE_THRESHOLD)
    assert main(["--check", "--output", str(path)]) == 1
    assert "--quick" in capsys.readouterr().err
