"""Smoke tests of the cosim perf harness (``python -m benchmarks.perf.cosim``).

Like ``test_perf_harness.py`` for the kernel suite: running the harness's
small points inside the test suite keeps the benchmark code working as the
backplane evolves, and the regression-gate logic (``--check``) is pinned on
synthetic runs so it cannot silently go vacuous.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.perf.cosim import (  # noqa: E402  (path setup above)
    ACCEPTANCE_POINTS,
    BATCH_THRESHOLD,
    SCHEMA,
    check_against_baseline,
    check_fast_paths,
    main,
    resolve_system_mode,
    time_batch_point,
    time_cosim_point,
)
from benchmarks.perf.cosim_workloads import COSIM_WORKLOADS  # noqa: E402
from benchmarks.perf.harness import update_bench_file  # noqa: E402

TRANSITION_RATE, MIXED_SYSTEM = COSIM_WORKLOADS


def test_quick_sizes_are_subset_of_full_sizes():
    # The --check gate compares quick runs against recorded baselines, so
    # every quick point must exist in the full sweep too.
    for workload in COSIM_WORKLOADS:
        assert set(workload.quick_sizes) <= set(workload.sizes)


def test_acceptance_points_exist_in_full_sweep():
    sizes = {workload.name: workload.sizes for workload in COSIM_WORKLOADS}
    for workload, scale, threshold in ACCEPTANCE_POINTS:
        assert scale in sizes[workload]
        assert threshold > 1.0


def test_resolve_system_mode_follows_fsm_tier():
    assert resolve_system_mode("compiled") == "fused"
    assert resolve_system_mode("interpreted") == "interpreted"
    assert resolve_system_mode("compiled", "per-fsm") == "per-fsm"


def test_transition_rate_point_counts_transitions():
    point = time_cosim_point(TRANSITION_RATE, 2, "compiled", quick=True)
    assert point["wall_s"] >= 0
    assert point["system_mode"] == "fused"
    assert point["fsm"]["steps"] > 0
    # Transition-rate-bound by construction: every step fires, and under
    # the fused tier every hardware step lands in the fused program.
    assert point["fsm"]["transitions_fired"] == point["fsm"]["steps"]
    assert point["fsm"]["system_compile_hits"] == point["fsm"]["steps"]
    assert point["fsm"]["system_fallback"] == 0
    assert point["fsm"]["fallback"] == 0


def test_per_fsm_point_reports_compiled_steps():
    point = time_cosim_point(TRANSITION_RATE, 2, "compiled",
                             system_mode="per-fsm", quick=True)
    assert point["system_mode"] == "per-fsm"
    assert point["fsm"]["compile_hits"] == point["fsm"]["steps"] > 0
    assert point["fsm"]["system_compile_hits"] == 0


def test_interpreted_point_reports_fallback_steps():
    point = time_cosim_point(MIXED_SYSTEM, 1, "interpreted", quick=True)
    assert point["system_mode"] == "interpreted"
    assert point["fsm"]["fallback"] == point["fsm"]["steps"] > 0
    assert point["fsm"]["compile_hits"] == 0


def test_repeats_validated():
    with pytest.raises(ValueError, match="repeats"):
        time_cosim_point(TRANSITION_RATE, 2, "compiled", repeats=0)


def test_batch_point_is_byte_identical():
    point = time_batch_point(scenarios=3)
    assert point["identical"] is True
    assert point["scenarios"] == 3
    assert point["threshold"] == BATCH_THRESHOLD
    assert point["batch_wall_s"] > 0


def _synthetic_run(points, **extra):
    run = {"results": [
        {"workload": workload, "n_processes": n, "wall_s": wall}
        for workload, n, wall in points
    ]}
    run.update(extra)
    return run


def test_update_bench_file_computes_cosim_acceptance(tmp_path):
    path = tmp_path / "bench_cosim.json"
    seed_points = [(w, n, 6.0) for w, n, _ in ACCEPTANCE_POINTS]
    current_points = [(w, n, 1.0) for w, n, _ in ACCEPTANCE_POINTS]
    update_bench_file(path, "seed", _synthetic_run(seed_points),
                      schema=SCHEMA, points=ACCEPTANCE_POINTS)
    document = update_bench_file(path, "current",
                                 _synthetic_run(current_points),
                                 schema=SCHEMA, points=ACCEPTANCE_POINTS)
    assert json.loads(path.read_text())["schema"] == SCHEMA
    acceptance = document["acceptance"]
    assert acceptance["pass"] is True
    assert len(acceptance["points"]) == len(ACCEPTANCE_POINTS)
    for entry, (workload, n, threshold) in zip(acceptance["points"],
                                               ACCEPTANCE_POINTS):
        assert entry["point"] == {"workload": workload, "n_processes": n}
        assert entry["threshold"] == threshold
        assert entry["speedup"] == 6.0
        assert entry["pass"] is True


def test_acceptance_fails_when_any_point_misses(tmp_path):
    # One fast point must not green-light the whole verdict.
    path = tmp_path / "bench_cosim.json"
    seed_points = [(w, n, 6.0) for w, n, _ in ACCEPTANCE_POINTS]
    current_points = [(ACCEPTANCE_POINTS[0][0], ACCEPTANCE_POINTS[0][1], 1.0),
                      (ACCEPTANCE_POINTS[1][0], ACCEPTANCE_POINTS[1][1], 5.0)]
    update_bench_file(path, "seed", _synthetic_run(seed_points),
                      schema=SCHEMA, points=ACCEPTANCE_POINTS)
    document = update_bench_file(path, "current",
                                 _synthetic_run(current_points),
                                 schema=SCHEMA, points=ACCEPTANCE_POINTS)
    acceptance = document["acceptance"]
    assert acceptance["points"][0]["pass"] is True
    assert acceptance["points"][1]["pass"] is False
    assert acceptance["pass"] is False


def test_check_against_baseline_flags_regressions():
    baseline = _synthetic_run([("transition_rate", 2, 0.10),
                               ("mixed_system", 1, 0.20)])
    ok_run = _synthetic_run([("transition_rate", 2, 0.15),
                             ("mixed_system", 1, 0.25)])
    bad_run = _synthetic_run([("transition_rate", 2, 0.25),
                              ("mixed_system", 1, 0.25)])
    ok, _ = check_against_baseline(baseline, ok_run, max_slowdown=2.0)
    assert ok
    ok, lines = check_against_baseline(baseline, bad_run, max_slowdown=2.0)
    assert not ok
    assert any("REGRESSED" in line for line in lines)


def test_check_against_baseline_rejects_vacuous_comparison():
    baseline = _synthetic_run([("transition_rate", 64, 1.0)])
    run = _synthetic_run([("transition_rate", 2, 0.1)])
    ok, lines = check_against_baseline(baseline, run)
    assert not ok
    assert any("no shared points" in line for line in lines)


def test_check_fast_paths_flags_lost_tiers():
    fused_ok = {"results": [{
        "workload": "transition_rate", "n_processes": 2,
        "fsm_mode": "compiled", "system_mode": "fused",
        "fsm": {"steps": 10, "compile_hits": 0, "fallback": 0,
                "system_compile_hits": 10, "system_fallback": 0},
    }]}
    ok, lines = check_fast_paths(fused_ok)
    assert ok and not lines
    fused_lost = {"results": [{
        "workload": "transition_rate", "n_processes": 2,
        "fsm_mode": "compiled", "system_mode": "fused",
        "fsm": {"steps": 10, "compile_hits": 8, "fallback": 0,
                "system_compile_hits": 2, "system_fallback": 8},
    }]}
    ok, lines = check_fast_paths(fused_lost)
    assert not ok
    assert any("fused fast path" in line for line in lines)
    compiled_lost = {"results": [{
        "workload": "mixed_system", "n_processes": 1,
        "fsm_mode": "compiled", "system_mode": "per-fsm",
        "fsm": {"steps": 10, "compile_hits": 5, "fallback": 5,
                "system_compile_hits": 0, "system_fallback": 0},
    }]}
    ok, lines = check_fast_paths(compiled_lost)
    assert not ok
    assert any("compiled fast path" in line for line in lines)


def test_check_cli_requires_recorded_baseline(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main(["--check", "--output", str(missing)]) == 1
    update_bench_file(tmp_path / "bench.json", "current", _synthetic_run([]),
                      schema=SCHEMA, points=ACCEPTANCE_POINTS)
    assert main(["--check", "--output", str(tmp_path / "bench.json")]) == 1
    err = capsys.readouterr().err
    assert "quick-baseline" in err


def test_check_cli_rejects_baseline_from_wrong_tier(tmp_path, capsys):
    # A baseline recorded on the interpreted tier must not silently gate a
    # compiled-tier run (it would be trivially green).
    baseline = _synthetic_run([("transition_rate", 2, 0.5)],
                              fsm_mode="interpreted",
                              system_mode="interpreted", quick=True)
    path = tmp_path / "bench.json"
    update_bench_file(path, "quick-baseline", baseline, schema=SCHEMA,
                      points=ACCEPTANCE_POINTS)
    assert main(["--check", "--output", str(path)]) == 1
    assert "re-record the baseline" in capsys.readouterr().err


def test_check_cli_rejects_baseline_from_wrong_system_tier(tmp_path, capsys):
    # Right FSM tier, wrong whole-system tier: a per-FSM baseline must not
    # gate a fused run — that is exactly the gap this PR's tier closes.
    baseline = _synthetic_run([("transition_rate", 2, 0.5)],
                              fsm_mode="compiled", system_mode="per-fsm",
                              quick=True)
    path = tmp_path / "bench.json"
    update_bench_file(path, "quick-baseline", baseline, schema=SCHEMA,
                      points=ACCEPTANCE_POINTS)
    assert main(["--check", "--output", str(path)]) == 1
    err = capsys.readouterr().err
    assert "system_mode='per-fsm'" in err
    assert "re-record the baseline" in err


def test_check_cli_rejects_full_tier_baseline(tmp_path, capsys):
    # A full-tier baseline does ~10x the quick tier's work per point, which
    # would make every wall-clock ratio trivially green.
    baseline = _synthetic_run([("transition_rate", 2, 0.5)],
                              fsm_mode="compiled", system_mode="fused",
                              quick=False)
    path = tmp_path / "bench.json"
    update_bench_file(path, "quick-baseline", baseline, schema=SCHEMA,
                      points=ACCEPTANCE_POINTS)
    assert main(["--check", "--output", str(path)]) == 1
    assert "--quick" in capsys.readouterr().err
