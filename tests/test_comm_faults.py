"""Property tests: communication protocols under fault-injection hooks.

Three protocol-level guarantees that must hold for *every* well-formed
fault window, checked with hypothesis over the window placement:

* the blocking **handshake** never deadlocks silently when either strobe
  is stuck low for a window — both sides retry, so the stall is pure
  delay and every expected word still arrives exactly once;
* the **fifo** never loses or duplicates an item under a producer-side
  ``PFULL`` stall window *or* a consumer-side ``GETACK`` mask window —
  the controller's four-phase consumer side (pop on an observed ack
  rising edge, re-offer only after seeing the ack low post-pop) makes a
  forced-then-released acknowledge pure delay, exactly like the
  handshake (see the taxonomy in :mod:`repro.cosim.faults`);
* a **shared register** under force/release always reads
  last-write-wins: the forced value while pinned, the latest driven
  write after release.

The session-level properties run on both simulation kernels (the window
placement is the hypothesis-searched dimension; kernel conformance under
faults is additionally swept by ``repro.testkit``'s fault tier).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.channels import fifo_channel
from repro.core.model import SystemModel
from repro.cosim import CosimSession
from repro.cosim.faults import FaultEvent, FaultPlan
from repro.desim.signal import ForceValue, ReleaseValue, Signal
from repro.testkit.models import (
    _add_module,
    _consumer_fsm,
    _producer_fsm,
    generate_system,
)
from repro.testkit.oracles import (
    check_functional_outcome,
    run_session_to_completion,
)
from repro.testkit.scenarios import FAULT_MAX_TIME

#: Pure-handshake system (``handshake/pair/SH``, clock 20 ns).
HANDSHAKE_SEED = 1
#: Pure-FIFO system (``fifo/pair/SH``, clock 60 ns).
FIFO_SEED = 2


def run_with_window(seed, port_suffix, value, at, duration):
    """Run the generated system with one force window; returns problems.

    The window forces the first port ending in *port_suffix* of the
    system's first communication unit to *value* over ``[at, at+duration)``.
    """
    system = generate_system(seed)
    session = CosimSession(system.build_model(), **system.cosim_params)
    unit = next(iter(session.model.comm_units.values()))
    port = next(name for name in unit.ports if name.endswith(port_suffix))
    session.add_fault_plan(FaultPlan(f"window{port_suffix}", [
        FaultEvent(at, "force", unit.name, port, value),
        FaultEvent(at + duration, "release", unit.name, port),
    ]))
    result = run_session_to_completion(session, system.expectations,
                                       max_time=FAULT_MAX_TIME)
    return check_functional_outcome(session, result, system.expectations,
                                    max_time=FAULT_MAX_TIME)


class TestHandshakeUnderFaults:
    @given(strobe=st.sampled_from(["_PUTRDY", "_GETACK"]),
           at=st.integers(min_value=1, max_value=6_000),
           duration=st.integers(min_value=1, max_value=4_000))
    @settings(max_examples=12, deadline=None)
    def test_stuck_strobe_is_pure_delay(self, strobe, at, duration):
        """No silent deadlock, no loss: the transfer completes exactly.

        The blocking handshake's controller refuses the next word until it
        has *observed* the acknowledge go low, so masking either strobe
        only stretches the transfer — the functional expectation (word
        count and checksum) must hold for every window placement.
        """
        assert run_with_window(HANDSHAKE_SEED, strobe, 0, at, duration) == []


class TestFifoUnderFaults:
    @given(at=st.integers(min_value=1, max_value=8_000),
           duration=st.integers(min_value=1, max_value=5_000))
    @settings(max_examples=12, deadline=None)
    def test_full_stall_never_loses_or_duplicates(self, at, duration):
        """A ``PFULL`` window back-pressures the producer losslessly.

        Forcing the full flag high makes the producer spin in its
        WAIT_SPACE state; nothing is pushed blind and nothing already
        queued is disturbed, so the consumer still receives every item
        exactly once (word count and checksum both checked).
        """
        assert run_with_window(FIFO_SEED, "_PFULL", 1, at, duration) == []

    @given(at=st.integers(min_value=1, max_value=8_000),
           duration=st.integers(min_value=1, max_value=5_000))
    @settings(max_examples=12, deadline=None)
    def test_stuck_ack_is_pure_delay_exactly_once(self, at, duration):
        """A masked consumer acknowledge delays words but never loses one.

        This is the stale-acknowledge regression: the controller used to
        re-offer as soon as it saw the (masked) ack low, so the release
        re-exposed the consumer's still-driven-high ack and popped a word
        the consumer never captured.  With the four-phase consumer side —
        pop only on an observed ``GETACK`` rising edge, no re-offer until
        the ack has been seen low *after* the pop — every pushed word is
        delivered exactly once (word count and checksum both checked) for
        every window placement.
        """
        assert run_with_window(FIFO_SEED, "_GETACK", 0, at, duration) == []


def _fast_producer_slow_consumer():
    """The stale-acknowledge worst case: hardware producer, software consumer.

    The hardware producer pushes at clock rate while the software consumer
    samples only every second clock — the widest offer/sample gap the
    generator's activation policy allows.  Pre-fix, an off-grid ``GETACK``
    mask window over this system popped a word the consumer never captured
    (exactly one per window), which is the regression the windows below pin.
    """
    words, start = 12, 3
    expectations = {"Cons0": {"words": words,
                              "total": sum(range(start, start + words))}}
    params = {"clock_period": 100, "sw_activation_period": 200}

    def build():
        model = SystemModel("ModeB")
        model.add_comm_unit(fifo_channel("Net0", put_name="PUSH",
                                         get_name="POP", prefix="NT0",
                                         depth=4))
        _add_module(model, "Prod0",
                    _producer_fsm("PROD0", "PUSH", words, start),
                    False, None)
        _add_module(model, "Cons0", _consumer_fsm("CONS0", "POP", words),
                    True, None)
        model.bind("Prod0", "PUSH", "Net0")
        model.bind("Cons0", "POP", "Net0")
        return model

    return build, expectations, params


class TestFifoStaleAckRegression:
    @pytest.mark.parametrize("kernel", ["production", "reference"])
    @pytest.mark.parametrize("at,duration", [(2037, 100), (2637, 500)])
    def test_masked_ack_window_delivers_every_word(self, kernel, at,
                                                   duration):
        """Windows that lost word 8 (of 12) before the four-phase fix."""
        build, expectations, params = _fast_producer_slow_consumer()
        session = CosimSession(build(), kernel=kernel, **params)
        unit = next(iter(session.model.comm_units.values()))
        ack = next(name for name in unit.ports if name.endswith("_GETACK"))
        session.add_fault_plan(FaultPlan("mask_ack", [
            FaultEvent(at, "force", unit.name, ack, 0),
            FaultEvent(at + duration, "release", unit.name, ack),
        ]))
        result = run_session_to_completion(session, expectations,
                                          max_time=FAULT_MAX_TIME)
        assert check_functional_outcome(session, result, expectations,
                                        max_time=FAULT_MAX_TIME) == []


# One scripted interleaving step of the shared-register property:
# an ordinary driver write, a force, or a release.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(min_value=0, max_value=7)),
        st.tuples(st.just("force"), st.integers(min_value=0, max_value=7)),
        st.tuples(st.just("release"), st.just(0)),
    ),
    min_size=1, max_size=24,
)


class TestSharedRegisterLastWriteWins:
    @given(ops=_ops)
    @settings(max_examples=50, deadline=None)
    def test_reads_are_last_write_wins_under_force_release(self, ops):
        """The signal layer the shared register rides on keeps the contract.

        While forced, reads pin to the forced value and driver writes are
        shadowed; a release restores the *latest* suppressed write (or
        the pre-force value when none arrived) — exactly the
        last-write-wins semantics an unforced register has.
        """
        signal = Signal("REG", init=0)
        driven = 0     # what the drivers last wrote
        forced = None  # the pinned value while a force window is open
        for step, (op, value) in enumerate(ops):
            if op == "write":
                signal.stage(value)
                driven = value
            elif op == "force":
                signal.stage(ForceValue(value))
                forced = value
            else:
                signal.stage(ReleaseValue())
                forced = None
            signal.apply_pending(now=step)
            expected = forced if forced is not None else driven
            assert signal.read() == expected
            assert signal.forced is (forced is not None)

    @given(at=st.integers(min_value=100, max_value=3_000),
           duration=st.integers(min_value=100, max_value=3_000))
    @settings(max_examples=8, deadline=None)
    def test_release_restores_the_driven_value_in_a_live_system(
            self, at, duration):
        """Integration shape of the same property, on a generated system.

        The producer of a ``shared/pair`` system keeps writing on its own
        schedule regardless of the fault, so after the release window the
        register must track the driven sequence again: the final register
        value equals the unfaulted run's, and the force is gone.
        """
        system = generate_system(11)  # shared/pair/HS — single shared_reg
        baseline = CosimSession(system.build_model(), **system.cosim_params)
        run_session_to_completion(baseline, system.expectations,
                                  max_time=FAULT_MAX_TIME)
        unit = next(iter(baseline.model.comm_units.values()))
        reg = next(name for name in unit.ports if name.endswith("_REG"))
        final = baseline.unit_signal(unit.name, reg).read()

        faulted = CosimSession(system.build_model(), **system.cosim_params)
        faulted.add_fault_plan(FaultPlan("pin_reg", [
            FaultEvent(at, "force", unit.name, reg, 999),
            FaultEvent(at + duration, "release", unit.name, reg),
        ]))
        run_session_to_completion(faulted, system.expectations,
                                  max_time=FAULT_MAX_TIME)
        forced_signal = faulted.unit_signal(unit.name, reg)
        assert not forced_signal.forced
        assert forced_signal.read() == final
