"""Seeded determinism of the co-simulation flow.

Two runs of the same model with the same seed must produce byte-identical
waveform dumps and service-call traces — in the same interpreter process
*and across* interpreter processes (hash randomization must not leak into
scheduling order; pinned regression for the sensitivity-index ordering
fix).
"""

import os
import subprocess
import sys

import pytest

from repro.testkit import generate_system
from repro.testkit.oracles import cosim_fingerprint, run_cosim


def _run_fresh(system, kernel="production"):
    return run_cosim(system, kernel)


class TestInProcessDeterminism:
    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_same_seed_same_bytes(self, seed):
        system = generate_system(seed)
        first = cosim_fingerprint(*_run_fresh(system))
        second = cosim_fingerprint(*_run_fresh(system))
        assert first["waveform_dump"] == second["waveform_dump"]
        assert first["trace_table"] == second["trace_table"]
        assert first == second

    def test_motor_controller_runs_are_byte_identical(self):
        from repro.apps.motor_controller import MotorControllerConfig, build_session

        def run_once():
            config = MotorControllerConfig(final_position=24, segment=8,
                                           speed_limit=6)
            session = build_session(config)
            result = session.run_until_software_done(max_time=10_000_000)
            return result.waveform.dump(), result.trace.as_table()

        assert run_once() == run_once()


_CROSS_PROCESS_SCRIPT = """
import hashlib
from repro.testkit import generate_system
from repro.testkit.oracles import run_cosim

session, result = run_cosim(generate_system({seed}), "production")
payload = (result.waveform.dump() + result.trace.as_table()).encode()
print(hashlib.sha256(payload).hexdigest())
"""


class TestCrossProcessDeterminism:
    def test_waveform_and_trace_independent_of_hash_seed(self):
        # Regression: the kernel's sensitivity index was a set of process
        # names, so same-delta run order — and with it waveforms and
        # traces — varied with PYTHONHASHSEED.  Fixed by keying the index
        # on a registration-ordered dict; this pin runs the same seeded
        # co-simulation under three different hash seeds.
        digests = set()
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = (
                "src" + os.pathsep + env["PYTHONPATH"]
                if env.get("PYTHONPATH") else "src"
            )
            completed = subprocess.run(
                [sys.executable, "-c", _CROSS_PROCESS_SCRIPT.format(seed=5)],
                capture_output=True, text=True, timeout=120,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                env=env,
            )
            assert completed.returncode == 0, completed.stderr[-2000:]
            digests.add(completed.stdout.strip())
        assert len(digests) == 1, (
            f"co-simulation outcome varies with PYTHONHASHSEED: {digests}"
        )


class TestKernelChoiceEquivalence:
    @pytest.mark.parametrize("seed", [2, 6])
    def test_reference_kernel_reproduces_production_bytes(self, seed):
        system = generate_system(seed)
        production = cosim_fingerprint(*_run_fresh(system, "production"))
        reference = cosim_fingerprint(*_run_fresh(system, "reference"))
        assert production == reference
