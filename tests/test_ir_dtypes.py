"""Unit tests of the IR data types."""

import pytest

from repro.ir.dtypes import (
    BIT,
    BOOL,
    INT,
    BitType,
    BitVectorType,
    BoolType,
    EnumType,
    IntType,
    word_type,
)
from repro.utils.errors import ModelError


class TestBitType:
    def test_accepts_bits_and_booleans(self):
        assert BIT.check(0) == 0
        assert BIT.check(1) == 1
        assert BIT.check(True) == 1

    def test_rejects_other_values(self):
        with pytest.raises(ModelError):
            BIT.check(2)
        with pytest.raises(ModelError):
            BIT.check("1")

    def test_language_names_and_width(self):
        assert BIT.c_name() == "int"
        assert BIT.vhdl_name() == "std_logic"
        assert BIT.bit_width() == 1

    def test_equality_of_instances(self):
        assert BitType() == BitType()
        assert BitType() != BoolType()


class TestIntType:
    def test_default_range_is_16_bit_signed(self):
        assert INT.check(-32768) == -32768
        assert INT.check(32767) == 32767

    def test_out_of_range_rejected(self):
        with pytest.raises(ModelError):
            INT.check(40_000)
        with pytest.raises(ModelError):
            IntType(0, 10).check(-1)

    def test_bool_is_not_an_integer_value(self):
        with pytest.raises(ModelError):
            INT.check(True)

    def test_empty_range_rejected(self):
        with pytest.raises(ModelError):
            IntType(5, 4)

    def test_bit_width_grows_with_range(self):
        assert IntType(0, 1).bit_width() == 1
        assert IntType(0, 255).bit_width() == 8
        assert IntType(0, 256).bit_width() == 9
        assert IntType(-128, 127).bit_width() == 8

    def test_c_name_depends_on_signedness(self):
        assert IntType(0, 100).c_name() == "unsigned int"
        assert IntType(-100, 100).c_name() == "int"

    def test_vhdl_name_carries_the_range(self):
        assert IntType(0, 7).vhdl_name() == "integer range 0 to 7"

    def test_word_type_helper(self):
        word = word_type(16)
        assert word.check(65535) == 65535
        with pytest.raises(ModelError):
            word.check(65536)


class TestBitVectorType:
    def test_range_check(self):
        vec = BitVectorType(4)
        assert vec.check(15) == 15
        with pytest.raises(ModelError):
            vec.check(16)
        with pytest.raises(ModelError):
            vec.check(-1)

    def test_width_must_be_positive(self):
        with pytest.raises(ModelError):
            BitVectorType(0)

    def test_vhdl_name(self):
        assert BitVectorType(8).vhdl_name() == "std_logic_vector(7 downto 0)"


class TestEnumType:
    def test_literals_and_default(self):
        states = EnumType("statetable", ["INIT", "RUN", "IDLE"])
        assert states.default == "INIT"
        assert states.check("RUN") == "RUN"
        assert states.index_of("IDLE") == 2

    def test_unknown_literal_rejected(self):
        states = EnumType("statetable", ["A", "B"])
        with pytest.raises(ModelError):
            states.check("C")

    def test_duplicate_literus_rejected(self):
        with pytest.raises(ModelError):
            EnumType("bad", ["A", "A"])

    def test_empty_enum_rejected(self):
        with pytest.raises(ModelError):
            EnumType("empty", [])

    def test_bit_width_is_ceil_log2(self):
        assert EnumType("two", ["A", "B"]).bit_width() == 1
        assert EnumType("five", ["A", "B", "C", "D", "E"]).bit_width() == 3


class TestBoolType:
    def test_check_coerces_to_bool(self):
        assert BOOL.check(1) is True
        assert BOOL.check(0) is False

    def test_names(self):
        assert BOOL.vhdl_name() == "boolean"
        assert BOOL.bit_width() == 1
