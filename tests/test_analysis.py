"""Unit tests of the analysis layer (metrics, timing, back-annotation)."""

import pytest

from repro.analysis import (
    check_pulse_timing,
    check_response_latency,
    interface_traffic,
    service_latency_stats,
)
from repro.analysis.metrics import LatencyStats, latency_table
from repro.cosim.tracing import ServiceCallTrace
from repro.desim import Simulator, Timeout, WaveformRecorder


def _trace_with_calls():
    trace = ServiceCallTrace()
    samples = [
        ("SW", "Put", "UnitA", 0, 300),
        ("SW", "Put", "UnitA", 1000, 1200),
        ("HW", "Get", "UnitA", 100, 900),
        ("HW", "Sample", "UnitB", 50, 60),
    ]
    for caller, service, unit, start, end in samples:
        trace.begin(caller, service, unit, start)
        trace.complete(caller, service, end)
    return trace


class TestLatencyStats:
    def test_per_service_statistics(self):
        stats = service_latency_stats(_trace_with_calls())
        assert stats["Put"].count == 2
        assert stats["Put"].minimum == 200
        assert stats["Put"].maximum == 300
        assert stats["Put"].mean == pytest.approx(250)
        assert stats["Sample"].mean == pytest.approx(10)

    def test_empty_stats(self):
        stats = LatencyStats("Nothing", [])
        assert stats.count == 0
        assert stats.mean is None and stats.minimum is None

    def test_latency_table_render(self):
        table = latency_table(service_latency_stats(_trace_with_calls()))
        assert "Put" in table and "mean (ns)" in table

    def test_interface_traffic_filters_by_unit(self):
        traffic = interface_traffic(_trace_with_calls(), unit_name="UnitA")
        assert traffic[("SW", "Put")] == 2
        assert traffic[("HW", "Get")] == 1
        assert ("HW", "Sample") not in traffic


class TestPulseTiming:
    def _waveform_with_pulses(self, times):
        sim = Simulator()
        pulse = sim.add_signal("pulse", init=0)
        recorder = sim.add_recorder(WaveformRecorder())

        def stim():
            previous = 0
            for at in times:
                yield Timeout(at - previous)
                sim.schedule(pulse, 1)
                yield Timeout(5)
                sim.schedule(pulse, 0)
                previous = at + 5
        sim.add_process("stim", stim)
        sim.run()
        return recorder

    def test_pulse_report_ok(self):
        recorder = self._waveform_with_pulses([100, 300, 500])
        report = check_pulse_timing(recorder, "pulse", min_period_ns=150)
        assert report.pulse_count == 3
        assert report.observed_min_period == 200
        assert report.ok
        assert "pulse timing of pulse" in report.report()

    def test_pulse_report_violation(self):
        recorder = self._waveform_with_pulses([100, 180, 600])
        report = check_pulse_timing(recorder, "pulse", min_period_ns=150,
                                    max_period_ns=300)
        assert not report.ok
        assert len(report.violations) == 2  # one too fast, one too slow

    def test_no_pulses(self):
        recorder = self._waveform_with_pulses([])
        report = check_pulse_timing(recorder, "pulse", min_period_ns=100)
        assert report.pulse_count == 0
        assert report.ok


class TestResponseLatency:
    def test_latency_from_first_stimulus(self):
        report = check_response_latency([100, 500], [50, 250, 700], max_latency_ns=200)
        assert report.latency == 150
        assert report.ok

    def test_latency_violation(self):
        report = check_response_latency([100], [900], max_latency_ns=200)
        assert report.latency == 800
        assert not report.ok

    def test_no_response_found(self):
        report = check_response_latency([100], [50])
        assert report.latency is None
        assert not report.ok

    def test_no_stimulus(self):
        report = check_response_latency([], [100])
        assert report.latency is None


class TestStaticBoundaryTraffic:
    def test_counts_port_touches_per_software_service_call(self):
        from repro.analysis import static_boundary_traffic
        from tests.conftest import make_producer_consumer_model

        model = make_producer_consumer_model()
        traffic = static_boundary_traffic(model)
        # Only HostMod is software; its PUT view touches the handshake ports.
        assert set(traffic) == {("HostMod", "HostPut")}
        assert traffic[("HostMod", "HostPut")] >= 1

    def test_software_names_override_follows_a_candidate_placement(self):
        from repro.analysis import static_boundary_traffic
        from tests.conftest import make_producer_consumer_model

        model = make_producer_consumer_model()
        all_hw = static_boundary_traffic(model, software_names=[])
        assert all_hw == {}
        flipped = static_boundary_traffic(model, software_names=["ServerMod"])
        assert set(flipped) == {("ServerMod", "ServerGet")}
