"""Unit tests of the VHDL back end (HW views, processes, entities)."""

import pytest

from repro.hdl.emitter import (
    EmitContext,
    emit_architecture,
    emit_entity,
    emit_expr,
    emit_module,
    emit_process,
    emit_service_procedure,
    emit_stmt,
)
from repro.ir import Assign, FsmBuilder, If, INT, PortWrite, port, var
from repro.ir.expr import BinOp, UnOp
from repro.utils.errors import SynthesisError

from tests.conftest import make_put_like_service, make_server_module


class TestExpressionEmission:
    def test_operator_spelling(self):
        assert emit_expr(var("a") + 1) == "(a + 1)"
        assert emit_expr(var("a").ne(2)) == "(a /= 2)"
        assert emit_expr(var("a").and_(var("b"))) == "(a and b)"
        assert emit_expr(UnOp("not", var("a"))) == "(not a)"
        assert emit_expr(UnOp("abs", var("a"))) == "(abs a)"

    def test_bit_ports_get_quoted_literals(self):
        context = EmitContext(bit_ports={"B_FULL"})
        assert emit_expr(port("B_FULL").eq(1), context) == "(B_FULL = '1')"
        assert emit_expr(port("OTHER").eq(1), context) == "(OTHER = 1)"

    def test_statement_emission(self):
        context = EmitContext(bit_ports={"FLAG"})
        assert emit_stmt(Assign("x", var("x") + 1), context) == ["  x := (x + 1);"]
        assert emit_stmt(PortWrite("FLAG", 1), context) == ["  FLAG <= '1';"]
        assert emit_stmt(PortWrite("DATA", var("x")), context) == ["  DATA <= x;"]
        lines = emit_stmt(If(var("x").eq(1), [Assign("y", 1)]), context)
        assert lines[0] == "  if (x = 1) then"
        assert lines[-1] == "  end if;"

    def test_variable_names_use_variable_assignment(self):
        context = EmitContext(variable_names={"NEXT_STATE"})
        assert emit_stmt(PortWrite("NEXT_STATE", 1), context) == ["  NEXT_STATE := 1;"]


class TestServiceProcedure:
    def test_hw_view_shape(self, put_service):
        context = EmitContext(bit_ports={"B_FULL", "PUTRDY"})
        text = emit_service_procedure(put_service, context)
        assert text.startswith("-- PUT: hardware view")
        assert "procedure PUT(REQUEST : in integer range 0 to 65535; DONE : out std_logic) is" in text
        assert "case PUT_NEXT_STATE is" in text
        assert "when PUT_INIT =>" in text
        assert "DONE := '1';" in text and "DONE := '0';" in text
        assert "end procedure PUT;" in text

    def test_get_like_service_has_result_parameter(self):
        from repro.comm import make_get_service
        service = make_get_service("GET", "HS_")
        text = emit_service_procedure(service)
        assert "VALUE : out integer range 0 to 65535" in text

    def test_transitions_become_if_elsif_chain(self, put_service):
        text = emit_service_procedure(put_service,
                                      EmitContext(bit_ports={"B_FULL", "PUTRDY"}))
        init_block = text.split("when PUT_INIT =>")[1].split("when PUT_WAIT_B_FULL")[0]
        assert "if (B_FULL = '1') then" in init_block
        assert "else" in init_block
        assert init_block.count("end if;") == 1

    def test_nested_service_call_rejected(self):
        from repro.core.service import Service
        build = FsmBuilder("NESTED")
        with build.state("A") as state:
            state.call("Inner", then="B")
        with build.state("B", done=True) as state:
            state.stay()
        service = Service("NESTED", build.build(initial="A"))
        with pytest.raises(SynthesisError):
            emit_service_procedure(service)


class TestProcessAndModule:
    def test_clocked_process_shape(self):
        build = FsmBuilder("COUNTER")
        build.variable("COUNT", INT, 0)
        with build.state("Run") as state:
            state.do(Assign("COUNT", var("COUNT") + 1))
            state.stay()
        text = emit_process(build.build(initial="Run"))
        assert "COUNTER_proc : process(clk, rst)" in text
        assert "elsif rising_edge(clk) then" in text
        assert "case COUNTER_STATE is" in text
        assert "variable COUNT : integer range -32768 to 32767 := 0;" in text

    def test_process_with_service_call_uses_done_flag(self):
        server = make_server_module()
        text = emit_process(server.process("SERVER"))
        assert "ServerGet(RX, CALL_DONE);" in text
        assert "if CALL_DONE = '1' then" in text

    def test_entity_emission(self, put_service):
        from repro.core.port import Port, PortDirection
        from repro.ir.dtypes import BIT
        ports = [Port("MOT_PULSE", PortDirection.OUT, BIT)]
        text = emit_entity("SpeedControl", ports)
        assert "entity SpeedControl is" in text
        assert "MOT_PULSE : out std_logic" in text
        assert "end entity SpeedControl;" in text

    def test_emit_module_combines_entity_architecture_and_services(self):
        from repro.comm import make_get_service
        server = make_server_module()
        service = make_get_service("ServerGet", "HS_")
        text = emit_module(server, services=[service])
        assert "entity ServerMod is" in text
        assert "architecture behaviour of ServerMod is" in text
        assert "procedure ServerGet" in text
        assert "SERVER_proc : process(clk, rst)" in text

    def test_architecture_declares_internal_signals(self):
        from repro.apps.motor_controller import MotorControllerConfig, build_speed_control
        module = build_speed_control(MotorControllerConfig())
        text = emit_architecture(module)
        assert "signal PULSECMD : std_logic;" in text
        assert "signal TARGETSIG : integer range 0 to 65535;" in text
