"""Unit tests of IR interpretation (expressions, statements, FSM instances)."""

import pytest

from repro.ir import (
    Assign,
    FsmBuilder,
    FsmInstance,
    If,
    INT,
    PortWrite,
    evaluate,
    execute,
    port,
    var,
)
from repro.ir.expr import BinOp, UnOp
from repro.ir.interp import DictPortAccessor, NullPortAccessor
from repro.utils.errors import SimulationError


class TestEvaluate:
    def test_arithmetic(self):
        env = {"a": 7, "b": 3}
        assert evaluate(var("a") + var("b"), env) == 10
        assert evaluate(var("a") - var("b"), env) == 4
        assert evaluate(var("a") * var("b"), env) == 21
        assert evaluate(BinOp("div", var("a"), var("b")), env) == 2
        assert evaluate(BinOp("mod", var("a"), var("b")), env) == 1

    def test_division_truncates_toward_zero(self):
        assert evaluate(BinOp("div", -7, 2), {}) == -3
        assert evaluate(BinOp("mod", -7, 2), {}) == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(SimulationError):
            evaluate(BinOp("div", 1, 0), {})
        with pytest.raises(SimulationError):
            evaluate(BinOp("mod", 1, 0), {})

    def test_comparisons_return_ints(self):
        env = {"a": 5}
        assert evaluate(var("a").eq(5), env) == 1
        assert evaluate(var("a").ne(5), env) == 0
        assert evaluate(var("a").lt(6), env) == 1
        assert evaluate(var("a").ge(6), env) == 0

    def test_logic_and_unary(self):
        env = {"a": 0, "b": 2}
        assert evaluate(var("a").and_(var("b")), env) == 0
        assert evaluate(var("a").or_(var("b")), env) == 1
        assert evaluate(BinOp("xor", 1, 1), {}) == 0
        assert evaluate(UnOp("not", var("a")), env) == 1
        assert evaluate(UnOp("neg", var("b")), env) == -2
        assert evaluate(UnOp("abs", -9), {}) == 9

    def test_min_max(self):
        assert evaluate(BinOp("min", 3, 8), {}) == 3
        assert evaluate(BinOp("max", 3, 8), {}) == 8

    def test_string_equality_for_enum_values(self):
        assert evaluate(var("state").eq("INIT"), {"state": "INIT"}) == 1

    def test_undefined_variable_raises(self):
        with pytest.raises(SimulationError):
            evaluate(var("missing"), {})

    def test_port_read_uses_accessor(self):
        ports = DictPortAccessor({"DATA": 12})
        assert evaluate(port("DATA") + 1, {}, ports) == 13

    def test_port_read_without_accessor_raises(self):
        with pytest.raises(SimulationError):
            evaluate(port("DATA"), {}, NullPortAccessor())


class TestExecute:
    def test_assign_and_portwrite(self):
        env = {"x": 1}
        ports = DictPortAccessor()
        execute(Assign("x", var("x") + 4), env, ports)
        execute(PortWrite("OUTP", var("x") * 2), env, ports)
        assert env["x"] == 5
        assert ports.values["OUTP"] == 10
        assert ports.writes == [("OUTP", 10)]

    def test_if_executes_correct_branch(self):
        env = {"x": 1, "y": 0}
        execute(If(var("x").eq(1), [Assign("y", 10)], [Assign("y", 20)]), env)
        assert env["y"] == 10
        execute(If(var("x").eq(2), [Assign("y", 10)], [Assign("y", 20)]), env)
        assert env["y"] == 20


def counter_fsm(limit=3):
    build = FsmBuilder("COUNTER")
    build.variable("COUNT", INT, 0)
    with build.state("Run") as state:
        state.do(Assign("COUNT", var("COUNT") + 1))
        state.go("Stop", when=var("COUNT").ge(limit))
        state.stay()
    with build.state("Stop", done=True) as state:
        state.stay()
    return build.build(initial="Run")


class TestFsmInstance:
    def test_one_transition_per_step(self):
        instance = FsmInstance(counter_fsm(3))
        results = [instance.step() for _ in range(4)]
        assert [r.to_state for r in results] == ["Run", "Run", "Stop", "Stop"]
        assert results[2].done
        # COUNT is incremented once per step spent in Run, never in Stop.
        assert instance.env["COUNT"] == 3

    def test_run_to_done(self):
        instance = FsmInstance(counter_fsm(5))
        result = instance.run_to_done()
        assert result.done
        assert instance.steps == 5

    def test_run_to_done_raises_when_never_finishing(self):
        build = FsmBuilder("LOOP")
        with build.state("Spin") as state:
            state.stay()
        fsm = build.build(initial="Spin")
        instance = FsmInstance(fsm)
        with pytest.raises(SimulationError):
            instance.run_to_done(max_steps=10)

    def test_reset_restores_variables_and_state(self):
        instance = FsmInstance(counter_fsm(2))
        instance.run_to_done()
        instance.reset()
        assert instance.current == "Run"
        assert instance.env["COUNT"] == 0
        assert instance.steps == 0

    def test_reset_on_done_returns_to_initial(self):
        build = FsmBuilder("PULSE")
        with build.state("Fire") as state:
            state.go("Done")
        with build.state("Done", done=True) as state:
            state.go("Fire")
        fsm = build.build(initial="Fire")
        instance = FsmInstance(fsm, reset_on_done=True)
        result = instance.step()
        assert result.done
        assert instance.current == "Fire"

    def test_result_var_returned_on_done(self):
        build = FsmBuilder("GETTER")
        build.variable("VALUE", INT, 0)
        build.returns("VALUE")
        with build.state("Fetch") as state:
            state.go("Done", actions=[Assign("VALUE", 42)])
        with build.state("Done", done=True) as state:
            state.go("Fetch")
        instance = FsmInstance(build.build(initial="Fetch"))
        result = instance.step()
        assert result.done and result.result == 42

    def test_args_update_environment_each_step(self):
        build = FsmBuilder("ECHO")
        build.variable("INP", INT, 0)
        build.variable("OUTV", INT, 0)
        with build.state("Copy") as state:
            state.stay(actions=[Assign("OUTV", var("INP"))])
        instance = FsmInstance(build.build(initial="Copy"))
        instance.step({"INP": 9})
        assert instance.env["OUTV"] == 9
        instance.step({"INP": 11})
        assert instance.env["OUTV"] == 11

    def test_call_without_handler_raises(self):
        build = FsmBuilder("CALLER")
        with build.state("A") as state:
            state.call("Missing", then="A")
        instance = FsmInstance(build.build(initial="A"))
        with pytest.raises(SimulationError):
            instance.step()

    def test_call_handler_controls_transition(self):
        build = FsmBuilder("CALLER")
        build.variable("RESULT", INT, 0)
        with build.state("Calling") as state:
            state.call("Fetch", store="RESULT", then="Got")
        with build.state("Got", done=True) as state:
            state.stay()
        calls = []

        def handler(call, args):
            calls.append(call.service)
            return (len(calls) >= 3, 77)

        instance = FsmInstance(build.build(initial="Calling"), call_handler=handler)
        assert not instance.step().fired
        assert not instance.step().fired
        result = instance.step()
        assert result.fired and result.done
        assert instance.env["RESULT"] == 77

    def test_trace_records_history(self):
        instance = FsmInstance(counter_fsm(2), trace=True)
        instance.run_to_done()
        assert len(instance.history) == instance.steps
        assert instance.history[-1].done

    def test_first_matching_transition_wins(self):
        build = FsmBuilder("PRIORITY")
        build.variable("X", INT, 5)
        with build.state("Decide") as state:
            state.go("High", when=var("X").ge(3))
            state.go("Low", when=var("X").ge(0))
        with build.state("High", done=True) as state:
            state.stay()
        with build.state("Low", done=True) as state:
            state.stay()
        instance = FsmInstance(build.build(initial="Decide"))
        assert instance.step().to_state == "High"
