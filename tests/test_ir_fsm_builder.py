"""Unit tests of FSM construction (direct classes and the fluent builder)."""

import pytest

from repro.ir import (
    Assign,
    Fsm,
    FsmBuilder,
    INT,
    PortWrite,
    ServiceCall,
    State,
    Transition,
    VarDecl,
    var,
)
from repro.utils.errors import ModelError


def small_fsm():
    build = FsmBuilder("SMALL")
    build.variable("COUNT", INT, 0)
    with build.state("Run") as state:
        state.do(Assign("COUNT", var("COUNT") + 1))
        state.go("Stop", when=var("COUNT").ge(3))
        state.stay()
    with build.state("Stop", done=True) as state:
        state.stay()
    return build.build(initial="Run")


class TestFsmClasses:
    def test_duplicate_state_names_rejected(self):
        with pytest.raises(ModelError):
            Fsm("F", [State("A"), State("A")], initial="A")

    def test_initial_state_must_exist(self):
        with pytest.raises(ModelError):
            Fsm("F", [State("A")], initial="B")

    def test_done_state_must_exist(self):
        with pytest.raises(ModelError):
            Fsm("F", [State("A")], initial="A", done_states=["Z"])

    def test_duplicate_variable_rejected(self):
        with pytest.raises(ModelError):
            Fsm("F", [State("A")], initial="A",
                variables=[VarDecl("x", INT), VarDecl("x", INT)])

    def test_result_var_must_be_declared(self):
        with pytest.raises(ModelError):
            Fsm("F", [State("A")], initial="A", result_var="missing")

    def test_vardecl_checks_init_against_type(self):
        with pytest.raises(ModelError):
            VarDecl("x", INT, 1_000_000)
        decl = VarDecl("x", INT)
        assert decl.init == 0

    def test_transition_requires_valid_target_name(self):
        with pytest.raises(ModelError):
            Transition("bad name")

    def test_service_call_validates_store(self):
        call = ServiceCall("DoIt", args=[1, var("x")], store="RESULT")
        assert call.store == "RESULT"
        assert len(call.args) == 2
        with pytest.raises(ModelError):
            ServiceCall("DoIt", store="bad name")

    def test_state_rejects_non_transition(self):
        with pytest.raises(ModelError):
            State("A", transitions=["not a transition"])

    def test_state_rejects_non_statement_action(self):
        with pytest.raises(ModelError):
            State("A", actions=["x = 1"])


class TestFsmQueries:
    def test_iter_states_preserves_order(self):
        fsm = small_fsm()
        assert [state.name for state in fsm.iter_states()] == ["Run", "Stop"]

    def test_state_lookup(self):
        fsm = small_fsm()
        assert fsm.state("Run").name == "Run"
        with pytest.raises(ModelError):
            fsm.state("Missing")

    def test_service_calls_lists_distinct_names(self):
        build = FsmBuilder("CALLER")
        build.variable("X", INT, 0)
        with build.state("A") as state:
            state.call("First", then="B")
        with build.state("B") as state:
            state.call("Second", store="X", then="A")
        fsm = build.build(initial="A")
        assert fsm.service_calls() == ["First", "Second"]

    def test_read_and_written_ports(self):
        from repro.ir import port
        build = FsmBuilder("IO")
        with build.state("A") as state:
            state.do(PortWrite("OUTP", 1))
            state.go("A", when=port("INP").eq(1))
        fsm = build.build(initial="A")
        assert fsm.written_ports() == ["OUTP"]
        assert fsm.read_ports() == ["INP"]


class TestBuilder:
    def test_duplicate_state_in_builder_rejected(self):
        build = FsmBuilder("F")
        with build.state("A") as state:
            state.stay()
        with pytest.raises(ModelError):
            with build.state("A"):
                pass

    def test_builder_records_done_states_and_result(self):
        build = FsmBuilder("SVC")
        build.variable("VALUE", INT, 0)
        build.returns("VALUE")
        with build.state("Work") as state:
            state.go("Done")
        with build.state("Done", done=True) as state:
            state.go("Work")
        fsm = build.build(initial="Work")
        assert fsm.done_states == frozenset({"Done"})
        assert fsm.result_var == "VALUE"

    def test_call_requires_target(self):
        build = FsmBuilder("F")
        with pytest.raises(ModelError):
            with build.state("A") as state:
                state.call("Service")

    def test_variable_requires_datatype(self):
        build = FsmBuilder("F")
        with pytest.raises(ModelError):
            build.variable("x", int)

    def test_ports_are_deduplicated(self):
        build = FsmBuilder("F")
        build.ports("A", "B", "A")
        with build.state("S") as state:
            state.stay()
        fsm = build.build(initial="S")
        assert fsm.ports == ("A", "B")

    def test_add_state_non_context_variant(self):
        build = FsmBuilder("F")
        build.add_state("Only", done=True)
        fsm = build.build(initial="Only")
        assert fsm.done_states == frozenset({"Only"})
