"""Unit tests of IR transformations, checks and the pretty printer."""

from repro.ir import (
    Assign,
    FsmBuilder,
    If,
    INT,
    PortWrite,
    check_fsm,
    constant_fold,
    format_expr,
    format_fsm,
    format_stmt,
    port,
    reachable_states,
    remove_unreachable_states,
    var,
)
from repro.ir.expr import BinOp, Const, UnOp
from repro.ir.transform import fold_fsm, fold_statement
from repro.ir.visitor import variables_read, variables_written


class TestConstantFold:
    def test_folds_pure_constant_trees(self):
        expr = BinOp("add", BinOp("mul", 3, 4), 5)
        folded = constant_fold(expr)
        assert isinstance(folded, Const) and folded.value == 17

    def test_keeps_variables_unfolded(self):
        expr = BinOp("add", var("x"), BinOp("sub", 10, 4))
        folded = constant_fold(expr)
        assert isinstance(folded, BinOp)
        assert isinstance(folded.right, Const) and folded.right.value == 6

    def test_folds_unary(self):
        assert constant_fold(UnOp("neg", Const(5))).value == -5
        assert constant_fold(UnOp("abs", Const(-5))).value == 5

    def test_division_by_zero_left_for_runtime(self):
        expr = BinOp("div", 1, 0)
        folded = constant_fold(expr)
        assert isinstance(folded, BinOp)

    def test_string_equality_folds(self):
        folded = constant_fold(BinOp("eq", Const("A"), Const("A")))
        assert isinstance(folded, Const) and folded.value == 1

    def test_fold_statement_simplifies_constant_if(self):
        stmt = If(Const(1), [Assign("x", 1)], [Assign("x", 2)])
        folded = fold_statement(stmt)
        assert isinstance(folded, Assign) and folded.target == "x"

    def test_fold_fsm_preserves_structure(self):
        build = FsmBuilder("F")
        build.variable("x", INT, 0)
        with build.state("A") as state:
            state.do(Assign("x", BinOp("add", 2, 3)))
            state.go("A")
        fsm = build.build(initial="A")
        folded = fold_fsm(fsm)
        action = folded.state("A").actions[0]
        assert isinstance(action.expr, Const) and action.expr.value == 5
        assert folded.name == fsm.name and folded.initial == fsm.initial


class TestReachability:
    def _fsm_with_orphan(self):
        build = FsmBuilder("F")
        with build.state("A") as state:
            state.go("B")
        with build.state("B", done=True) as state:
            state.stay()
        with build.state("Orphan") as state:
            state.stay()
        return build.build(initial="A")

    def test_reachable_states(self):
        fsm = self._fsm_with_orphan()
        assert reachable_states(fsm) == {"A", "B"}

    def test_remove_unreachable_states(self):
        fsm = self._fsm_with_orphan()
        trimmed = remove_unreachable_states(fsm)
        assert set(trimmed.states) == {"A", "B"}
        assert "Orphan" not in trimmed.states

    def test_check_fsm_reports_orphans_and_traps(self):
        fsm = self._fsm_with_orphan()
        problems = check_fsm(fsm)
        assert any("unreachable" in p for p in problems)

    def test_check_fsm_reports_unknown_target(self):
        build = FsmBuilder("F")
        with build.state("A") as state:
            state.go("Missing")
        fsm = build.build(initial="A")
        assert any("unknown state" in p for p in check_fsm(fsm))

    def test_check_fsm_reports_undeclared_variables(self):
        build = FsmBuilder("F")
        with build.state("A") as state:
            state.do(Assign("x", var("y") + 1))
            state.stay()
        fsm = build.build(initial="A")
        problems = check_fsm(fsm)
        assert any("'y' is read" in p for p in problems)
        assert any("'x' is written" in p for p in problems)

    def test_check_fsm_accepts_clean_fsm(self):
        build = FsmBuilder("F")
        build.variable("x", INT, 0)
        with build.state("A") as state:
            state.do(Assign("x", var("x") + 1))
            state.go("B", when=var("x").ge(2))
            state.stay()
        with build.state("B", done=True) as state:
            state.stay()
        assert check_fsm(build.build(initial="A")) == []

    def test_check_fsm_reports_trap_state(self):
        build = FsmBuilder("F")
        with build.state("A") as state:
            state.go("Dead")
        build.add_state("Dead")
        fsm = build.build(initial="A")
        assert any("trap" in p for p in check_fsm(fsm))


class TestVisitors:
    def test_variables_read_and_written(self):
        build = FsmBuilder("F")
        build.variable("a", INT, 0)
        build.variable("b", INT, 0)
        with build.state("S") as state:
            state.do(Assign("a", var("b") + 1), PortWrite("P", var("a")))
            state.call("Svc", args=[var("a")], store="b", then="S")
        fsm = build.build(initial="S")
        assert variables_read(fsm) == ["a", "b"]
        assert variables_written(fsm) == ["a", "b"]


class TestPrinter:
    def test_format_expr_infix(self):
        text = format_expr((var("a") + 1).eq(port("P")))
        assert text == "((a + 1) = P)"

    def test_format_stmt_if(self):
        text = format_stmt(If(var("a").eq(1), [Assign("b", 2)], [Assign("b", 3)]))
        assert "if (a = 1) then" in text
        assert "else" in text
        assert "end if;" in text

    def test_format_fsm_contains_states_and_variables(self):
        build = FsmBuilder("DEMO")
        build.variable("x", INT, 4)
        with build.state("First") as state:
            state.do(PortWrite("OUTP", var("x")))
            state.go("Second", when=var("x").ge(1))
        with build.state("Second", done=True) as state:
            state.stay()
        text = format_fsm(build.build(initial="First"))
        assert "fsm DEMO" in text
        assert "state First" in text
        assert "state Second [done]" in text
        assert "OUTP <= x;" in text
        assert "when (x >= 1) => goto Second" in text
