"""The batched scenario-sweep service.

Pins the acceptance contract of ``repro.sweep``:

* a ≥100-job testkit batch on a worker pool produces a report
  **byte-identical** to the serial run,
* a warm-cache re-run of co-synthesis jobs performs **zero** HLS
  re-synthesis (counted at the synthesis entry points, not inferred),
* failures degrade to deterministic error records, never aborted batches.
"""

import json

import pytest

import repro.cosyn.flow as cosyn_flow
from repro.sweep import (
    ArtifactCache,
    CosimJob,
    CosynJob,
    KernelJob,
    SweepService,
    job_from_dict,
    jobs_from_dse_report,
)
from repro.sweep.__main__ import (
    DEFAULT_COSIM_JOBS,
    DEFAULT_COSYN_JOBS,
    DEFAULT_KERNEL_TIER,
    main,
)


def default_cli_batch():
    """The job list ``python -m repro.sweep`` runs by default."""
    jobs = [KernelJob(size, seed)
            for size, count in DEFAULT_KERNEL_TIER for seed in range(count)]
    jobs.extend(CosimJob(seed) for seed in range(DEFAULT_COSIM_JOBS))
    jobs.extend(CosynJob(seed) for seed in range(DEFAULT_COSYN_JOBS))
    return jobs


class TestSerialParallelParity:
    def test_default_batch_is_byte_identical_across_worker_counts(self, tmp_path):
        jobs = default_cli_batch()
        assert len(jobs) >= 100, "the acceptance batch must stay >= 100 jobs"
        serial = SweepService(jobs, workers=1,
                              cache=ArtifactCache(tmp_path / "serial")).run()
        parallel = SweepService(jobs, workers=4,
                                cache=ArtifactCache(tmp_path / "parallel")).run()
        assert serial.to_json() == parallel.to_json()
        assert serial.ok
        assert len(serial.records) == len(jobs)

    def test_records_keep_submission_order(self):
        jobs = [KernelJob("tiny", seed) for seed in (5, 1, 3)]
        report = SweepService(jobs, workers=2).run()
        assert [record["name"] for record in report.records] == [
            "kernel-tiny-5@production",
            "kernel-tiny-1@production",
            "kernel-tiny-3@production",
        ]


class TestArtifactCaching:
    def _count_synthesis(self, monkeypatch):
        counters = {"hw": 0, "sw": 0}
        real_hw = cosyn_flow.synthesize_hardware
        real_sw = cosyn_flow.synthesize_software

        def counting_hw(*args, **kwargs):
            counters["hw"] += 1
            return real_hw(*args, **kwargs)

        def counting_sw(*args, **kwargs):
            counters["sw"] += 1
            return real_sw(*args, **kwargs)

        monkeypatch.setattr(cosyn_flow, "synthesize_hardware", counting_hw)
        monkeypatch.setattr(cosyn_flow, "synthesize_software", counting_sw)
        return counters

    def test_warm_cache_rerun_does_zero_resynthesis(self, tmp_path, monkeypatch):
        counters = self._count_synthesis(monkeypatch)
        jobs = [CosynJob(seed, platform=platform)
                for seed in range(4)
                for platform in ("pc_at_fpga", "microcoded")]
        cold = SweepService(jobs, workers=1,
                            cache=ArtifactCache(tmp_path)).run()
        assert counters["hw"] + counters["sw"] > 0
        assert cold.cosyn_executed() == len(jobs)
        assert cold.cosyn_cached() == 0

        counters["hw"] = counters["sw"] = 0
        warm = SweepService(jobs, workers=1,
                            cache=ArtifactCache(tmp_path)).run()
        assert counters == {"hw": 0, "sw": 0}, \
            "a warm-cache re-run must not re-run synthesis"
        assert warm.cosyn_executed() == 0
        assert warm.cosyn_cached() == len(jobs)
        assert warm.cache_stats["hits"] == len(jobs)
        assert warm.cache_stats["misses"] == 0
        # Cached records carry the same artefact identity as fresh ones.
        for fresh, cached in zip(cold.records, warm.records):
            assert cached["cached"] is True
            assert cached["artifact_digest"] == fresh["artifact_digest"]

    def test_corrupted_entry_recovers_by_resynthesis(self, tmp_path):
        job = CosynJob(0)
        cache = ArtifactCache(tmp_path)
        SweepService([job], cache=cache).run()
        path = cache._path(ArtifactCache.key_for(job.spec()))
        with open(path, "w") as handle:
            handle.write("garbage")
        fresh_cache = ArtifactCache(tmp_path)
        report = SweepService([job], cache=fresh_cache).run()
        assert report.cosyn_executed() == 1
        assert fresh_cache.stats["invalidated"] == 1
        assert report.ok

    def test_uncached_service_still_works(self):
        report = SweepService([CosynJob(0)]).run()
        assert report.ok
        assert report.cache_stats is None


class TestJobBehaviour:
    def test_error_jobs_become_records_not_aborts(self):
        jobs = [KernelJob("tiny", 0),
                CosynJob(0, platform="no_such_platform"),
                KernelJob("tiny", 1)]
        serial = SweepService(jobs, workers=1).run()
        pooled = SweepService(jobs, workers=2).run()
        assert serial.to_json() == pooled.to_json()
        assert not serial.ok
        assert len(serial.errors) == 1
        assert "no_such_platform" in serial.errors[0]["error"]
        assert serial.records[0]["error"] is None
        assert serial.records[2]["error"] is None

    def test_checkpointed_cosim_job_matches_uninterrupted(self):
        plain, _ = CosimJob(6, until=30_000).execute()
        via_checkpoint, _ = CosimJob(6, until=30_000,
                                     checkpoint_at=11_111).execute()
        assert via_checkpoint["fingerprint_digest"] == \
            plain["fingerprint_digest"]
        assert via_checkpoint["end_time"] == plain["end_time"]

    def test_cosim_completion_mode_checks_expectations(self):
        record, payload = CosimJob(0).execute()
        assert payload is None
        assert record["functional_problems"] == []
        assert record["sw_finished_all"] is True

    def test_job_validation(self):
        with pytest.raises(ValueError, match="size"):
            KernelJob("gigantic", 0)
        with pytest.raises(ValueError, match="before"):
            CosimJob(0, until=100, checkpoint_at=100)
        with pytest.raises(ValueError, match="kind"):
            job_from_dict({"kind": "warp"})
        with pytest.raises(ValueError, match="bad cosim job"):
            job_from_dict({"kind": "cosim", "sneed": 3})

    def test_job_from_dict_round_trips_spec(self):
        for job in (KernelJob("small", 7, kernel="reference"),
                    CosimJob(2, networks=4, until=9_000, checkpoint_at=100),
                    CosynJob(1, platform="microcoded",
                             hw_modules=["Cons0", "Prod0"])):
            clone = job_from_dict(job.spec())
            assert clone.spec() == job.spec()
            assert clone.name == job.name

    def test_coverage_job_records_scoreboard_and_caches(self, tmp_path):
        """A ``--coverage`` cosim job is cacheable: record + map round-trip."""
        job = CosimJob(2, coverage=True)
        assert job.cacheable
        record, payload = job.execute()
        board = record["scoreboard"]
        assert 0.0 < board["state_coverage"] <= 1.0
        assert board["fault_survival"] is None
        assert set(payload) == {"record", "coverage"}
        assert payload["coverage"]["format"] == 1
        clone = job_from_dict(job.spec())
        served = clone.record_from_payload(payload, cached=True)
        expected = dict(record)
        expected["cached"] = True
        assert served == expected

        cache_dir = str(tmp_path / "cache")
        cold = SweepService([job], workers=1,
                            cache=ArtifactCache(cache_dir)).run()
        warm = SweepService([job], workers=1,
                            cache=ArtifactCache(cache_dir)).run()
        assert cold.records[0]["cached"] is False
        assert warm.records[0]["cached"] is True
        assert warm.records[0]["coverage_digest"] == \
            cold.records[0]["coverage_digest"]

    def test_faulted_cosim_job_reports_survival_not_problems(self):
        job = CosimJob(2, coverage=True, fault_kind="stuck_handshake")
        assert "+stuck_handshake" in job.name
        record, _ = job.execute()
        # The stale-acknowledge word loss makes this FIFO system a known
        # casualty of the masked consumer ack; the job must report that as
        # fault survival data, never as a functional failure of the sweep.
        assert record["error"] is None
        assert record["functional_problems"] is None
        assert record["fault_survival"] in (True, False)
        assert record["scoreboard"]["fault_survival"] == \
            record["fault_survival"]
        with pytest.raises(ValueError, match="fault kind"):
            CosimJob(0, fault_kind="gamma_rays")

    def test_jobs_from_dse_report_front(self):
        report = {"front": [
            {"platform": "microcoded", "hw_modules": ["Prod0"]},
            {"platform": "unix_ipc", "hw_modules": []},
        ]}
        jobs = jobs_from_dse_report(report, seed=3, networks=2)
        assert [job.platform for job in jobs] == ["microcoded", "unix_ipc"]
        assert jobs[0].hw_modules == ["Prod0"]
        assert all(job.seed == 3 and job.networks == 2 for job in jobs)


class TestCommandLine:
    def test_quick_selfcheck_passes(self, capsys):
        exit_code = main(["--quick", "--selfcheck", "--workers", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "parity: serial == parallel" in out
        assert "zero re-synthesis" in out

    def test_job_file_and_report_output(self, tmp_path, capsys):
        job_file = tmp_path / "jobs.json"
        job_file.write_text(json.dumps([
            {"kind": "kernel", "size": "tiny", "seed": 2},
            {"kind": "cosyn", "seed": 1},
        ]))
        out_file = tmp_path / "report.json"
        exit_code = main(["--jobs", str(job_file), "--workers", "1",
                          "--cache-dir", str(tmp_path / "cache"),
                          "--out", str(out_file)])
        assert exit_code == 0
        report = json.loads(out_file.read_text())
        assert report["totals"]["jobs"] == 2
        assert report["totals"]["by_kind"] == {"kernel": 1, "cosyn": 1}

    def test_unknown_size_fails_cleanly(self, tmp_path, capsys):
        job_file = tmp_path / "jobs.json"
        job_file.write_text(json.dumps([{"kind": "kernel", "size": "nope",
                                         "seed": 0}]))
        assert main(["--jobs", str(job_file)]) == 2
