"""Target platform models.

Co-synthesis maps the platform-independent system model onto one of these
platforms.  Each platform bundles

* a **processor timing model** (how long a software FSM transition and a port
  access take),
* a **communication resource model** (the bus or OS mechanism the SW
  synthesis views of the communication services are expanded onto),
* a **hardware technology model** (for platforms with programmable hardware,
  the FPGA device the hardware modules are synthesized into).

The flagship platform is the paper's prototype: a 386 PC-AT with an ISA
extension bus (16 bit, 10 MHz, base address 0x300) driving a Xilinx
XC4000-family FPGA board.
"""

from repro.platforms.base import Platform, ProcessorModel, BusModel
from repro.platforms.isa_bus import IsaBus
from repro.platforms.fpga import Xc4000Device, XC4005, XC4010
from repro.platforms.pc_at import PcAtFpgaPlatform
from repro.platforms.unix_ipc import UnixIpcPlatform
from repro.platforms.microcoded import MicrocodedPlatform
from repro.platforms.multiproc import MultiprocessorPlatform
from repro.platforms.registry import (
    available_platforms,
    builtin_platforms,
    get_platform,
    register_platform,
    unregister_platform,
)

__all__ = [
    "Platform",
    "ProcessorModel",
    "BusModel",
    "IsaBus",
    "Xc4000Device",
    "XC4005",
    "XC4010",
    "PcAtFpgaPlatform",
    "UnixIpcPlatform",
    "MicrocodedPlatform",
    "MultiprocessorPlatform",
    "register_platform",
    "unregister_platform",
    "get_platform",
    "available_platforms",
    "builtin_platforms",
]
