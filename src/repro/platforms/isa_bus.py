"""ISA (PC-AT extension bus) model.

The paper's prototype uses "a 16-bit parallel bus (synchronous communication,
10 MHz, address 300h)"; this model captures the address window, the word
width and the transfer timing, and offers a small transaction log so the
coherence benchmark can count bus cycles.
"""

from repro.platforms.base import BusModel


class IsaBus(BusModel):
    """16-bit ISA extension bus with a fixed I/O window."""

    def __init__(self, base_address=0x300, window=0x10, clock_hz=10_000_000,
                 cycles_per_transfer=3):
        super().__init__("isa", width_bits=16, clock_hz=clock_hz,
                         cycles_per_transfer=cycles_per_transfer)
        self.base_address = base_address
        self.window = window
        self.transactions = []

    def address_range(self):
        return range(self.base_address, self.base_address + self.window)

    def assign_addresses(self, port_names, base=None):
        """Assign one I/O address per port, starting at *base* (default 0x300).

        Assignment never fails: ports beyond the window get consecutive
        addresses past its end, so the co-synthesis flow can still produce
        its full report and flag the overflow as a constraint problem
        ("address map needs N locations, bus window offers W") instead of
        crashing mid-synthesis.  :meth:`address_range` remains the legal
        window.
        """
        base = self.base_address if base is None else base
        return {name: base + offset for offset, name in enumerate(port_names)}

    # ------------------------------------------------------- transaction log

    def record_read(self, address, value, time_ns):
        self.transactions.append(("read", address, value, time_ns))

    def record_write(self, address, value, time_ns):
        self.transactions.append(("write", address, value, time_ns))

    def traffic_summary(self):
        """Aggregate statistics of the logged transactions."""
        reads = sum(1 for kind, *_ in self.transactions if kind == "read")
        writes = sum(1 for kind, *_ in self.transactions if kind == "write")
        return {
            "reads": reads,
            "writes": writes,
            "total": reads + writes,
            "bus_time_ns": (reads + writes) * self.transfer_ns(1),
        }

    def reset_log(self):
        self.transactions = []
