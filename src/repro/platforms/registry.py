"""Platform registry: look up target platforms by name."""

from repro.platforms.microcoded import MicrocodedPlatform
from repro.platforms.multiproc import MultiprocessorPlatform
from repro.platforms.pc_at import PcAtFpgaPlatform
from repro.platforms.unix_ipc import UnixIpcPlatform
from repro.utils.errors import SynthesisError

_FACTORIES = {
    "pc_at_fpga": PcAtFpgaPlatform,
    "unix_ipc": UnixIpcPlatform,
    "microcoded": MicrocodedPlatform,
    "multiproc": MultiprocessorPlatform,
}

_CUSTOM = {}


def register_platform(name, factory, replace=False):
    """Register a custom platform factory under *name*."""
    if name in _FACTORIES or (name in _CUSTOM and not replace):
        if not replace:
            raise SynthesisError(f"platform {name!r} is already registered")
    _CUSTOM[name] = factory
    return factory


def get_platform(name, **kwargs):
    """Instantiate the platform registered under *name*."""
    factory = _CUSTOM.get(name) or _FACTORIES.get(name)
    if factory is None:
        raise SynthesisError(
            f"unknown platform {name!r}; available: {sorted(available_platforms())}"
        )
    return factory(**kwargs)


def available_platforms():
    """Names of all registered platforms."""
    return sorted(set(_FACTORIES) | set(_CUSTOM))
