"""Platform registry: look up target platforms by name.

Registration semantics (relied upon by the :mod:`repro.dse` platform sweep):

* built-in platforms are always available under their canonical names,
* :func:`register_platform` refuses to reuse any registered name — built-in
  or custom — unless ``replace=True`` is passed explicitly,
* with ``replace=True`` a custom factory *shadows* the previous registration;
  :func:`get_platform` then resolves the custom factory first,
* :func:`unregister_platform` removes a custom factory, un-shadowing the
  built-in of the same name (if any); built-ins themselves cannot be removed.
"""

from repro.platforms.microcoded import MicrocodedPlatform
from repro.platforms.multiproc import MultiprocessorPlatform
from repro.platforms.pc_at import PcAtFpgaPlatform
from repro.platforms.unix_ipc import UnixIpcPlatform
from repro.utils.errors import SynthesisError

_BUILTIN = {
    "pc_at_fpga": PcAtFpgaPlatform,
    "unix_ipc": UnixIpcPlatform,
    "microcoded": MicrocodedPlatform,
    "multiproc": MultiprocessorPlatform,
}

_CUSTOM = {}


def register_platform(name, factory, replace=False):
    """Register a custom platform factory under *name*.

    Raises :class:`SynthesisError` when *name* is already registered (as a
    built-in or a custom factory) and ``replace`` is false.  ``replace=True``
    shadows the existing registration; a shadowed built-in is restored by
    :func:`unregister_platform`.
    """
    if not replace and (name in _BUILTIN or name in _CUSTOM):
        kind = "built-in" if name in _BUILTIN else "custom"
        raise SynthesisError(
            f"platform {name!r} is already registered ({kind}); "
            "pass replace=True to shadow it"
        )
    _CUSTOM[name] = factory
    return factory


def unregister_platform(name):
    """Remove the custom factory *name*, un-shadowing any built-in."""
    if name in _CUSTOM:
        del _CUSTOM[name]
        return
    if name in _BUILTIN:
        raise SynthesisError(f"platform {name!r} is built-in and cannot be removed")
    raise SynthesisError(f"no custom platform {name!r} is registered")


def get_platform(name, **kwargs):
    """Instantiate the platform registered under *name* (custom wins)."""
    if name in _CUSTOM:
        factory = _CUSTOM[name]
    elif name in _BUILTIN:
        factory = _BUILTIN[name]
    else:
        raise SynthesisError(
            f"unknown platform {name!r}; available: {sorted(available_platforms())}"
        )
    return factory(**kwargs)


def builtin_platforms():
    """Names of the built-in platforms."""
    return sorted(_BUILTIN)


def available_platforms():
    """Names of all registered platforms."""
    return sorted(set(_BUILTIN) | set(_CUSTOM))
