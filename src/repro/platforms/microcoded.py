"""Embedded platform with a micro-coded communication controller.

Models the paper's third software-synthesis alternative: "the communication
can also be executed as an embedded software on a hardware datapath
controlled by a micro-coded controller, in which case our communication
procedure call will become a call to a standard micro-code routine".
Port accesses are very cheap (a few controller cycles) but the processor is
slow, which moves the software/communication balance to the other extreme of
the retargeting benchmark.
"""

from repro.platforms.base import BusModel, Platform, ProcessorModel
from repro.platforms.fpga import XC4005
from repro.swc.syntax import MicrocodeSyntax


class MicrocodedPlatform(Platform):
    """Embedded core + micro-coded controller + small FPGA."""

    has_hardware = True

    def __init__(self, name="microcoded", cpu_clock_hz=8_000_000):
        processor = ProcessorModel(
            "embedded_core", clock_hz=cpu_clock_hz,
            cycles_per_statement=6, cycles_per_activation=20,
            io_read_cycles=4, io_write_cycles=4,
        )
        bus = BusModel("ucode_datapath", width_bits=16, clock_hz=cpu_clock_hz,
                       cycles_per_transfer=1)
        super().__init__(
            name, processor, bus, device=XC4005,
            description="embedded processor with micro-coded communication controller",
        )

    def assign_addresses(self, port_names, base=None):
        base = 0 if base is None else base
        return {name: base + offset for offset, name in enumerate(port_names)}

    def port_syntax(self, port_names=(), base=None):
        return MicrocodeSyntax(
            read_cycles=self.processor.io_read_cycles,
            write_cycles=self.processor.io_write_cycles,
        )
