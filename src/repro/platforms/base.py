"""Abstract platform description."""

from repro.utils.errors import SynthesisError
from repro.utils.ids import check_identifier


class ProcessorModel:
    """Coarse timing model of the processor executing the software part.

    The model is deliberately simple — the paper's flow only needs to know
    whether the software side keeps up with the real-time constraints, not an
    exact instruction trace:

    * ``clock_hz`` — processor clock frequency,
    * ``cycles_per_statement`` — average cycles per executed IR statement,
    * ``cycles_per_activation`` — fixed overhead of one FSM activation (the
      function call, the ``switch`` dispatch and the return),
    * ``io_read_cycles`` / ``io_write_cycles`` — processor-side cost of a
      port access, on top of the bus transfer itself.
    """

    def __init__(self, name, clock_hz, cycles_per_statement=4,
                 cycles_per_activation=18, io_read_cycles=14, io_write_cycles=10):
        self.name = name
        if clock_hz <= 0:
            raise SynthesisError("processor clock must be positive")
        self.clock_hz = clock_hz
        self.cycles_per_statement = cycles_per_statement
        self.cycles_per_activation = cycles_per_activation
        self.io_read_cycles = io_read_cycles
        self.io_write_cycles = io_write_cycles

    @property
    def cycle_ns(self):
        """Duration of one processor cycle in nanoseconds (float)."""
        return 1e9 / self.clock_hz

    def activation_ns(self, statements_executed=4, reads=0, writes=0):
        """Estimated wall-clock nanoseconds of one software FSM activation."""
        cycles = (
            self.cycles_per_activation
            + statements_executed * self.cycles_per_statement
            + reads * self.io_read_cycles
            + writes * self.io_write_cycles
        )
        return cycles * self.cycle_ns

    def __repr__(self):
        return f"ProcessorModel({self.name}, {self.clock_hz / 1e6:.0f} MHz)"


class BusModel:
    """Timing/width model of the communication resource between SW and HW."""

    def __init__(self, name, width_bits, clock_hz, cycles_per_transfer=1,
                 setup_cycles=0):
        self.name = name
        self.width_bits = width_bits
        self.clock_hz = clock_hz
        self.cycles_per_transfer = cycles_per_transfer
        self.setup_cycles = setup_cycles

    @property
    def cycle_ns(self):
        return 1e9 / self.clock_hz

    def transfer_ns(self, words=1):
        """Nanoseconds needed to move *words* bus words."""
        cycles = self.setup_cycles + words * self.cycles_per_transfer
        return cycles * self.cycle_ns

    def words_for_bits(self, bits):
        """Bus words needed to carry *bits* of payload."""
        return max(1, -(-bits // self.width_bits))

    def __repr__(self):
        return f"BusModel({self.name}, {self.width_bits} bit, {self.clock_hz / 1e6:.0f} MHz)"


class Platform:
    """A complete target platform for co-synthesis.

    Sub-classes provide the processor model, the bus (or IPC) model, the
    hardware device (if any) and the port-access syntax their SW synthesis
    views are generated with.
    """

    #: True when the platform contains programmable hardware for HW modules.
    has_hardware = True

    def __init__(self, name, processor, bus, device=None, description=""):
        self.name = check_identifier(name, "platform name")
        self.processor = processor
        self.bus = bus
        self.device = device
        self.description = description

    # --------------------------------------------------------------- mapping

    def assign_addresses(self, port_names, base=None):
        """Assign consecutive physical addresses to the given port names."""
        raise NotImplementedError

    def port_syntax(self, port_names=(), base=None):
        """Return the :class:`PortAccessSyntax` of this platform's SW views."""
        raise NotImplementedError

    # ---------------------------------------------------------------- timing

    def software_activation_ns(self, statements=4, reads=0, writes=0):
        """Wall-clock estimate of one software activation incl. bus traffic."""
        processor_ns = self.processor.activation_ns(statements, reads, writes)
        bus_ns = (reads + writes) * self.bus.transfer_ns(1)
        return processor_ns + bus_ns

    def hardware_clock_ns(self):
        """Clock period offered to synthesized hardware (None when no HW)."""
        if self.device is None:
            return None
        return self.device.recommended_clock_ns

    def summary(self):
        """Dictionary summary used in synthesis reports."""
        return {
            "platform": self.name,
            "processor": repr(self.processor),
            "bus": repr(self.bus),
            "device": repr(self.device) if self.device else "none",
            "has_hardware": self.has_hardware,
        }

    def __repr__(self):
        return f"{type(self).__name__}({self.name})"
