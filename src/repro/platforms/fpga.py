"""Xilinx XC4000-family FPGA device model.

The paper's Speed Control subsystem "was synthesized onto a Xilinx
4000-series FPGA".  The model below carries the published CLB counts of the
small XC4000 family members and coarse per-CLB timing, enough for the
high-level-synthesis estimator to answer the two questions the paper's flow
asks: does the design fit, and does it meet the clock needed by the bus and
the motor's real-time constraints.
"""

from repro.utils.errors import SynthesisError


class Xc4000Device:
    """One member of the XC4000 family.

    Parameters
    ----------
    name:
        Device name, e.g. ``"XC4005"``.
    clb_count:
        Number of configurable logic blocks available.
    flip_flops:
        Number of CLB flip-flops available (two per CLB in the XC4000).
    clb_delay_ns:
        Combinational delay through one CLB level (function generator +
        local routing), used for critical-path estimation.
    io_blocks:
        Number of user I/O blocks.
    """

    def __init__(self, name, clb_count, flip_flops=None, clb_delay_ns=7.0,
                 io_blocks=112):
        self.name = name
        self.clb_count = clb_count
        self.flip_flops = flip_flops if flip_flops is not None else 2 * clb_count
        self.clb_delay_ns = clb_delay_ns
        self.io_blocks = io_blocks

    @property
    def recommended_clock_ns(self):
        """A conservative system clock period (about 4 CLB levels + margin)."""
        return round(4 * self.clb_delay_ns + 12.0)

    def fits(self, clbs, flip_flops=0, ios=0):
        """True when the given resource usage fits the device."""
        return (
            clbs <= self.clb_count
            and flip_flops <= self.flip_flops
            and ios <= self.io_blocks
        )

    def utilisation(self, clbs, flip_flops=0):
        """CLB utilisation as a fraction (may exceed 1.0 when over-mapped)."""
        if self.clb_count == 0:
            raise SynthesisError("device has no CLBs")
        return clbs / self.clb_count

    def max_frequency_hz(self, critical_path_ns):
        """Maximum clock frequency for a given critical path."""
        if critical_path_ns <= 0:
            raise SynthesisError("critical path must be positive")
        return 1e9 / critical_path_ns

    def __repr__(self):
        return f"Xc4000Device({self.name}, {self.clb_count} CLBs)"


#: The two family members the paper's prototype board could carry.
XC4005 = Xc4000Device("XC4005", clb_count=196, io_blocks=112)
XC4010 = Xc4000Device("XC4010", clb_count=400, io_blocks=160)

#: Area cost table (CLBs) of the RTL operators the HLS allocator instantiates,
#: per 16-bit operand width; scaled linearly with width by the estimator.
OPERATOR_CLB_COST = {
    "add": 9,
    "sub": 9,
    "mul": 72,
    "div": 90,
    "mod": 90,
    "eq": 5,
    "ne": 5,
    "lt": 6,
    "le": 6,
    "gt": 6,
    "ge": 6,
    "and": 1,
    "or": 1,
    "xor": 1,
    "not": 1,
    "neg": 9,
    "abs": 10,
    "min": 12,
    "max": 12,
    "mux": 4,
    "register": 8,
}


def operator_clbs(op, width_bits=16):
    """CLB cost of one RTL operator instance at the given bit width."""
    base = OPERATOR_CLB_COST.get(op)
    if base is None:
        raise SynthesisError(f"no area model for operator {op!r}")
    scale = max(width_bits, 1) / 16.0
    return max(1, round(base * scale))


#: Combinational delay (ns) of the same operators at 16 bits.
OPERATOR_DELAY_NS = {
    "add": 14.0,
    "sub": 14.0,
    "mul": 55.0,
    "div": 70.0,
    "mod": 70.0,
    "eq": 9.0,
    "ne": 9.0,
    "lt": 12.0,
    "le": 12.0,
    "gt": 12.0,
    "ge": 12.0,
    "and": 4.0,
    "or": 4.0,
    "xor": 4.0,
    "not": 3.0,
    "neg": 14.0,
    "abs": 16.0,
    "min": 18.0,
    "max": 18.0,
    "mux": 6.0,
    "register": 3.0,
}


def operator_delay_ns(op, width_bits=16):
    """Combinational delay of one operator at the given width."""
    base = OPERATOR_DELAY_NS.get(op)
    if base is None:
        raise SynthesisError(f"no delay model for operator {op!r}")
    scale = 0.75 + 0.25 * (max(width_bits, 1) / 16.0)
    return base * scale
