"""All-software platform: communication through UNIX inter-process communication.

This platform exercises the paper's statement that "if the communication is
entirely a software executing on a given operating system, communication
procedure calls are expanded into system calls ... (for example, Inter
Process Communication of UNIX)".  There is no programmable hardware;
hardware modules are executed as additional software processes, which is
useful for early functional prototyping of the whole system on a
workstation.
"""

from repro.platforms.base import BusModel, Platform, ProcessorModel
from repro.swc.syntax import IpcSyntax


class UnixIpcPlatform(Platform):
    """Workstation platform where all communication is UNIX IPC."""

    has_hardware = False

    def __init__(self, name="unix_ipc", cpu_clock_hz=60_000_000,
                 syscall_overhead_cycles=2_500):
        processor = ProcessorModel(
            "workstation", clock_hz=cpu_clock_hz,
            cycles_per_statement=3, cycles_per_activation=15,
            io_read_cycles=syscall_overhead_cycles,
            io_write_cycles=syscall_overhead_cycles,
        )
        # IPC "bus": a message queue; the width is a machine word and the
        # effective transfer rate is dominated by the system-call overhead.
        bus = BusModel("ipc_msgqueue", width_bits=32, clock_hz=cpu_clock_hz,
                       cycles_per_transfer=syscall_overhead_cycles)
        super().__init__(
            name, processor, bus, device=None,
            description="single workstation, communication through UNIX IPC",
        )
        self.syscall_overhead_cycles = syscall_overhead_cycles

    def assign_addresses(self, port_names, base=None):
        """IPC needs queue identifiers rather than addresses."""
        base = 1000 if base is None else base
        return {name: base + offset for offset, name in enumerate(port_names)}

    def port_syntax(self, port_names=(), base=None):
        queue_ids = self.assign_addresses(port_names, base=base)
        return IpcSyntax(
            queue_ids={name: str(qid) for name, qid in queue_ids.items()},
            read_cycles=self.syscall_overhead_cycles,
            write_cycles=self.syscall_overhead_cycles,
        )
