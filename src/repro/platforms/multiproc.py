"""Multiprocessor platform.

The paper closes section 4 noting "the target architecture may be a complex
multiprocessor architecture".  This model represents the simplest such
target: several identical processor nodes connected by a shared parallel
backplane; software modules are placed on nodes and hardware modules (if
any) on an FPGA attached to the backplane.  Only the communication timing
differs from the PC-AT model — the point of including it is to show that the
same system description retargets by swapping views, not to model a real
machine in detail.
"""

from repro.platforms.base import BusModel, Platform, ProcessorModel
from repro.platforms.fpga import XC4010
from repro.swc.syntax import IoPortSyntax


class MultiprocessorPlatform(Platform):
    """Several processor nodes on a shared backplane plus one FPGA."""

    has_hardware = True

    def __init__(self, name="multiproc", nodes=4, cpu_clock_hz=25_000_000,
                 backplane_clock_hz=20_000_000, base_address=0x8000):
        processor = ProcessorModel(
            "node_cpu", clock_hz=cpu_clock_hz,
            cycles_per_statement=4, cycles_per_activation=20,
            io_read_cycles=18, io_write_cycles=16,
        )
        bus = BusModel("backplane", width_bits=32, clock_hz=backplane_clock_hz,
                       cycles_per_transfer=2, setup_cycles=2)
        super().__init__(
            name, processor, bus, device=XC4010,
            description=f"{nodes}-node multiprocessor with shared backplane",
        )
        self.nodes = nodes
        self.base_address = base_address

    def assign_addresses(self, port_names, base=None):
        base = self.base_address if base is None else base
        return {name: base + 4 * offset for offset, name in enumerate(port_names)}

    def port_syntax(self, port_names=(), base=None):
        return IoPortSyntax(
            self.assign_addresses(port_names, base=base),
            read_cycles=self.processor.io_read_cycles,
            write_cycles=self.processor.io_write_cycles,
        )
