"""The paper's prototype platform: 386 PC-AT + ISA bus + XC4000 FPGA board."""

from repro.platforms.base import Platform, ProcessorModel
from repro.platforms.fpga import XC4010
from repro.platforms.isa_bus import IsaBus
from repro.swc.syntax import IoPortSyntax


class PcAtFpgaPlatform(Platform):
    """386-based PC-AT communicating with an FPGA development board.

    Defaults follow the prototype of the paper's section 4: the Distribution
    C program compiled for a 386 PC-AT, talking over the 16-bit extension bus
    (synchronous, 10 MHz, base address 0x300) to a Xilinx 4000-series FPGA
    carrying the Speed Control subsystem, EPROM and a microcomputer
    interface.
    """

    has_hardware = True

    def __init__(self, name="pc_at_fpga", cpu_clock_hz=33_000_000,
                 base_address=0x300, device=None):
        processor = ProcessorModel(
            "i386", clock_hz=cpu_clock_hz,
            cycles_per_statement=5, cycles_per_activation=24,
            io_read_cycles=26, io_write_cycles=24,
        )
        bus = IsaBus(base_address=base_address)
        super().__init__(
            name, processor, bus, device=device or XC4010,
            description="386 PC-AT with FPGA board on the ISA extension bus "
                        "(the paper's prototype architecture)",
        )

    def assign_addresses(self, port_names, base=None):
        """Map communication-unit ports into the ISA I/O window."""
        return self.bus.assign_addresses(port_names, base=base)

    def port_syntax(self, port_names=(), base=None):
        """I/O-port syntax (``inport``/``outport``) over the assigned addresses."""
        address_map = self.assign_addresses(port_names, base=base)
        return IoPortSyntax(
            address_map,
            read_cycles=self.processor.io_read_cycles,
            write_cycles=self.processor.io_write_cycles,
        )
