"""The co-simulation session: build, run, report.

:class:`CosimSession` turns a validated :class:`~repro.core.model.SystemModel`
into a running discrete-event simulation:

1. every port of every communication unit becomes a signal named
   ``<unit>_<port>``,
2. every controller of every unit becomes a clocked process,
3. every hardware module gets signals for its ports / internal wires, and a
   clocked :class:`~repro.cosim.hw_adapter.HardwareAdapter`,
4. every software module gets a :class:`~repro.cosim.sw_executor.SoftwareExecutor`
   activated periodically by a generator process,
5. *environment* hooks (the motor's physical model, user stimulus...) may add
   further signals and processes.

The session owns a waveform recorder and a service-call trace; after
``run()`` it returns a :class:`CosimResult` summarising the functional
outcome — the evidence the paper's co-simulation step is meant to produce.
"""

from repro.cosim.cli import CliPortAccessor, SignalPortAccessor
from repro.cosim.hw_adapter import HardwareAdapter
from repro.cosim.services import ServiceInstance, ServiceRegistry
from repro.cosim.sw_executor import SoftwareExecutor
from repro.cosim.sync import OneTransitionPerActivation
from repro.cosim.tracing import ServiceCallTrace
from repro.core.module import HardwareModule, SoftwareModule
from repro.core.validation import validate_model
from repro.desim import Timeout, WaveformRecorder, create_simulator
from repro.ir.interp import DEFAULT_FSM_MODE, FSM_MODES, FsmInstance
from repro.ir.syscompile import (
    DEFAULT_SYSTEM_MODE,
    SYSTEM_MODES,
    LateBoundService,
    ShadowChecker,
    SystemCompileError,
    compile_system,
)
from repro.obs import TELEMETRY
from repro.utils.errors import SimulationError


def _unbound_system_step():  # pragma: no cover - rebound during build()
    raise SimulationError("whole-system program stepped before it was bound")


class CosimResult:
    """Summary of one co-simulation run."""

    def __init__(self, session, end_time):
        self.system = session.model.name
        self.end_time = end_time
        self.trace = session.trace
        self.waveform = session.waveform
        self.statistics = dict(session.simulator.statistics)
        self.sw_states = {
            name: executor.current_state
            for name, executor in session.sw_executors.items()
        }
        self.sw_finished = {
            name: executor.finished for name, executor in session.sw_executors.items()
        }
        self.sw_activations = {
            name: executor.activations
            for name, executor in session.sw_executors.items()
        }
        self.hw_cycles = {
            name: adapter.cycles for name, adapter in session.hw_adapters.items()
        }
        self.monitor_violations = {
            monitor.name: list(monitor.violations) for monitor in session.monitors
        }
        self.fsm_counters = session.fsm_counters()
        self.system_mode = session.system_tier

    @property
    def all_monitors_ok(self):
        return all(not violations for violations in self.monitor_violations.values())

    def summary(self):
        return {
            "system": self.system,
            "end_time_ns": self.end_time,
            "service_calls": len(self.trace),
            "sw_states": self.sw_states,
            "sw_activations": self.sw_activations,
            "hw_cycles": self.hw_cycles,
            "monitors_ok": self.all_monitors_ok,
            "system_mode": self.system_mode,
            "fsm": dict(self.fsm_counters),
            # Per-service latency distributions (simulated ns): count, mean,
            # p50/p95/max — the mean alone hides a saturated channel's tail.
            "services": self.trace.latency_summary(),
        }

    def __repr__(self):
        return f"CosimResult({self.system}, t={self.end_time} ns, calls={len(self.trace)})"


class CosimSession:
    """Builds and runs the joint simulation of a system model."""

    def __init__(self, model, library=None, clock_period=100,
                 sw_activation_period=None, activation_policy=None,
                 validate=True, trace_signals=True, kernel="production",
                 fsm_mode=None, detect_races=False, system_mode=None,
                 system_lint=True, system_cache=None):
        if validate:
            validate_model(model, library=library)
        self.model = model
        self.library = library
        self.clock_period = clock_period
        self.sw_activation_period = sw_activation_period or clock_period
        self.activation_policy = activation_policy or OneTransitionPerActivation()
        self.trace_signals = trace_signals
        self.kernel = kernel
        explicit_fsm_mode = fsm_mode
        if fsm_mode is None:
            fsm_mode = DEFAULT_FSM_MODE
        if fsm_mode not in FSM_MODES:
            raise SimulationError(
                f"unknown fsm_mode {fsm_mode!r}; expected one of {FSM_MODES}"
            )
        if system_mode is None:
            system_mode = DEFAULT_SYSTEM_MODE
        if system_mode not in SYSTEM_MODES:
            raise SimulationError(
                f"unknown system_mode {system_mode!r}; "
                f"expected one of {SYSTEM_MODES}"
            )
        if system_mode == "interpreted":
            # The interpreted system tier means *everything* runs on the
            # tree-walking oracle; a session asking for compiled FSMs inside
            # it is contradictory.
            if explicit_fsm_mode == "compiled":
                raise SimulationError(
                    'system_mode="interpreted" forces fsm_mode="interpreted"; '
                    'drop the explicit fsm_mode="compiled"'
                )
            fsm_mode = "interpreted"
        self.fsm_mode = fsm_mode
        self.system_mode = system_mode
        self.system_lint = system_lint
        self.system_cache = system_cache
        self.detect_races = detect_races
        #: Resolved at build time: the tier actually wired ("fused",
        #: "per-fsm", "interpreted" or "differential") — a requested
        #: "fused"/"differential" falls back to "per-fsm" when the model
        #: cannot be fused (reason in :attr:`system_fallback_reason`).
        self.system_tier = None
        self.system_fallback_reason = None
        self.system_program = None
        #: Candidate FSM steps executed inside the fused program / executed
        #: per-FSM at runtime although the fused program was active.
        self.system_compile_hits = 0
        self.system_fallback = 0
        self.system_checker = None
        self._fused_process = None
        self._check_pre_process = None
        self._system_wiring = None

        self.simulator = create_simulator(kernel, detect_races=detect_races)
        self.trace = ServiceCallTrace()
        self.waveform = None
        self.clock = None
        self.unit_signals = {}
        self.module_signals = {}
        self.controller_instances = {}
        self.sw_executors = {}
        self.hw_adapters = {}
        self.monitors = []
        self.fault_injectors = {}
        self._environment_hooks = []
        self._built = False
        self._obs_prev = None

    # ------------------------------------------------------------------ build

    def add_environment(self, hook):
        """Register a callable ``hook(session)`` run at the end of build().

        Environment hooks model everything outside the system (the motor, a
        user): they may read :meth:`unit_signal`, add signals and processes
        to :attr:`simulator`.
        """
        self._environment_hooks.append(hook)
        return hook

    def add_monitor(self, monitor):
        """Attach a :class:`repro.desim.Monitor` checked during the run."""
        self.monitors.append(monitor)
        if self._built:
            self.simulator.add_monitor(monitor)
        return monitor

    def add_fault_plan(self, plan):
        """Install a :class:`repro.cosim.faults.FaultPlan`; returns its injector.

        Must be called before the session is built; the injector process is
        registered during :meth:`build` and its cursor travels in
        :meth:`save` checkpoints, so faulted runs snapshot/restore like any
        other.
        """
        from repro.cosim.faults import FaultInjector

        if self._built:
            raise SimulationError(
                "add_fault_plan() must be called before the session is built"
            )
        if plan.name in self.fault_injectors:
            raise SimulationError(f"duplicate fault plan {plan.name!r}")
        injector = FaultInjector(self, plan)
        self.fault_injectors[plan.name] = injector
        return injector

    def build(self):
        """Construct signals, processes and executors.  Idempotent."""
        if self._built:
            return self
        with TELEMETRY.span("cosim.build", cat="cosim",
                            system=self.model.name, kernel=self.kernel):
            return self._do_build()

    def _do_build(self):
        self.clock = self.simulator.add_clock("hwclk", period=self.clock_period)
        self._system_prepare()
        self._build_unit_signals()
        self._build_controllers()
        self._build_hardware()
        self._system_bind()
        self._build_software()
        for injector in self.fault_injectors.values():
            injector.install()
        if self.trace_signals:
            self.waveform = self.simulator.add_recorder(WaveformRecorder())
        else:
            self.waveform = WaveformRecorder([])
        for monitor in self.monitors:
            self.simulator.add_monitor(monitor)
        for hook in self._environment_hooks:
            hook(self)
        self._built = True
        return self

    def _system_prepare(self):
        """Resolve the system tier; compile the fused program when asked.

        Requested "fused"/"differential" degrade to the per-FSM wiring —
        with :attr:`system_fallback_reason` recording why — when the model
        carries un-fusable constructs, lint errors (``system_lint=True``)
        or the kernel runs with ``detect_races`` (write-race attribution
        needs one kernel process per writer, which fusing removes).
        """
        self._system_wiring = "per-fsm"
        if self.system_mode in ("per-fsm", "interpreted"):
            self.system_tier = self.system_mode
            return
        program = None
        if self.detect_races:
            self.system_fallback_reason = (
                "detect_races attributes writes to kernel processes; the "
                "fused step merges them"
            )
        else:
            try:
                program = compile_system(self.model, cache=self.system_cache,
                                         lint=self.system_lint)
            except SystemCompileError as exc:
                self.system_fallback_reason = str(exc)
        if program is None:
            self.system_tier = "per-fsm"
            return
        self.system_program = program
        self.system_tier = (
            "differential" if self.system_mode == "differential" else "fused"
        )
        if program.process_count:
            self._system_wiring = (
                "differential" if self.system_mode == "differential"
                else "fused"
            )

    def _system_bind(self):
        """Bind the generated code to the built backplane.

        Runs after controllers and hardware exist.  In fused wiring the
        placeholder process registered first on the clock receives the
        generated step function; in differential wiring the per-FSM
        processes stay authoritative and a :class:`ShadowChecker` brackets
        them (pre-sampler registered before the controllers, post-checker
        registered here, after the adapters).
        """
        if self._system_wiring == "per-fsm":
            return
        program = self.system_program
        plan = program.plan
        instances, labels = [], []
        for cand in plan.candidates:
            if cand.kind == "ctrl":
                instances.append(self.controller_instances[cand.label])
            else:
                instances.append(self.hw_adapters[cand.owner].instances[cand.name])
            labels.append(cand.label)
        signals = []
        for kind, owner, port in plan.signal_keys:
            table = self.unit_signals if kind == "unit" else self.module_signals
            signals.append(table[owner][port])
        if self._system_wiring == "differential":
            shadow = program.bind_shadow({"signals": signals})
            self.system_checker = ShadowChecker(self.clock, instances,
                                                labels, shadow)
            self._check_pre_process.func = self.system_checker.pre
            self.simulator.add_fused_process(
                "system_check_post", self.system_checker.post, self.clock
            )
            return
        accessors = []
        for key in plan.accessor_keys:
            if key[0] == "ctrl":
                accessors.append(
                    self.controller_instances[f"{key[1]}.{key[2]}"].ports
                )
            else:
                accessors.append(self.hw_adapters[key[1]].accessor)
        services = []
        for module_name, service_name in plan.service_keys:
            registry = self.hw_adapters[module_name].registry
            try:
                services.append(registry.get(service_name))
            except SimulationError:
                # Not bound (a lint warning, not an error): the canonical
                # "no bound service" error must surface at call time.
                services.append(LateBoundService(registry, service_name))
        self._fused_process.func = program.bind({
            "sim": self.simulator,
            "clock": self.clock,
            "session": self,
            "signals": signals,
            "instances": instances,
            "accessors": accessors,
            "services": services,
            "adapters": [self.hw_adapters[name] for name in plan.adapter_keys],
        })

    def _build_unit_signals(self):
        for unit in self.model.comm_units.values():
            signals = {}
            for port in unit.ports.values():
                signal = self.simulator.add_signal(
                    f"{unit.name}_{port.name}", init=port.initial, dtype=port.dtype
                )
                signals[port.name] = signal
            self.unit_signals[unit.name] = signals

    def _build_controllers(self):
        # The fused step (or the differential pre-sampler) must occupy the
        # clock-sensitivity position of the first process it replaces
        # (precedes), so registration happens before any controller.
        if self._system_wiring == "fused":
            self._fused_process = self.simulator.add_fused_process(
                "system_fused", _unbound_system_step, self.clock
            )
        elif self._system_wiring == "differential":
            self._check_pre_process = self.simulator.add_fused_process(
                "system_check_pre", _unbound_system_step, self.clock
            )
        register = self._system_wiring != "fused"
        for unit in self.model.comm_units.values():
            signals = self.unit_signals[unit.name]
            for controller in unit.controllers:
                accessor = SignalPortAccessor(self.simulator, signals,
                                              writer=f"{unit.name}.{controller.name}")
                instance = FsmInstance(controller.fsm, ports=accessor,
                                       mode=self.fsm_mode)
                self.controller_instances[f"{unit.name}.{controller.name}"] = instance
                if register:
                    self.simulator.add_clocked_process(
                        f"{unit.name}_{controller.name}_clked", instance.step,
                        self.clock,
                    )

    def _registry_for(self, module, software):
        registry = ServiceRegistry(module.name)
        for service_name in module.services_used():
            unit = self.model.unit_for(module.name, service_name)
            signals = self.unit_signals[unit.name]
            accessor_cls = CliPortAccessor if software else SignalPortAccessor
            accessor = accessor_cls(self.simulator, signals,
                                    writer=f"{module.name}.{service_name}")
            registry.add(
                ServiceInstance(
                    module.name, unit.service(service_name), unit.name, accessor,
                    trace=self.trace, time_fn=lambda: self.simulator.now,
                    fsm_mode=self.fsm_mode,
                )
            )
        return registry

    def _build_hardware(self):
        for module in self.model.hardware_modules():
            signals = {}
            for port in list(module.ports.values()) + list(module.internal_signals.values()):
                signal = self.simulator.add_signal(
                    f"{module.name}_{port.name}", init=port.initial, dtype=port.dtype
                )
                signals[port.name] = signal
            self.module_signals[module.name] = signals
            accessor = SignalPortAccessor(self.simulator, signals, writer=module.name)
            registry = self._registry_for(module, software=False)
            self.hw_adapters[module.name] = HardwareAdapter(
                module, self.simulator, self.clock, accessor, registry,
                fsm_mode=self.fsm_mode,
                register=self._system_wiring != "fused",
            )

    def _build_software(self):
        for module in self.model.software_modules():
            registry = self._registry_for(module, software=True)
            executor = SoftwareExecutor(module, registry,
                                        policy=self.activation_policy,
                                        fsm_mode=self.fsm_mode)
            self.sw_executors[module.name] = executor
            period = module.activation_period or self.sw_activation_period

            def activations(executor=executor, period=period):
                # Act-first loop with no side effects before the first
                # yield: a fresh generator stepped once behaves exactly
                # like the suspended one being resumed, so the process is
                # rearmable and sessions survive save()/restore().  The
                # first activation (one period after start) comes from the
                # kernel-armed first wait, and the single Timeout is reused
                # across iterations (wait conditions are immutable; the
                # kernel copies what it needs on suspend).
                tick = Timeout(period)
                while True:
                    if executor.finished:
                        return
                    executor.activate()
                    yield tick

            self.simulator.add_process(f"{module.name}_activation", activations,
                                       first_wait=Timeout(period),
                                       rearmable=True)

    # -------------------------------------------------------------------- run

    def run(self, until=None, max_time=None):
        """Build if needed, run the simulation and return a :class:`CosimResult`."""
        self.build()
        with TELEMETRY.span("cosim.run", cat="cosim", system=self.model.name,
                            kernel=self.kernel, fsm_mode=self.fsm_mode):
            end_time = self.simulator.run(until=until, max_time=max_time)
        result = CosimResult(self, end_time)
        if TELEMETRY.enabled:
            self._obs_record(result)
        return result

    def run_until_software_done(self, max_time=10_000_000, check_every=10_000):
        """Run until every software module finished (or *max_time* is hit).

        The completion check happens on an **absolute** time grid (the
        multiples of *check_every*), not relative to where the run started:
        a session resumed from a checkpoint therefore checks at exactly the
        instants an uninterrupted run would, which keeps the reported end
        time — and thus the whole result — identical.
        """
        self.build()
        with TELEMETRY.span("cosim.run_until_software_done", cat="cosim",
                            system=self.model.name, kernel=self.kernel,
                            fsm_mode=self.fsm_mode):
            while self.simulator.now < max_time:
                target = min(
                    ((self.simulator.now // check_every) + 1) * check_every,
                    max_time,
                )
                self.simulator.run(until=target)
                if all(executor.finished
                       for executor in self.sw_executors.values()):
                    break
                if self.simulator.now < target:
                    # No more activity is scheduled: nothing will finish.
                    break
        result = CosimResult(self, self.simulator.now)
        if TELEMETRY.enabled:
            self._obs_record(result)
        return result

    def _obs_record(self, result):
        """Flush run-over-run counter deltas into the telemetry registry.

        Sessions may be run repeatedly (checkpoint replay, incremental
        ``run(until=...)`` calls), so absolute counters are diffed against
        the previous flush — each simulated event is counted exactly once
        no matter how the run was sliced.
        """
        labels = {"kernel": self.kernel, "fsm_mode": self.fsm_mode,
                  "system_mode": self.system_tier or self.system_mode}
        metrics = TELEMETRY.metrics
        fsm = self.fsm_counters()
        current = {
            "compiled": fsm["compile_hits"],
            "interpreted": fsm["fallback"],
            "fused": fsm["system_compile_hits"],
            "transitions": fsm["transitions_fired"],
            "services": len(self.trace),
            "channels": self.trace.count(),
        }
        prev = self._obs_prev or {key: 0 for key in current}
        self._obs_prev = current
        metrics.counter("repro_cosim_runs_total", labels=labels,
                        help="Completed CosimSession runs.").inc()
        steps = metrics.counter
        for tier in ("compiled", "interpreted", "fused"):
            delta = current[tier] - prev[tier]
            if delta:
                steps("repro_cosim_fsm_steps_total",
                      labels=dict(labels, tier=tier),
                      help="FSM steps split by execution tier.").inc(delta)
        delta = current["transitions"] - prev["transitions"]
        if delta:
            steps("repro_cosim_fsm_transitions_total", labels=labels,
                  help="FSM transitions fired.").inc(delta)
        delta = current["services"] - prev["services"]
        if delta:
            steps("repro_cosim_service_calls_total", labels=labels,
                  help="Service invocations traced (incl. pending).",
                  ).inc(delta)
        delta = current["channels"] - prev["channels"]
        if delta:
            steps("repro_cosim_channel_transactions_total", labels=labels,
                  help="Completed channel/service transactions.").inc(delta)

    # ---------------------------------------------------------- save / resume

    def save(self):
        """Capture the whole session as a picklable checkpoint dict.

        The checkpoint holds the kernel snapshot plus every piece of
        backplane state the kernel does not own: controller and module FSM
        positions, software-executor and hardware-adapter counters, service
        instances, the service-call trace, the waveform recorder and any
        attached monitors.  Taken between runs; an unbuilt session is built
        (and started) first.

        Restoring (:meth:`restore`) requires a session constructed from an
        **equal model with equal parameters** — same kernel, clock and
        activation periods, policy, environment hooks and monitors — so the
        rebuilt structure matches; the resumed simulation then continues
        byte-identically to an uninterrupted run.
        """
        self.build()
        kernel_snapshot = self.simulator.snapshot()
        return {
            "format": 1,
            "system": self.model.name,
            "kernel": self.kernel,
            # Informational only: compiled and interpreted execution are
            # byte-identical, so a checkpoint restores into either tier.
            "fsm_mode": self.fsm_mode,
            # NOT informational: system wiring modes register different
            # kernel processes, so a checkpoint only restores into a
            # session wired the same way.
            "system_mode": self.system_mode,
            "system_counters": {
                "system_compile_hits": self.system_compile_hits,
                "system_fallback": self.system_fallback,
            },
            "clock_period": self.clock_period,
            "sw_activation_period": self.sw_activation_period,
            "policy": self.activation_policy.name,
            "simulator": kernel_snapshot,
            "controllers": {
                key: {
                    "instance": instance.capture_state(),
                    "accessor": (instance.ports.reads, instance.ports.writes),
                }
                for key, instance in self.controller_instances.items()
            },
            "sw_executors": {name: executor.capture_state()
                             for name, executor in self.sw_executors.items()},
            "hw_adapters": {name: adapter.capture_state()
                            for name, adapter in self.hw_adapters.items()},
            "trace": self.trace.capture_state(),
            "waveform": self.waveform.capture_state(),
            "monitors": {monitor.name: monitor.capture_state()
                         for monitor in self.monitors},
            "faults": {name: injector.capture_state()
                       for name, injector in self.fault_injectors.items()},
        }

    def restore(self, checkpoint):
        """Reset this session to a :meth:`save` checkpoint; returns self.

        The session must have been constructed from the same model with the
        same parameters (checked); it is built if needed, the kernel state
        is restored, and every backplane component is overwritten with its
        checkpointed state.  ``run()`` then resumes exactly where the saved
        session stopped.
        """
        if checkpoint.get("format") != 1:
            raise SimulationError(
                f"unsupported session checkpoint format "
                f"{checkpoint.get('format')!r}"
            )
        mismatches = [
            f"{what}: checkpoint has {theirs!r}, session has {ours!r}"
            for what, theirs, ours in (
                ("system", checkpoint["system"], self.model.name),
                ("kernel", checkpoint["kernel"], self.kernel),
                ("clock_period", checkpoint["clock_period"], self.clock_period),
                ("sw_activation_period", checkpoint["sw_activation_period"],
                 self.sw_activation_period),
                ("activation policy", checkpoint["policy"],
                 self.activation_policy.name),
                ("system_mode",
                 checkpoint.get("system_mode", self.system_mode),
                 self.system_mode),
            )
            if theirs != ours
        ]
        if mismatches:
            raise SimulationError(
                "checkpoint does not match this session — "
                + "; ".join(mismatches)
            )
        self.build()
        # Validate every membership BEFORE mutating anything: a restore
        # that raises must leave the session exactly as built, never in a
        # half-restored hybrid of checkpoint and fresh state.
        monitors = {monitor.name: monitor for monitor in self.monitors}
        for what, theirs, ours in (
            ("controllers", checkpoint["controllers"],
             self.controller_instances),
            ("software executors", checkpoint["sw_executors"],
             self.sw_executors),
            ("hardware adapters", checkpoint["hw_adapters"],
             self.hw_adapters),
            ("monitors", checkpoint["monitors"], monitors),
            ("fault plans", checkpoint.get("faults", {}),
             self.fault_injectors),
        ):
            if set(theirs) != set(ours):
                raise SimulationError(
                    f"checkpoint {what} do not match this session's: "
                    f"{sorted(theirs)} vs {sorted(ours)}"
                )
        self.simulator.restore(checkpoint["simulator"])
        for key, state in checkpoint["controllers"].items():
            instance = self.controller_instances[key]
            instance.restore_state(state["instance"])
            instance.ports.reads, instance.ports.writes = state["accessor"]
        for name, state in checkpoint["sw_executors"].items():
            self.sw_executors[name].restore_state(state)
        for name, state in checkpoint["hw_adapters"].items():
            self.hw_adapters[name].restore_state(state)
        self.trace.restore_state(checkpoint["trace"])
        self.waveform.restore_state(checkpoint["waveform"])
        for name, state in checkpoint["monitors"].items():
            monitors[name].restore_state(state)
        for name, state in checkpoint.get("faults", {}).items():
            self.fault_injectors[name].restore_state(state)
        counters = checkpoint.get("system_counters", {})
        self.system_compile_hits = counters.get("system_compile_hits", 0)
        self.system_fallback = counters.get("system_fallback", 0)
        return self

    # ------------------------------------------------------------------ query

    def fsm_instances(self):
        """Yield every FSM instance the session executes.

        Covers communication-unit controllers, hardware-module processes,
        software-module FSMs and every bound service instance — the complete
        population whose execution tier and counters the session owns.
        """
        yield from self.controller_instances.values()
        for adapter in self.hw_adapters.values():
            yield from adapter.instances.values()
            for service in adapter.registry.instances():
                yield service.instance
        for executor in self.sw_executors.values():
            yield executor.instance
            for service in executor.registry.instances():
                yield service.instance

    def fsm_counters(self):
        """Aggregate execution-tier counters across every FSM instance.

        ``steps`` / ``transitions_fired`` measure behavioural activity;
        ``compile_hits`` / ``fallback`` / ``system_compile_hits`` split the
        steps by execution tier (per-FSM compiled program, tree-walking
        interpreter, fused whole-system program), so a silent loss of a
        fast path shows up in artefacts, not just wall-clock.
        ``system_fallback`` counts candidate steps the fused program
        delegated back to the per-FSM tier at runtime (those steps also
        appear in ``compile_hits``/``fallback``); in a pure fused run
        ``steps == compile_hits + fallback + system_compile_hits``.
        """
        totals = {"steps": 0, "transitions_fired": 0,
                  "compile_hits": 0, "fallback": 0,
                  "system_compile_hits": self.system_compile_hits,
                  "system_fallback": self.system_fallback}
        for instance in self.fsm_instances():
            totals["steps"] += instance.steps
            totals["transitions_fired"] += instance.transitions_fired
            totals["compile_hits"] += instance.compile_hits
            totals["fallback"] += instance.fallback
        return totals

    def unit_signal(self, unit_name, port_name):
        """The simulation signal of a communication-unit port."""
        try:
            return self.unit_signals[unit_name][port_name]
        except KeyError:
            raise SimulationError(
                f"no signal for port {port_name!r} of unit {unit_name!r}"
            ) from None

    def module_signal(self, module_name, port_name):
        """The simulation signal of a hardware-module port or internal wire."""
        try:
            return self.module_signals[module_name][port_name]
        except KeyError:
            raise SimulationError(
                f"no signal for port {port_name!r} of module {module_name!r}"
            ) from None

    def software_executor(self, module_name):
        try:
            return self.sw_executors[module_name]
        except KeyError:
            raise SimulationError(f"no software module {module_name!r}") from None

    def hardware_adapter(self, module_name):
        try:
            return self.hw_adapters[module_name]
        except KeyError:
            raise SimulationError(f"no hardware module {module_name!r}") from None

    def __repr__(self):
        return (
            f"CosimSession({self.model.name}, built={self._built}, "
            f"t={self.simulator.now} ns)"
        )
