"""Tracing of service invocations during co-simulation.

The trace is the co-simulation counterpart of the paper's functional
validation: it records which module invoked which access procedure of which
communication unit, when the call started, when it completed and what value
travelled — enough to regenerate the Figure 5 interaction picture and to
compute per-service latency statistics for the protocol ablation.
"""

import math

from repro.utils.text import format_table


def _percentile(sorted_values, quantile):
    """Nearest-rank percentile of a pre-sorted non-empty sequence."""
    rank = max(1, math.ceil(quantile * len(sorted_values)))
    return sorted_values[rank - 1]


class ServiceCallRecord:
    """One completed (or still pending) service invocation."""

    def __init__(self, caller, service, unit, start_time, args=()):
        self.caller = caller
        self.service = service
        self.unit = unit
        self.start_time = start_time
        self.end_time = None
        self.args = tuple(args)
        self.result = None
        self.steps = 0

    @property
    def completed(self):
        return self.end_time is not None

    @property
    def latency(self):
        """Simulated nanoseconds between call start and completion."""
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    def __repr__(self):
        status = f"done@{self.end_time}" if self.completed else "pending"
        return (
            f"ServiceCallRecord({self.caller}->{self.service}@{self.unit}, "
            f"start={self.start_time}, {status})"
        )


class ServiceCallTrace:
    """Collects :class:`ServiceCallRecord` objects for a whole co-simulation."""

    def __init__(self):
        self.records = []
        self._open = {}

    def begin(self, caller, service, unit, time, args=(), token=None):
        """Record one step of an invocation (idempotent while pending).

        *token* distinguishes successive invocations of the same service by
        the same caller: the :class:`~repro.cosim.services.ServiceInstance`
        passes its completed-invocation count, so two back-to-back calls in
        one delta cycle open two records instead of merging into one (which
        would silently skew ``mean_latency``).  Without a token the legacy
        ``(caller, service)`` keying applies.
        """
        key = (caller, service, token)
        if key in self._open:
            record = self._open[key]
            record.steps += 1
            return record
        record = ServiceCallRecord(caller, service, unit, time, args)
        record.steps = 1
        self.records.append(record)
        self._open[key] = record
        return record

    def complete(self, caller, service, time, result=None, token=None):
        """Mark the pending invocation of (*caller*, *service*) as completed.

        *token* must match the one passed to :meth:`begin`.
        """
        key = (caller, service, token)
        record = self._open.pop(key, None)
        if record is None:
            return None
        record.end_time = time
        record.result = result
        return record

    # ------------------------------------------------------------------ query

    def completed(self, caller=None, service=None):
        """Completed records, optionally filtered by caller and/or service."""
        out = []
        for record in self.records:
            if not record.completed:
                continue
            if caller is not None and record.caller != caller:
                continue
            if service is not None and record.service != service:
                continue
            out.append(record)
        return out

    def count(self, caller=None, service=None):
        return len(self.completed(caller, service))

    def mean_latency(self, service=None, caller=None):
        """Average latency (ns) of completed invocations, or None."""
        records = self.completed(caller, service)
        if not records:
            return None
        return sum(record.latency for record in records) / len(records)

    def latency_stats(self, service=None, caller=None):
        """Latency distribution of completed invocations (simulated ns).

        Returns ``{"count", "mean", "p50", "p95", "max"}`` — the mean alone
        hides a slow tail (one saturated channel among many fast ones), so
        the percentiles travel everywhere the mean used to.  ``None`` when
        nothing completed.  Percentiles use the nearest-rank method on the
        sorted latencies, so they are exact observed values.
        """
        latencies = sorted(record.latency
                           for record in self.completed(caller, service))
        if not latencies:
            return None
        return {
            "count": len(latencies),
            "mean": sum(latencies) / len(latencies),
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "max": latencies[-1],
        }

    def latency_summary(self):
        """Per-service :meth:`latency_stats`, keyed by service name."""
        return {service: self.latency_stats(service=service)
                for service in self.services_seen()}

    # ----------------------------------------------------------- state access

    def capture_state(self):
        """Picklable copy of every record plus the pending-invocation index."""
        records = [
            {
                "caller": record.caller,
                "service": record.service,
                "unit": record.unit,
                "start_time": record.start_time,
                "end_time": record.end_time,
                "args": tuple(record.args),
                "result": record.result,
                "steps": record.steps,
            }
            for record in self.records
        ]
        index = {id(record): position
                 for position, record in enumerate(self.records)}
        open_keys = [(key, index[id(record)])
                     for key, record in self._open.items()]
        return {"records": records, "open": open_keys}

    def restore_state(self, state):
        """Overwrite the trace with a :meth:`capture_state` copy."""
        self.records = []
        for data in state["records"]:
            record = ServiceCallRecord(data["caller"], data["service"],
                                       data["unit"], data["start_time"],
                                       data["args"])
            record.end_time = data["end_time"]
            record.result = data["result"]
            record.steps = data["steps"]
            self.records.append(record)
        self._open = {tuple(key): self.records[position]
                      for key, position in state["open"]}

    def services_seen(self):
        return sorted({record.service for record in self.records})

    def as_table(self):
        """Textual interaction table (the Figure 5 transcript)."""
        rows = [
            (
                record.start_time,
                record.end_time if record.completed else "-",
                record.caller,
                record.service,
                record.unit,
                record.result if record.result is not None else "",
            )
            for record in self.records
        ]
        return format_table(
            ["start (ns)", "end (ns)", "caller", "service", "unit", "result"], rows
        )

    def __len__(self):
        return len(self.records)
