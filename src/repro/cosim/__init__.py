"""Co-simulation backplane.

Joint simulation of the software and hardware modules of a
:class:`~repro.core.model.SystemModel` on the discrete-event kernel of
:mod:`repro.desim`:

* communication-unit ports become simulation signals; their controllers run
  as clocked processes,
* hardware module processes run one FSM transition per clock edge,
* software modules are activated periodically and execute one transition per
  activation (the paper's synchronization rule),
* every service call goes through a per-caller service instance whose FSM is
  interpreted against the unit's signals — through the C-language-interface
  adapter for software callers (the SW simulation view) and directly for
  hardware callers (the HW view).

The entry point is :class:`~repro.cosim.session.CosimSession`.
"""

from repro.cosim.cli import CliPortAccessor, SignalPortAccessor
from repro.cosim.tracing import ServiceCallTrace, ServiceCallRecord
from repro.cosim.sync import ActivationPolicy, OneTransitionPerActivation, RunToIdle
from repro.cosim.sw_executor import SoftwareExecutor
from repro.cosim.hw_adapter import HardwareAdapter
from repro.cosim.session import CosimSession, CosimResult
from repro.cosim.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    classify_unit,
    plan_for_unit,
)

__all__ = [
    "CliPortAccessor",
    "SignalPortAccessor",
    "ServiceCallTrace",
    "ServiceCallRecord",
    "ActivationPolicy",
    "OneTransitionPerActivation",
    "RunToIdle",
    "SoftwareExecutor",
    "HardwareAdapter",
    "CosimSession",
    "CosimResult",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "classify_unit",
    "plan_for_unit",
]
