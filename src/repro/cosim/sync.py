"""Software activation policies (the ABL-SYNC ablation).

The paper's rule — one FSM transition per activation — gives precise
synchronization between software and hardware because the software can never
race ahead of the hardware state it just sampled.  The alternative policy
(:class:`RunToIdle`) executes transitions until the FSM stops making
progress within one activation; it is faster in activations but loses the
cycle-accurate interleaving, which the ablation benchmark quantifies.

Either way, each activation happens inside one kernel process run — the
policy trades simulated-time fidelity against activations, never against
kernel scheduling cost.
"""

from repro.utils.errors import SimulationError


class ActivationPolicy:
    """Decides how many FSM transitions one software activation may execute."""

    name = "abstract"

    def activate(self, instance, args=None):
        """Advance *instance*; return the list of StepResults produced."""
        raise NotImplementedError


class OneTransitionPerActivation(ActivationPolicy):
    """The paper's policy: exactly one FSM step per activation."""

    name = "one_transition"

    def activate(self, instance, args=None):
        return [instance.step(args)]


class RunToIdle(ActivationPolicy):
    """Execute steps until no transition fires (or a bound is reached)."""

    name = "run_to_idle"

    def __init__(self, max_steps_per_activation=64):
        if max_steps_per_activation < 1:
            raise SimulationError("max_steps_per_activation must be at least 1")
        self.max_steps = max_steps_per_activation

    def activate(self, instance, args=None):
        results = []
        for _ in range(self.max_steps):
            result = instance.step(args)
            results.append(result)
            if not result.fired or result.done:
                break
            if result.called is not None:
                # A pending service call: hardware time must advance before
                # the call can make progress, so the activation ends here.
                break
        return results
