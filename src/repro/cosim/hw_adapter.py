"""Execution of hardware modules during co-simulation.

Each process of a hardware module becomes a clocked simulation process: on
every rising clock edge it executes one FSM transition.  Port reads/writes
act directly on simulation signals (the HW view); service calls are
dispatched to the module's service instances, whose FSMs also act on the
communication unit's signals — exactly what the generated VHDL procedures
would do inside the process.
"""

from repro.ir.interp import FsmInstance


class HardwareAdapter:
    """Drives the processes of one hardware module inside a co-simulation."""

    def __init__(self, module, simulator, clock, accessor, registry,
                 fsm_mode=None, register=True):
        self.module = module
        self.simulator = simulator
        self.clock = clock
        self.accessor = accessor
        self.registry = registry
        self.instances = {}
        for fsm in module.behaviours():
            self.instances[fsm.name] = FsmInstance(
                fsm,
                ports=accessor,
                call_handler=registry.call_handler(),
                trace=False,
                mode=fsm_mode,
            )
        self.cycles = 0
        # register=False leaves the clocked process out: the session's
        # fused whole-system step (repro.ir.syscompile) drives the
        # instances and the cycle counter itself.
        if register:
            self._register()

    def _register(self):
        # The instance list is immutable after construction; binding it (and
        # the step methods) locally keeps the per-edge cost of an adapter
        # proportional to its FSM work, not to attribute traffic.
        steppers = [instance.step for instance in self.instances.values()]

        def on_posedge():
            self.cycles += 1
            for step in steppers:
                step()

        self.simulator.add_clocked_process(f"{self.module.name}_clked",
                                           on_posedge, self.clock)

    # ----------------------------------------------------------- state access

    def capture_state(self):
        """Picklable run-time state (FSM positions, counters, services)."""
        return {
            "cycles": self.cycles,
            "instances": {name: instance.capture_state()
                          for name, instance in self.instances.items()},
            "services": self.registry.capture_state(),
            "accessor": (self.accessor.reads, self.accessor.writes),
        }

    def restore_state(self, state):
        """Overwrite run-time state with a :meth:`capture_state` copy."""
        self.cycles = state["cycles"]
        for name, instance_state in state["instances"].items():
            self.instances[name].restore_state(instance_state)
        self.registry.restore_state(state["services"])
        self.accessor.reads, self.accessor.writes = state["accessor"]

    def process_state(self, process_name):
        """Current FSM state of one named process of the module."""
        return self.instances[process_name].current

    def process_variables(self, process_name):
        """Current variable values of one named process."""
        return dict(self.instances[process_name].env)

    def __repr__(self):
        states = {name: inst.current for name, inst in self.instances.items()}
        return f"HardwareAdapter({self.module.name}, cycles={self.cycles}, states={states})"
