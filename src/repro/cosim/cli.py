"""Port accessors bridging IR port operations onto simulation signals.

Two accessors exist on purpose, mirroring the paper's two simulation-time
views of a communication procedure:

* :class:`CliPortAccessor` — what the **SW simulation view** compiles to: the
  C-language interface of the VHDL simulator (``cliGetPortValue`` /
  ``cliOutput``).  Reads and writes are counted so the co-simulation report
  can show the SW/HW interface traffic.
* :class:`SignalPortAccessor` — what the **HW view** is: direct signal
  access inside the hardware simulation.

Functionally both act on the same signals; keeping them distinct preserves
the view boundary and lets tests assert that software only ever touches
hardware through the C-language interface.
"""

from repro.utils.errors import SimulationError


class SignalPortAccessor:
    """Direct signal access used by hardware processes and controllers."""

    def __init__(self, simulator, signal_map, writer=""):
        self._simulator = simulator
        self._signal_map = dict(signal_map)
        self.writer = writer
        self.reads = 0
        self.writes = 0

    def _signal(self, port_name):
        try:
            return self._signal_map[port_name]
        except KeyError:
            raise SimulationError(
                f"{self.writer or 'process'}: unknown port {port_name!r}"
            ) from None

    def read(self, port_name):
        self.reads += 1
        return self._signal(port_name).value

    def write(self, port_name, value):
        self.writes += 1
        self._simulator.schedule(self._signal(port_name), value, 0)

    def extend(self, signal_map):
        """Add more port-to-signal mappings (used when wiring environments)."""
        self._signal_map.update(signal_map)
        return self

    def known_ports(self):
        return sorted(self._signal_map)


class CliPortAccessor(SignalPortAccessor):
    """The simulator's C-language interface, as used by software callers.

    ``cli_get_port_value`` and ``cli_output`` are provided under their paper
    names so the SW simulation views read naturally; the generic
    ``read``/``write`` interface required by the IR interpreter simply
    delegates to them.
    """

    def cli_get_port_value(self, port_name):
        """``cliGetPortValue(map(PORT))`` of the paper's Figure 3b."""
        self.reads += 1
        return self._signal(port_name).value

    def cli_output(self, port_name, value):
        """``cliOutput(map(PORT), value)`` of the paper's Figure 3b."""
        self.writes += 1
        self._simulator.schedule(self._signal(port_name), value, 0)

    def read(self, port_name):
        return self.cli_get_port_value(port_name)

    def write(self, port_name, value):
        self.cli_output(port_name, value)
