"""Fault injection for co-simulation sessions.

A :class:`FaultPlan` is a deterministic timetable of fault events applied
to one communication unit's wires: forcing a signal (HDL ``force`` — see
:class:`repro.desim.signal.ForceValue`), releasing it, or resetting the
unit mid-transaction.  The plan is installed on a session with
:meth:`repro.cosim.session.CosimSession.add_fault_plan`; a rearmable
injector process then walks the timetable during the run.

Faults travel through the ordinary transaction queue, so a faulted run is
still deterministic and *differentially comparable*: the production and
reference kernels — and the compiled and interpreted FSM tiers — must
produce byte-identical results under the same plan.  What a fault may
legitimately change is the functional outcome (words delayed, dropped,
corrupted or duplicated); that is recorded as the *fault-survival* field
of the coverage scoreboard, never asserted by the conformance oracle.

The builders below map the protocol-level fault taxonomy onto wires:

``stuck_handshake``
    The consumer's acknowledge strobe is forced low for a window.  Both
    protocols stall and resume — a pure delay.  The blocking handshake's
    controller refuses the next word until it has seen the acknowledge go
    low; the decoupled FIFO controller pops only on an *observed rising
    edge* of the acknowledge and holds its offer back through a
    release-wait after each pop, so a forced-then-released acknowledge
    can stretch the exchange but never pop a word the consumer did not
    capture.  (Earlier revisions lost a word here to a stale acknowledge;
    the four-phase consumer side of
    :func:`repro.comm.protocols.fifo.make_fifo_controller` closed that.)
``dropped_handshake``
    The producer's ready strobe is forced low for a window.  The
    handshake protocol retries (delay only); the edge-detected FIFO push
    genuinely loses words strobed during the window.
``bus_contention``
    The data bus is forced to a contention pattern for a window; words
    latched meanwhile are corrupted.
``reset_mid_transaction``
    The unit's controllers and ports snap back to their initial state at
    one instant, abandoning any in-flight transaction.

Units without the named strobe (a shared register has no flow control)
degrade to forcing the register itself, which models the same class of
disturbance the protocol can express.
"""

from repro.desim import Timeout
from repro.desim.signal import ForceValue, ReleaseValue
from repro.utils.errors import SimulationError

#: Fault kinds understood by :func:`plan_for_unit`.
FAULT_KINDS = ("stuck_handshake", "dropped_handshake", "bus_contention",
               "reset_mid_transaction")

#: Alternating-bit pattern driven onto a contended data bus.
CONTENTION_VALUE = 0x5A5A

_EVENT_OPS = ("force", "release", "reset_unit")


class FaultEvent:
    """One timed fault operation on a unit port."""

    __slots__ = ("time", "op", "unit", "port", "value")

    def __init__(self, time, op, unit, port=None, value=None):
        if op not in _EVENT_OPS:
            raise SimulationError(
                f"unknown fault op {op!r}; expected one of {_EVENT_OPS}"
            )
        if time <= 0:
            raise SimulationError("fault events must be scheduled after time 0")
        self.time = time
        self.op = op
        self.unit = unit
        self.port = port
        self.value = value

    def as_dict(self):
        return {"time": self.time, "op": self.op, "unit": self.unit,
                "port": self.port, "value": self.value}

    def __repr__(self):
        return (f"FaultEvent(t={self.time}, {self.op}, "
                f"{self.unit}.{self.port})")


class FaultPlan:
    """A named, time-ordered list of :class:`FaultEvent`."""

    def __init__(self, name, events, kind=None):
        if not events:
            raise SimulationError(f"fault plan {name!r} has no events")
        self.name = name
        self.kind = kind
        self.events = sorted(events, key=lambda event: event.time)

    def spec(self):
        """Canonical dict identity of the plan (cache keys, job specs)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "events": [event.as_dict() for event in self.events],
        }

    def __repr__(self):
        return f"FaultPlan({self.name}, events={len(self.events)})"


def _port_by_suffix(unit, *suffixes):
    """First port of *unit* whose name ends with one of *suffixes*, or None.

    Suffixes include the separating underscore (``_FULL``), so the
    handshake's ``FULL`` never matches the FIFO's ``PFULL``.
    """
    for suffix in suffixes:
        for name in unit.ports:
            if name.endswith(suffix):
                return name
    return None


def classify_unit(unit):
    """Channel kind of a communication unit, from its port shape."""
    if _port_by_suffix(unit, "_PFULL"):
        return "fifo"
    if _port_by_suffix(unit, "_FULL"):
        return "handshake"
    if _port_by_suffix(unit, "_REG"):
        return "shared_reg"
    return "unit"


def default_fault_window(clock_period):
    """Default ``(at, duration)`` of a fault window, scaled to the clock.

    An absolute default would miss fast systems entirely (their transfers
    finish before the window opens); scaling by the clock lands the window
    mid-transfer whether the clock is 20 or 100 ns.  The +37 keeps the
    injection instant off the clock-edge grid.
    """
    return 11 * clock_period + 37, 29 * clock_period


def _window(name, kind, unit_name, port, value, at, duration):
    return FaultPlan(name, [
        FaultEvent(at, "force", unit_name, port, value),
        FaultEvent(at + duration, "release", unit_name, port),
    ], kind=kind)


def plan_for_unit(kind, unit, at=2_000, duration=1_500, name=None):
    """Build the :class:`FaultPlan` of fault *kind* against *unit*.

    *at*/*duration* are nanoseconds; ``reset_mid_transaction`` ignores
    *duration* (it is a single instant).
    """
    if kind not in FAULT_KINDS:
        raise SimulationError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
        )
    name = name or f"{kind}_{unit.name}"
    reg = _port_by_suffix(unit, "_REG")
    if kind == "reset_mid_transaction":
        return FaultPlan(name, [FaultEvent(at, "reset_unit", unit.name)],
                         kind=kind)
    if kind == "bus_contention":
        port = _port_by_suffix(unit, "_DATAIN") or reg
        if port is None:
            raise SimulationError(
                f"unit {unit.name!r} has no data port to contend"
            )
        return _window(name, kind, unit.name, port, CONTENTION_VALUE,
                       at, duration)
    strobe = "_GETACK" if kind == "stuck_handshake" else "_PUTRDY"
    port = _port_by_suffix(unit, strobe)
    if port is not None:
        return _window(name, kind, unit.name, port, 0, at, duration)
    if reg is not None:
        # No flow control to disturb: a stuck shared register models the
        # same wire-level fault class.
        return _window(name, kind, unit.name, reg,
                       unit.ports[reg].initial, at, duration)
    raise SimulationError(f"unit {unit.name!r} supports no {kind!r} fault")


class FaultInjector:
    """Rearmable process walking one :class:`FaultPlan` on a session.

    The whole run-time state is the event cursor, kept on the injector
    object (never in a generator frame), so faulted sessions survive
    ``save()``/``restore()``: a restored cursor plus the kernel's re-armed
    wait resume the timetable exactly where it stopped.
    """

    def __init__(self, session, plan):
        self.session = session
        self.plan = plan
        self.cursor = 0

    @property
    def process_name(self):
        return f"fault_{self.plan.name}"

    def install(self):
        """Register the injector process on the session's simulator."""
        simulator = self.session.simulator
        events = self.plan.events

        def injector():
            # Act-first loop: apply every event due now, then sleep until
            # the next one.  A fresh generator stepped once behaves exactly
            # like a resumed one, given the restored cursor.
            while True:
                while (self.cursor < len(events)
                       and events[self.cursor].time <= simulator.now):
                    self._apply(events[self.cursor])
                    self.cursor += 1
                if self.cursor >= len(events):
                    return
                yield Timeout(events[self.cursor].time - simulator.now)

        simulator.add_process(self.process_name, injector,
                              first_wait=Timeout(events[0].time),
                              rearmable=True)
        return self

    def _apply(self, event):
        session = self.session
        simulator = session.simulator
        if event.op == "force":
            simulator.schedule(session.unit_signal(event.unit, event.port),
                               ForceValue(event.value), 0)
        elif event.op == "release":
            simulator.schedule(session.unit_signal(event.unit, event.port),
                               ReleaseValue(), 0)
        else:  # reset_unit
            marker = f"{event.unit}."
            for key, instance in session.controller_instances.items():
                if key.startswith(marker):
                    instance.reset()
            unit = session.model.comm_units[event.unit]
            for port in unit.ports.values():
                simulator.schedule(session.unit_signal(event.unit, port.name),
                                   port.initial, 0)

    # ----------------------------------------------------------- state access

    def capture_state(self):
        return {"plan": self.plan.name, "cursor": self.cursor}

    def restore_state(self, state):
        if state["plan"] != self.plan.name:
            raise SimulationError(
                f"cannot restore fault injector state of {state['plan']!r} "
                f"into injector of {self.plan.name!r}"
            )
        self.cursor = state["cursor"]

    def __repr__(self):
        return (f"FaultInjector({self.plan.name}, "
                f"cursor={self.cursor}/{len(self.plan.events)})")
