"""Per-caller run-time instances of communication services.

Every (caller module, service) pair gets its own :class:`ServiceInstance`
because a service FSM keeps state between steps (it is in the middle of a
handshake); two modules calling the same service name on different units must
not share that state.  The instance also feeds the service-call trace.
"""

from repro.ir.interp import FsmInstance
from repro.utils.errors import SimulationError


class ServiceInstance:
    """The run-time state of one service as used by one caller."""

    def __init__(self, caller, service, unit_name, accessor, trace=None,
                 time_fn=None, fsm_mode=None):
        self.caller = caller
        self.service = service
        self.unit_name = unit_name
        self.accessor = accessor
        self.trace = trace
        self.time_fn = time_fn or (lambda: 0)
        self.instance = FsmInstance(service.fsm, ports=accessor,
                                    reset_on_done=True, mode=fsm_mode)
        self.invocations = 0
        self.total_steps = 0

    def step(self, arg_values):
        """Advance the service by one step; returns ``(done, result)``."""
        params = self.service.param_names
        if len(arg_values) != len(params):
            raise SimulationError(
                f"service {self.service.name!r} called with {len(arg_values)} "
                f"arguments, expected {len(params)}"
            )
        now = self.time_fn()
        # The completed-invocation count identifies the in-flight invocation:
        # it is constant across the steps of one call and advances on
        # completion, so two back-to-back calls in one delta cycle open two
        # distinct trace records instead of merging.
        token = self.invocations
        if self.trace is not None:
            self.trace.begin(self.caller, self.service.name, self.unit_name, now,
                             arg_values, token=token)
        self.total_steps += 1
        result = self.instance.step(dict(zip(params, arg_values)))
        if result.done:
            self.invocations += 1
            if self.trace is not None:
                self.trace.complete(self.caller, self.service.name, now,
                                    result.result, token=token)
        return result.done, result.result

    # ----------------------------------------------------------- state access

    def capture_state(self):
        """Picklable run-time state (service FSM position and counters)."""
        return {
            "instance": self.instance.capture_state(),
            "invocations": self.invocations,
            "total_steps": self.total_steps,
            "accessor": (self.accessor.reads, self.accessor.writes),
        }

    def restore_state(self, state):
        """Overwrite run-time state with a :meth:`capture_state` copy."""
        self.instance.restore_state(state["instance"])
        self.invocations = state["invocations"]
        self.total_steps = state["total_steps"]
        self.accessor.reads, self.accessor.writes = state["accessor"]

    def __repr__(self):
        return (
            f"ServiceInstance({self.caller}->{self.service.name}@{self.unit_name}, "
            f"invocations={self.invocations})"
        )


class ServiceRegistry:
    """All service instances of one caller module, keyed by service name."""

    def __init__(self, caller):
        self.caller = caller
        self._instances = {}

    def add(self, instance):
        self._instances[instance.service.name] = instance
        return instance

    def get(self, service_name):
        try:
            return self._instances[service_name]
        except KeyError:
            raise SimulationError(
                f"module {self.caller!r} has no bound service {service_name!r}"
            ) from None

    def call_handler(self):
        """Return the ``call_handler`` used by the caller's FsmInstance."""

        def handler(call, arg_values):
            return self.get(call.service).step(arg_values)

        return handler

    def instances(self):
        return list(self._instances.values())

    def capture_state(self):
        """Per-service run-time state of every instance (checkpointing)."""
        return {name: instance.capture_state()
                for name, instance in self._instances.items()}

    def restore_state(self, state):
        for name, instance_state in state.items():
            self.get(name).restore_state(instance_state)

    def __len__(self):
        return len(self._instances)
