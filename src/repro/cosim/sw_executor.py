"""Execution of software modules during co-simulation.

A software module is *activated* periodically by the backplane; each
activation runs its FSM according to the chosen
:class:`~repro.cosim.sync.ActivationPolicy` (the paper's default: one
transition).  Service calls inside the FSM are dispatched to the module's
:class:`~repro.cosim.services.ServiceRegistry`, whose instances execute the
service FSMs through the C-language-interface accessor — i.e. the SW
simulation view.

The backplane drives activations from a generator process yielding a
reused :class:`~repro.desim.events.Timeout` (see
:meth:`repro.cosim.session.CosimSession._build_software`); between
activations the executor costs the kernel nothing.
"""

from repro.cosim.sync import OneTransitionPerActivation
from repro.ir.interp import FsmInstance, NullPortAccessor


class SoftwareExecutor:
    """Drives one software module's FSM inside a co-simulation."""

    def __init__(self, module, registry, policy=None, ports=None, fsm_mode=None):
        self.module = module
        self.registry = registry
        self.policy = policy or OneTransitionPerActivation()
        self.instance = FsmInstance(
            module.fsm,
            ports=ports or NullPortAccessor(),
            call_handler=registry.call_handler(),
            trace=True,
            mode=fsm_mode,
        )
        self.activations = 0
        self.transitions = 0

    @property
    def finished(self):
        """True once the module FSM has entered one of its done states."""
        return self.instance.current in self.module.fsm.done_states

    @property
    def current_state(self):
        return self.instance.current

    def activate(self):
        """Run one activation; returns the StepResults it produced."""
        if self.finished:
            return []
        self.activations += 1
        results = self.policy.activate(self.instance)
        self.transitions += sum(1 for result in results if result.fired)
        return results

    def state_history(self):
        """Sequence of states visited, from the FSM instance trace.

        The trace is a ring buffer (``FsmInstance(history_limit=...)``): when
        a very long run has evicted its oldest entries, the reconstruction
        starts from the first *retained* step's source state instead of the
        initial state, so the returned sequence is always an accurate
        (possibly truncated-at-the-front) suffix — never a sequence that
        silently skips from the initial state to late-run states.
        """
        history = self.instance.history
        evicted = (history.maxlen is not None
                   and self.instance.steps > len(history))
        if evicted and history:
            visited = [history[0].from_state]
        else:
            visited = [self.module.fsm.initial]
        for result in history:
            if result.fired:
                visited.append(result.to_state)
        return visited

    def variables(self):
        """Current values of the module FSM's variables."""
        return dict(self.instance.env)

    # ----------------------------------------------------------- state access

    def capture_state(self):
        """Picklable run-time state (FSM position, counters, services)."""
        return {
            "instance": self.instance.capture_state(),
            "activations": self.activations,
            "transitions": self.transitions,
            "services": self.registry.capture_state(),
        }

    def restore_state(self, state):
        """Overwrite run-time state with a :meth:`capture_state` copy."""
        self.instance.restore_state(state["instance"])
        self.activations = state["activations"]
        self.transitions = state["transitions"]
        self.registry.restore_state(state["services"])

    def __repr__(self):
        return (
            f"SoftwareExecutor({self.module.name}, state={self.current_state}, "
            f"activations={self.activations})"
        )
