"""Job lifecycle behind the HTTP front: queue, states, pool, cache, ticks.

:class:`JobService` owns everything stateful: the bounded FIFO queue, the
job table, the shared :class:`~repro.utils.pool.WorkerPool` the executor
threads run jobs on, the :class:`~repro.sweep.cache.ArtifactCache` used
both to short-circuit warm resubmissions and to store fresh payloads, and
the tick-driven re-sweep schedules.  The HTTP layer
(:mod:`repro.server.http`) is a thin JSON shim over this class, so the
service is fully testable without a socket.

Design points:

* **Submission is cheap and synchronous.**  A spec is validated
  (``job_from_dict``) and, when the job is cacheable and its content key
  hits, answered ``done`` straight from the cache — a warm co-synthesis
  resubmission never touches the queue, let alone HLS.  Everything else
  is enqueued behind a hard ``queue_limit`` (raising
  :class:`QueueFullError` → HTTP 503 — back-pressure, not an unbounded
  buffer).
* **Execution preserves the sweep's purity rules.**  Jobs run in worker
  *processes* (one ``pool.map`` of one item per job, several executor
  threads feeding the shared pool), so records stay pure functions of
  their specs and a crashing job cannot take the service down.  Cache
  writes happen in the service process only, after collection — exactly
  like :class:`repro.sweep.service.SweepService`.
* **A dead worker fails one job, not the service.**  The pool surfaces a
  worker death as :class:`~repro.utils.pool.PoolError`; the executor
  marks its job ``failed`` and replaces the broken pool.  Jobs that were
  in flight on other workers of the same pool fail too (their processes
  were torn down with it) — they report the pool error and can simply be
  resubmitted.
"""

import itertools
import threading
import time

from repro.obs import TELEMETRY, prometheus_line
from repro.sweep.cache import ArtifactCache
from repro.sweep.jobs import job_from_dict
from repro.utils.errors import ReproError
from repro.utils.pool import PoolError, WorkerPool

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")


class QueueFullError(ReproError):
    """The bounded submission queue is at capacity (HTTP 503)."""


def _execute_job(job):
    """Worker-process entry: run one job, degrade library errors to records."""
    try:
        return job.execute()
    except ReproError as exc:
        return job.error_record(exc), None


class JobRecord:
    """One submitted job: spec, lifecycle state, outcome."""

    __slots__ = ("id", "job", "state", "source", "cache_key", "cached",
                 "record", "error", "submitted_at", "started_at",
                 "finished_at", "submitted_mono", "started_mono",
                 "finished_mono")

    def __init__(self, job_id, job, source):
        self.id = job_id
        self.job = job
        self.state = "queued"
        self.source = source
        self.cache_key = None
        self.cached = False
        self.record = None
        self.error = None
        # Wall-clock stamps are for display only; every *duration* is
        # computed from the monotonic twins below — time.time() may jump
        # (NTP step, clock slew) and must never feed a latency metric.
        self.submitted_at = time.time()
        self.started_at = None
        self.finished_at = None
        self.submitted_mono = time.monotonic()
        self.started_mono = None
        self.finished_mono = None

    def queue_wait_s(self):
        """Seconds from submission to execution start (monotonic), or None."""
        if self.started_mono is None:
            return None
        return self.started_mono - self.submitted_mono

    def run_s(self):
        """Seconds from execution start to finish (monotonic), or None."""
        if self.started_mono is None or self.finished_mono is None:
            return None
        return self.finished_mono - self.started_mono

    def summary(self):
        return {
            "id": self.id,
            "name": self.job.name,
            "kind": self.job.kind,
            "state": self.state,
            "cached": self.cached,
            "error": self.error,
        }

    def as_dict(self):
        data = self.summary()
        data.update({
            "spec": self.job.spec(),
            "source": self.source,
            "cacheable": bool(self.job.cacheable),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_wait_s": self.queue_wait_s(),
            "run_s": self.run_s(),
            "record": self.record,
        })
        return data


class JobService:
    """Queue, execute and account for co-design jobs; see the module doc."""

    def __init__(self, workers=2, queue_limit=64, cache=None,
                 schedules=None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.workers = workers
        self.queue_limit = queue_limit
        if isinstance(cache, str):
            cache = ArtifactCache(cache)
        self.cache = cache
        #: ``[{"name", "every", "jobs": [spec, ...]}, ...]`` — each entry
        #: enqueues its specs on every ``every``-th tick (default 1).
        self.schedules = list(schedules or [])
        for schedule in self.schedules:
            self._check_schedule(schedule)

        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._jobs = {}          # id -> JobRecord (insertion-ordered)
        self._queue = []         # FIFO of job ids (head at index 0)
        self._seq = itertools.count(1)
        self._threads = []
        self._pool = None
        self._stopping = False
        self._started_at = time.time()       # wall stamp, display only
        self._started_mono = time.monotonic()  # uptime source
        self._ticks = 0
        self._pool_replacements = 0
        self._fsm_totals = {"steps": 0, "transitions_fired": 0,
                            "compile_hits": 0, "fallback": 0,
                            "system_compile_hits": 0, "system_fallback": 0}

    @staticmethod
    def _check_schedule(schedule):
        if (not isinstance(schedule, dict) or "jobs" not in schedule
                or not isinstance(schedule["jobs"], list)):
            raise ValueError(
                f"schedule must be an object with a 'jobs' list: {schedule!r}"
            )
        if int(schedule.get("every", 1)) < 1:
            raise ValueError(f"schedule 'every' must be >= 1: {schedule!r}")
        for spec in schedule["jobs"]:
            job_from_dict(spec)  # validate eagerly, at configuration time

    # ------------------------------------------------------------- lifecycle

    def start(self):
        """Create the worker pool and the executor threads."""
        with self._lock:
            if self._threads:
                raise RuntimeError("service already started")
            self._stopping = False
            self._pool = WorkerPool(self.workers)
            for index in range(self.workers):
                thread = threading.Thread(target=self._executor_loop,
                                          name=f"job-executor-{index}",
                                          daemon=True)
                thread.start()
                self._threads.append(thread)
        return self

    def stop(self):
        """Stop the executors and tear the pool down (queued jobs stay)."""
        with self._wake:
            self._stopping = True
            self._wake.notify_all()
        for thread in self._threads:
            thread.join(timeout=30)
        self._threads = []
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()

    # ------------------------------------------------------------ submission

    def submit_spec(self, spec, source="http"):
        """Validate and enqueue one job spec; returns its :class:`JobRecord`.

        Raises ``ValueError`` for a malformed spec and
        :class:`QueueFullError` when the FIFO is at ``queue_limit``.
        Cacheable jobs whose content key hits are answered ``done``
        immediately, without queueing.
        """
        job = job_from_dict(spec)
        cached_payload = None
        cache_key = None
        if self.cache is not None and job.cacheable:
            cache_key = ArtifactCache.key_for(job.spec())
            with self._lock:
                cached_payload = self.cache.get(cache_key)
        with self._wake:
            record = JobRecord(f"job-{next(self._seq):06d}", job, source)
            record.cache_key = cache_key
            if cached_payload is not None:
                record.record = job.record_from_payload(cached_payload,
                                                        cached=True)
                record.cached = True
                record.state = "done"
                record.finished_at = time.time()
                record.finished_mono = time.monotonic()
                self._jobs[record.id] = record
                return record
            if len(self._queue) >= self.queue_limit:
                raise QueueFullError(
                    f"job queue is full ({self.queue_limit} queued); "
                    "retry after the backlog drains"
                )
            self._jobs[record.id] = record
            self._queue.append(record.id)
            self._wake.notify()
        return record

    def submit_body(self, body, source="http"):
        """Submit a decoded ``POST /jobs`` body: one spec or a list of specs.

        All-or-nothing: the whole batch is validated first and submitted
        under the lock; on a mid-batch :class:`QueueFullError` everything
        already accepted is rolled back, so a 503 never leaves half a
        batch queued.  Returns the list of :class:`JobRecord`.
        """
        specs = body if isinstance(body, list) else [body]
        if not specs:
            raise ValueError("empty job submission")
        for spec in specs:
            job_from_dict(spec)  # malformed entries reject the whole batch
        with self._lock:  # re-entrant: executors cannot interleave with us
            records = []
            try:
                for spec in specs:
                    records.append(self.submit_spec(spec, source=source))
            except QueueFullError:
                for record in records:
                    self._jobs.pop(record.id, None)
                    if record.id in self._queue:
                        self._queue.remove(record.id)
                raise
            return records

    # -------------------------------------------------------------- queries

    def get(self, job_id):
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self):
        with self._lock:
            return list(self._jobs.values())

    def artifact(self, job_id):
        """The cached payload of a finished cacheable job, or None."""
        record = self.get(job_id)
        if record is None or record.cache_key is None:
            return None
        with self._lock:
            return self.cache.get(record.cache_key)

    def metrics(self):
        with self._lock:
            by_state = {state: 0 for state in JOB_STATES}
            for record in self._jobs.values():
                by_state[record.state] += 1
            cache_stats = (dict(self.cache.stats)
                           if self.cache is not None else None)
            return {
                "format": 1,
                "queue": {
                    "depth": len(self._queue),
                    "limit": self.queue_limit,
                    "workers": self.workers,
                },
                "jobs": {
                    "submitted": len(self._jobs),
                    "by_state": by_state,
                    "cache_served": sum(
                        1 for record in self._jobs.values() if record.cached
                    ),
                },
                "cache": cache_stats,
                "fsm": dict(self._fsm_totals),
                "ticks": self._ticks,
                "schedules": len(self.schedules),
                "pool_replacements": self._pool_replacements,
                "started_at": self._started_at,
                "uptime_s": round(time.monotonic() - self._started_mono, 3),
            }

    def prometheus_metrics(self):
        """The :meth:`metrics` counters in Prometheus text exposition.

        Service-level gauges/counters are rendered by hand (they live in
        plain attributes, not the telemetry registry); when telemetry is
        enabled the process-wide registry — kernel, cosim, sweep, pool and
        HTTP instruments — is appended, so one scrape sees everything.
        """
        snapshot = self.metrics()
        lines = [
            "# TYPE repro_server_uptime_seconds gauge",
            prometheus_line("repro_server_uptime_seconds", None,
                            snapshot["uptime_s"]),
            "# TYPE repro_server_queue_depth gauge",
            prometheus_line("repro_server_queue_depth", None,
                            snapshot["queue"]["depth"]),
            "# TYPE repro_server_queue_limit gauge",
            prometheus_line("repro_server_queue_limit", None,
                            snapshot["queue"]["limit"]),
            "# TYPE repro_server_workers gauge",
            prometheus_line("repro_server_workers", None,
                            snapshot["queue"]["workers"]),
            "# TYPE repro_server_jobs_submitted_total counter",
            prometheus_line("repro_server_jobs_submitted_total", None,
                            snapshot["jobs"]["submitted"]),
            "# TYPE repro_server_jobs_by_state gauge",
        ]
        lines.extend(
            prometheus_line("repro_server_jobs_by_state", {"state": state},
                            count)
            for state, count in sorted(snapshot["jobs"]["by_state"].items())
        )
        lines.append("# TYPE repro_server_cache_served_total counter")
        lines.append(prometheus_line("repro_server_cache_served_total", None,
                                     snapshot["jobs"]["cache_served"]))
        lines.append("# TYPE repro_server_fsm_counter_total counter")
        lines.extend(
            prometheus_line("repro_server_fsm_counter_total",
                            {"counter": counter}, value)
            for counter, value in sorted(snapshot["fsm"].items())
        )
        lines.append("# TYPE repro_server_ticks_total counter")
        lines.append(prometheus_line("repro_server_ticks_total", None,
                                     snapshot["ticks"]))
        lines.append("# TYPE repro_server_pool_replacements_total counter")
        lines.append(prometheus_line("repro_server_pool_replacements_total",
                                     None, snapshot["pool_replacements"]))
        if snapshot["cache"] is not None:
            lines.append("# TYPE repro_server_cache_events_total counter")
            lines.extend(
                prometheus_line("repro_server_cache_events_total",
                                {"event": event}, value)
                for event, value in sorted(snapshot["cache"].items())
            )
        text = "\n".join(lines) + "\n"
        if TELEMETRY.enabled:
            text += TELEMETRY.metrics.to_prometheus()
        return text

    # ----------------------------------------------------------------- ticks

    def tick(self):
        """Advance the scheduler clock by one tick; enqueue due schedules."""
        with self._lock:
            self._ticks += 1
            tick = self._ticks
        enqueued, rejected = [], []
        for schedule in self.schedules:
            if tick % int(schedule.get("every", 1)):
                continue
            name = schedule.get("name", "schedule")
            for spec in schedule["jobs"]:
                try:
                    record = self.submit_spec(spec, source=f"tick:{name}")
                    enqueued.append(record.id)
                except QueueFullError as exc:
                    rejected.append(f"{name}: {exc}")
        return {"tick": tick, "enqueued": enqueued, "rejected": rejected}

    # ------------------------------------------------------------- execution

    def _executor_loop(self):
        while True:
            with self._wake:
                while not self._queue and not self._stopping:
                    self._wake.wait(timeout=0.2)
                if self._stopping:
                    return
                record = self._jobs[self._queue.pop(0)]
                record.state = "running"
                record.started_at = time.time()
                record.started_mono = time.monotonic()
                pool = self._pool
            try:
                outcome, payload = pool.map(_execute_job, [record.job],
                                            chunksize=1)[0]
            except PoolError as exc:
                self._replace_pool(pool)
                self._finish(record, None, error=str(exc))
                continue
            except Exception as exc:  # job unpicklable, worker bug, ...
                self._finish(record, None,
                             error=f"{type(exc).__name__}: {exc}")
                continue
            if (payload is not None and record.cache_key is not None):
                with self._lock:
                    self.cache.put(record.cache_key, payload)
            self._finish(record, outcome, error=outcome.get("error"))

    def _finish(self, record, outcome, error=None):
        with self._lock:
            record.record = outcome
            record.error = error
            record.state = "failed" if error else "done"
            record.finished_at = time.time()
            record.finished_mono = time.monotonic()
            if TELEMETRY.enabled:
                TELEMETRY.metrics.counter(
                    "repro_server_jobs_total",
                    labels={"kind": record.job.kind, "state": record.state},
                    help="Jobs finished by the server, by kind and state.",
                ).inc()
                wait, run = record.queue_wait_s(), record.run_s()
                if wait is not None:
                    TELEMETRY.metrics.histogram(
                        "repro_server_job_queue_wait_seconds",
                        help="Submission-to-start wait per executed job.",
                    ).observe(wait)
                if run is not None:
                    TELEMETRY.metrics.histogram(
                        "repro_server_job_run_seconds",
                        help="Start-to-finish run time per executed job.",
                    ).observe(run)
            fsm = (outcome or {}).get("fsm")
            if fsm:
                for key in self._fsm_totals:
                    self._fsm_totals[key] += fsm.get(key, 0)

    def _replace_pool(self, broken):
        """Swap the shared pool after a worker death (once per breakage)."""
        with self._lock:
            if self._pool is broken and not self._stopping:
                broken.terminate()
                self._pool = WorkerPool(self.workers)
                self._pool_replacements += 1

    def __repr__(self):
        with self._lock:
            return (f"JobService(workers={self.workers}, "
                    f"jobs={len(self._jobs)}, queued={len(self._queue)})")
