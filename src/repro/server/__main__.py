"""CLI for the job service: serve forever, or run the end-to-end selfcheck.

Serving::

    python -m repro.server --port 8080 --workers 2 \\
        --cache-dir /tmp/repro-cache --schedule schedules.json

``--schedule`` points at a JSON list of ``{"name", "every", "jobs"}``
objects; an external timer POSTing ``/tick`` drives them.

``--selfcheck`` boots the full stack — service, worker pool, HTTP server
on an ephemeral port — and exercises it with real ``urllib`` clients:
concurrent submissions of every job kind, polling to completion, the
artifact route, a warm cacheable resubmission (must be served from the
cache), the scheduler tick and the error statuses (400/404/503 paths via
a malformed spec and an unknown route).  Exit code 0 means the service
held up end to end; this is what ``make server-smoke`` runs.
"""

import argparse
import json
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

from repro.server.http import create_server
from repro.server.service import JobService

#: Wall-clock budget for the selfcheck's completion polls.
_SELFCHECK_TIMEOUT = 120


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Long-lived co-design job service over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="listen port (0 picks an ephemeral port)")
    parser.add_argument("--workers", type=int, default=2,
                        help="executor threads / worker processes")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="bounded FIFO capacity (full queue -> 503)")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache root (omit to disable caching)")
    parser.add_argument("--schedule", default=None, metavar="FILE",
                        help="JSON list of tick-driven re-sweep schedules")
    parser.add_argument("--verbose", action="store_true",
                        help="log each HTTP request to stderr")
    parser.add_argument("--selfcheck", action="store_true",
                        help="run the end-to-end service check and exit")
    return parser


def _load_schedules(path):
    if path is None:
        return None
    with open(path, "r", encoding="utf-8") as handle:
        schedules = json.load(handle)
    if not isinstance(schedules, list):
        raise ValueError(f"schedule file must hold a JSON list: {path}")
    return schedules


def serve(args):
    service = JobService(workers=args.workers, queue_limit=args.queue_limit,
                         cache=args.cache_dir,
                         schedules=_load_schedules(args.schedule))
    service.start()
    server = create_server(service, host=args.host, port=args.port,
                           verbose=args.verbose)
    host, port = server.server_address[:2]
    print(f"repro.server listening on http://{host}:{port} "
          f"({args.workers} workers, queue limit {args.queue_limit}, "
          f"cache {'on' if service.cache else 'off'})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
    return 0


# ------------------------------------------------------------------ selfcheck

class _Client:
    """Tiny urllib JSON client against one base URL."""

    def __init__(self, base):
        self.base = base

    def request(self, method, path, body=None):
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, body):
        return self.request("POST", path, body)


def _check(condition, message):
    if not condition:
        raise AssertionError(message)


def _wait_done(client, job_ids, timeout=_SELFCHECK_TIMEOUT):
    """Poll until every id is done; a failed job fails the check."""
    deadline = time.monotonic() + timeout
    pending = set(job_ids)
    while pending:
        _check(time.monotonic() < deadline,
               f"jobs {sorted(pending)} did not finish within {timeout}s")
        for job_id in sorted(pending):
            status, job = client.get(f"/jobs/{job_id}")
            _check(status == 200, f"GET /jobs/{job_id} -> {status}")
            if job["state"] == "failed":
                raise AssertionError(
                    f"{job_id} ({job['name']}) failed: {job['error']}")
            if job["state"] == "done":
                pending.discard(job_id)
        if pending:
            time.sleep(0.1)


def selfcheck(args):
    checks = 0

    def note(label):
        nonlocal checks
        checks += 1
        print(f"  [{checks:2d}] {label}")

    cosyn_spec = {"kind": "cosyn", "seed": 1, "networks": 1,
                  "platform": "pc_at_fpga"}
    with tempfile.TemporaryDirectory(prefix="repro-server-") as cache_dir:
        service = JobService(
            workers=args.workers, queue_limit=args.queue_limit,
            cache=cache_dir,
            schedules=[{"name": "resweep", "every": 2,
                        "jobs": [{"kind": "kernel", "size": "tiny",
                                  "seed": 5}]}],
        ).start()
        server = create_server(service, port=0, verbose=args.verbose)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = _Client(f"http://{host}:{port}")
        print(f"selfcheck against http://{host}:{port} "
              f"({args.workers} workers)")
        try:
            # Concurrent clients: one submission per thread, mixing single
            # specs and a batch, covering every job kind.
            bodies = [
                {"kind": "kernel", "size": "small", "seed": 3},
                [{"kind": "cosim", "seed": 2, "networks": 1},
                 {"kind": "conformance", "scenario": "kernel-tiny-1"}],
                cosyn_spec,
                {"kind": "dse", "seed": 0, "networks": 1,
                 "mode": "exhaustive", "platforms": ["pc_at_fpga"]},
            ]
            responses = [None] * len(bodies)

            def submit(index):
                responses[index] = client.post("/jobs", bodies[index])

            threads = [threading.Thread(target=submit, args=(index,))
                       for index in range(len(bodies))]
            for item in threads:
                item.start()
            for item in threads:
                item.join()
            job_ids = []
            for status, reply in responses:
                _check(status == 202, f"POST /jobs -> {status}: {reply}")
                job_ids.extend(job["id"] for job in reply["jobs"])
            _check(len(job_ids) == 5, f"expected 5 jobs, got {job_ids}")
            note(f"{len(bodies)} concurrent clients accepted "
                 f"({len(job_ids)} jobs)")

            _wait_done(client, job_ids)
            note("all jobs reached done")

            status, listing = client.get("/jobs")
            _check(status == 200 and len(listing["jobs"]) == 5,
                   f"GET /jobs -> {status}, {listing}")
            note("GET /jobs lists every submission")

            # The cacheable co-synthesis artifact is servable...
            cosyn_id = next(
                job["id"] for job in listing["jobs"]
                if job["kind"] == "cosyn")
            status, artifact = client.get(f"/jobs/{cosyn_id}/artifacts")
            _check(status == 200 and artifact["payload"]["ok"] is True,
                   f"artifacts -> {status}: {artifact.get('error')}")
            note("GET /jobs/<id>/artifacts serves the cosyn payload")

            # ...and a warm resubmission is answered from the cache without
            # queueing (state done immediately, cached flag set).
            status, reply = client.post("/jobs", cosyn_spec)
            warm = reply["jobs"][0]
            _check(status == 202 and warm["cached"] and
                   warm["state"] == "done",
                   f"warm resubmit not cache-served: {reply}")
            note("warm cosyn resubmission served from cache (no re-run)")

            # Scheduler: tick 1 is not due (every=2), tick 2 enqueues.
            status, first = client.post("/tick", {})
            status2, second = client.post("/tick", {})
            _check(status == 200 and first["enqueued"] == [],
                   f"tick 1 should enqueue nothing: {first}")
            _check(status2 == 200 and len(second["enqueued"]) == 1,
                   f"tick 2 should enqueue the schedule: {second}")
            _wait_done(client, second["enqueued"])
            note("POST /tick drives the re-sweep schedule")

            status, metrics = client.get("/metrics")
            _check(status == 200, f"GET /metrics -> {status}")
            for key in ("queue", "jobs", "cache", "fsm", "ticks",
                        "pool_replacements", "uptime_s"):
                _check(key in metrics, f"/metrics missing {key!r}")
            _check(metrics["jobs"]["by_state"]["done"] == 7,
                   f"expected 7 done jobs: {metrics['jobs']}")
            _check(metrics["jobs"]["cache_served"] == 1,
                   f"expected 1 cache-served job: {metrics['jobs']}")
            _check(metrics["cache"]["hits"] >= 1,
                   f"expected a cache hit: {metrics['cache']}")
            _check(metrics["fsm"]["compile_hits"] > 0,
                   f"expected compiled-tier activity: {metrics['fsm']}")
            _check(metrics["fsm"]["fallback"] == 0,
                   f"unexpected interpreter fallback: {metrics['fsm']}")
            _check(metrics["fsm"]["system_compile_hits"] > 0,
                   f"expected fused-tier activity: {metrics['fsm']}")
            _check(metrics["fsm"]["system_fallback"] == 0,
                   f"unexpected fused-step fallback: {metrics['fsm']}")
            _check(metrics["ticks"] == 2, f"expected 2 ticks: {metrics}")
            note("GET /metrics reports queue/cache/fsm counters")

            status, reply = client.post("/jobs", {"kind": "nonsense"})
            _check(status == 400, f"bad spec should 400, got {status}")
            status, reply = client.get("/nope")
            _check(status == 404, f"unknown route should 404, got {status}")
            status, reply = client.get("/jobs/job-999999")
            _check(status == 404, f"unknown job should 404, got {status}")
            note("error statuses: 400 bad spec, 404 unknown route/job")
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
    print(f"selfcheck OK ({checks} checks)")
    return 0


def main(argv=None):
    args = _build_parser().parse_args(argv)
    try:
        if args.selfcheck:
            return selfcheck(args)
        return serve(args)
    except AssertionError as error:
        print(f"selfcheck FAILED: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
