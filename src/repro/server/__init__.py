"""The long-lived co-design job service.

Everything the repository can do in batch — kernel scenario runs,
co-simulations, co-synthesis flows, conformance replays, partition
explorations (DSE) — is expressible as a :mod:`repro.sweep` job spec.
This package serves those specs over HTTP from a persistent process:

* ``POST /jobs`` accepts one spec or a list of specs (exactly the JSON
  entries ``python -m repro.sweep --jobs`` reads) and queues them behind
  a bounded FIFO;
* jobs execute on the shared :class:`repro.utils.pool.WorkerPool` and
  move through ``queued → running → done | failed``;
* ``GET /jobs``, ``GET /jobs/<id>`` and ``GET /jobs/<id>/artifacts``
  expose per-job status, deterministic records and the content-addressed
  payloads in the :class:`repro.sweep.cache.ArtifactCache` — a warm
  resubmission of a cacheable job (co-synthesis, DSE, coverage cosim) is
  served from the cache without re-running HLS;
* ``GET /metrics`` reports queue depth, jobs by state, cache hit/miss
  and the aggregated ``compile_hits``/``fallback`` execution-tier
  counters;
* ``POST /tick`` advances the scheduler: configured re-sweep schedules
  enqueue their job batches every N ticks, so an external timer (cron,
  CI) drives periodic conformance/coverage sweeps through the same
  queue.

The implementation is standard library only (``http.server`` +
``json``); see ``docs/server.md`` for the route and schema reference,
``python -m repro.server`` for the CLI and ``make server-smoke`` for the
end-to-end check.
"""

from repro.server.http import create_server
from repro.server.service import JobService, QueueFullError

__all__ = ["JobService", "QueueFullError", "create_server"]
