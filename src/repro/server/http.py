"""Thin JSON/HTTP shim over :class:`repro.server.service.JobService`.

Standard library only: ``http.server.ThreadingHTTPServer`` dispatches
each request on its own thread to a handler that translates routes into
``JobService`` calls and library errors into status codes:

====== ========================== ===========================================
Method Route                      Meaning
====== ========================== ===========================================
GET    ``/metrics``               service counters (queue, states, cache, fsm)
GET    ``/metrics/prometheus``    the same counters, Prometheus text format
                                  (also ``/metrics?format=prometheus``); when
                                  telemetry is on, the process registry too
GET    ``/jobs``                  summaries of every submitted job
GET    ``/jobs/<id>``             full record of one job (spec, state, record)
GET    ``/jobs/<id>/artifacts``   cached payload of a cacheable job
POST   ``/jobs``                  submit one spec or a list → 202 Accepted
POST   ``/tick``                  advance the re-sweep scheduler clock
====== ========================== ===========================================

Errors: malformed JSON or an invalid spec is 400, an unknown route or job
id is 404, a full queue is 503 (back-pressure — retry after the backlog
drains).  Every response body is a JSON object.
"""

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import TELEMETRY
from repro.server.service import QueueFullError


def _route_template(method, path):
    """Collapse a request path to its route template for metric labels.

    Job ids must not explode the label space, so ``/jobs/job-000123``
    becomes ``/jobs/{id}``; anything unrecognised is pooled under
    ``other`` rather than minting a label per probe path.
    """
    path = path.split("?", 1)[0].rstrip("/") or "/"
    if path in ("/metrics", "/metrics/prometheus", "/jobs", "/tick"):
        return path
    if path.startswith("/jobs/"):
        parts = path[len("/jobs/"):].split("/")
        if len(parts) == 1:
            return "/jobs/{id}"
        if len(parts) == 2 and parts[1] == "artifacts":
            return "/jobs/{id}/artifacts"
    return "other"


class JobRequestHandler(BaseHTTPRequestHandler):
    """Route HTTP requests to the :class:`JobService` in ``server.service``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-server/1"

    # ------------------------------------------------------------- responses

    def _send_body(self, status, body, content_type):
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status, payload):
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_body(status, body, "application/json")

    def _send_text(self, status, text):
        self._send_body(status, text.encode("utf-8"),
                        "text/plain; version=0.0.4; charset=utf-8")

    def _error(self, status, message):
        self._send_json(status, {"error": message})

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body (expected JSON)")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")

    # ----------------------------------------------------------------- routes

    def _observed(self, method, handler):
        """Run *handler*, timing it into the per-route request histogram."""
        if not TELEMETRY.enabled:
            handler()
            return
        self._status = 0
        start = time.perf_counter()
        try:
            handler()
        finally:
            elapsed = time.perf_counter() - start
            TELEMETRY.metrics.histogram(
                "repro_server_request_seconds",
                labels={"route": _route_template(method, self.path),
                        "method": method},
                help="HTTP request handling latency by route.",
            ).observe(elapsed)
            TELEMETRY.metrics.counter(
                "repro_server_responses_total",
                labels={"status": str(self._status)},
                help="HTTP responses by status code.",
            ).inc()

    def do_GET(self):
        self._observed("GET", self._handle_get)

    def do_POST(self):
        self._observed("POST", self._handle_post)

    def _handle_get(self):
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            if ("format=prometheus" in (self.path.split("?", 1) + [""])[1]):
                self._send_text(200, service.prometheus_metrics())
            else:
                self._send_json(200, service.metrics())
            return
        if path == "/metrics/prometheus":
            self._send_text(200, service.prometheus_metrics())
            return
        if path == "/jobs":
            self._send_json(200, {
                "jobs": [record.summary() for record in service.jobs()],
            })
            return
        if path.startswith("/jobs/"):
            parts = path[len("/jobs/"):].split("/")
            record = service.get(parts[0])
            if record is None:
                self._error(404, f"no such job: {parts[0]}")
                return
            if len(parts) == 1:
                self._send_json(200, record.as_dict())
                return
            if len(parts) == 2 and parts[1] == "artifacts":
                payload = service.artifact(record.id)
                if payload is None:
                    self._error(404, f"no cached artifact for {record.id} "
                                     "(job not cacheable, or not finished)")
                    return
                self._send_json(200, {"id": record.id,
                                      "cache_key": record.cache_key,
                                      "payload": payload})
                return
        self._error(404, f"unknown route: GET {self.path}")

    def _handle_post(self):
        service = self.server.service
        path = self.path.rstrip("/")
        if path == "/jobs":
            try:
                body = self._read_body()
                records = service.submit_body(body)
            except ValueError as exc:
                self._error(400, str(exc))
                return
            except QueueFullError as exc:
                self._error(503, str(exc))
                return
            self._send_json(202, {
                "accepted": len(records),
                "jobs": [record.summary() for record in records],
            })
            return
        if path == "/tick":
            self._send_json(200, service.tick())
            return
        self._error(404, f"unknown route: POST {self.path}")

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)


def create_server(service, host="127.0.0.1", port=0, verbose=False):
    """Bind a :class:`ThreadingHTTPServer` serving *service*.

    ``port=0`` picks an ephemeral port; read it back from
    ``server.server_address[1]``.  The caller owns both lifecycles:
    ``service.start()`` before serving, ``server.shutdown()`` +
    ``service.stop()`` to wind down.
    """
    server = ThreadingHTTPServer((host, port), JobRequestHandler)
    server.daemon_threads = True
    server.service = service
    server.verbose = verbose
    return server
