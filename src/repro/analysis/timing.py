"""Real-time constraint checking over recorded waveforms.

The motor controller's constraints are expressed on the pulse train the
hardware sends to the motor (minimum pulse period: the motor cannot step
faster) and on the response latency between a software command and the first
hardware reaction.
"""

from repro.utils.text import format_table


class PulseTimingReport:
    """Observed pulse-train timing versus its constraints."""

    def __init__(self, signal_name, edge_times, min_period_ns=None, max_period_ns=None):
        self.signal_name = signal_name
        self.edge_times = list(edge_times)
        self.min_period_ns = min_period_ns
        self.max_period_ns = max_period_ns
        self.periods = [
            later - earlier
            for earlier, later in zip(self.edge_times, self.edge_times[1:])
        ]
        self.violations = []
        for index, period in enumerate(self.periods):
            if min_period_ns is not None and period < min_period_ns:
                self.violations.append(
                    (self.edge_times[index + 1], f"period {period} ns < min {min_period_ns} ns")
                )
            if max_period_ns is not None and period > max_period_ns:
                self.violations.append(
                    (self.edge_times[index + 1], f"period {period} ns > max {max_period_ns} ns")
                )

    @property
    def pulse_count(self):
        return len(self.edge_times)

    @property
    def ok(self):
        return not self.violations

    @property
    def observed_min_period(self):
        return min(self.periods) if self.periods else None

    @property
    def observed_max_period(self):
        return max(self.periods) if self.periods else None

    def report(self):
        rows = [
            ("pulses", self.pulse_count),
            ("observed min period (ns)", self.observed_min_period),
            ("observed max period (ns)", self.observed_max_period),
            ("required min period (ns)", self.min_period_ns),
            ("required max period (ns)", self.max_period_ns),
            ("violations", len(self.violations)),
        ]
        return (f"pulse timing of {self.signal_name}\n"
                + format_table(["metric", "value"], rows))

    def __repr__(self):
        return f"PulseTimingReport({self.signal_name}, pulses={self.pulse_count}, ok={self.ok})"


def check_pulse_timing(waveform, signal_name, min_period_ns=None, max_period_ns=None,
                       level=1):
    """Build a :class:`PulseTimingReport` for a recorded signal."""
    edges = waveform.edge_times(signal_name, level=level)
    return PulseTimingReport(signal_name, edges, min_period_ns, max_period_ns)


class ResponseLatencyReport:
    """Latency between a stimulus event and the first response event."""

    def __init__(self, stimulus_time, response_time, max_latency_ns=None):
        self.stimulus_time = stimulus_time
        self.response_time = response_time
        self.max_latency_ns = max_latency_ns

    @property
    def latency(self):
        if self.stimulus_time is None or self.response_time is None:
            return None
        return self.response_time - self.stimulus_time

    @property
    def ok(self):
        if self.latency is None:
            return False
        if self.max_latency_ns is None:
            return True
        return self.latency <= self.max_latency_ns

    def __repr__(self):
        return f"ResponseLatencyReport(latency={self.latency}, ok={self.ok})"


def check_response_latency(stimulus_times, response_times, max_latency_ns=None):
    """Latency from the first stimulus to the first response at or after it."""
    stimulus = stimulus_times[0] if stimulus_times else None
    response = None
    if stimulus is not None:
        for time in response_times:
            if time >= stimulus:
                response = time
                break
    return ResponseLatencyReport(stimulus, response, max_latency_ns)
