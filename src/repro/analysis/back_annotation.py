"""Back-annotation of co-synthesis results into simulation parameters."""


class BackAnnotation:
    """Simulation parameters derived from a co-synthesis result.

    * ``hw_clock_ns`` — the clock period the synthesized hardware achieves,
    * ``sw_activation_ns`` — the worst-case software activation period on the
      target processor (including its port accesses over the bus),
    * per-module detail for reporting.
    """

    def __init__(self, hw_clock_ns, sw_activation_ns, hardware_detail, software_detail):
        self.hw_clock_ns = hw_clock_ns
        self.sw_activation_ns = sw_activation_ns
        self.hardware_detail = dict(hardware_detail)
        self.software_detail = dict(software_detail)

    def session_parameters(self):
        """Keyword arguments for a platform-timed CosimSession."""
        return {
            "clock_period": max(1, int(round(self.hw_clock_ns))),
            "sw_activation_period": max(
                1, int(round(self.sw_activation_ns)) or int(round(self.hw_clock_ns))
            ),
        }

    def slowdown_versus(self, functional_clock_ns=100):
        """How much slower the platform-timed run advances per hardware cycle."""
        return self.hw_clock_ns / functional_clock_ns

    def __repr__(self):
        return (
            f"BackAnnotation(hw_clock={self.hw_clock_ns} ns, "
            f"sw_activation={self.sw_activation_ns} ns)"
        )


def back_annotate(cosynthesis_result):
    """Build a :class:`BackAnnotation` from a co-synthesis result."""
    hardware_detail = {
        name: {
            "achievable_clock_ns": result.achievable_clock_ns,
            "clbs": result.estimate.clbs_total,
            "fits": result.fits_device,
        }
        for name, result in cosynthesis_result.hardware.items()
    }
    software_detail = {
        name: {
            "worst_activation_ns": result.worst_activation_ns,
            "code_size_bytes": result.code_size_bytes,
        }
        for name, result in cosynthesis_result.software.items()
    }
    return BackAnnotation(
        cosynthesis_result.system_clock_ns(),
        cosynthesis_result.software_activation_ns(),
        hardware_detail,
        software_detail,
    )
