"""Statistics over co-simulation traces."""

from repro.utils.text import format_table


class LatencyStats:
    """Min / mean / max latency of a set of completed service invocations."""

    def __init__(self, service, latencies):
        self.service = service
        self.latencies = list(latencies)

    @property
    def count(self):
        return len(self.latencies)

    @property
    def minimum(self):
        return min(self.latencies) if self.latencies else None

    @property
    def maximum(self):
        return max(self.latencies) if self.latencies else None

    @property
    def mean(self):
        if not self.latencies:
            return None
        return sum(self.latencies) / len(self.latencies)

    def as_row(self):
        return (self.service, self.count, self.minimum, round(self.mean, 1)
                if self.mean is not None else None, self.maximum)

    def __repr__(self):
        return f"LatencyStats({self.service}, n={self.count}, mean={self.mean})"


def service_latency_stats(trace, services=None):
    """Per-service latency statistics from a :class:`ServiceCallTrace`."""
    services = services or trace.services_seen()
    stats = {}
    for service in services:
        latencies = [record.latency for record in trace.completed(service=service)]
        stats[service] = LatencyStats(service, latencies)
    return stats


def latency_table(stats):
    """Render latency statistics as a text table."""
    rows = [stat.as_row() for _, stat in sorted(stats.items())]
    return format_table(["service", "calls", "min (ns)", "mean (ns)", "max (ns)"], rows)


def service_boundary_words(service):
    """Bus words one invocation of *service* touches (static estimate):
    each port its access procedure uses, once, floor one word."""
    return max(1, len(service.ports_used()))


def static_boundary_traffic(model, software_names=None):
    """Per-(module, service) bus-word estimate of the SW/HW boundary traffic.

    Where :func:`interface_traffic` counts completed transfers in a recorded
    co-simulation trace, this is the *static* counterpart used by the DSE
    cost model: every service call issued by a software module crosses the
    communication binding, touching each port its access procedure uses once
    per invocation.  Returns ``{(module, service): port_touches}``.

    *software_names* overrides the modules considered software — the DSE
    explorer passes a candidate placement without rebuilding the model.
    """
    if software_names is None:
        software_names = [m.name for m in model.software_modules()]
    traffic = {}
    for name in sorted(software_names):
        module = model.module(name)
        for service_name in module.services_used():
            unit = model.unit_for(name, service_name)
            service = unit.service(service_name)
            traffic[(name, service_name)] = service_boundary_words(service)
    return traffic


def interface_traffic(trace, unit_name=None):
    """Number of completed transfers per (caller, service) pair.

    When *unit_name* is given only calls through that communication unit are
    counted — this is the SW/HW interface traffic figure of the prototype
    analysis.
    """
    counts = {}
    for record in trace.completed():
        if unit_name is not None and record.unit != unit_name:
            continue
        key = (record.caller, record.service)
        counts[key] = counts.get(key, 0) + 1
    return counts
