"""Statistics over co-simulation traces."""

from repro.utils.text import format_table


class LatencyStats:
    """Min / mean / max latency of a set of completed service invocations."""

    def __init__(self, service, latencies):
        self.service = service
        self.latencies = list(latencies)

    @property
    def count(self):
        return len(self.latencies)

    @property
    def minimum(self):
        return min(self.latencies) if self.latencies else None

    @property
    def maximum(self):
        return max(self.latencies) if self.latencies else None

    @property
    def mean(self):
        if not self.latencies:
            return None
        return sum(self.latencies) / len(self.latencies)

    def as_row(self):
        return (self.service, self.count, self.minimum, round(self.mean, 1)
                if self.mean is not None else None, self.maximum)

    def __repr__(self):
        return f"LatencyStats({self.service}, n={self.count}, mean={self.mean})"


def service_latency_stats(trace, services=None):
    """Per-service latency statistics from a :class:`ServiceCallTrace`."""
    services = services or trace.services_seen()
    stats = {}
    for service in services:
        latencies = [record.latency for record in trace.completed(service=service)]
        stats[service] = LatencyStats(service, latencies)
    return stats


def latency_table(stats):
    """Render latency statistics as a text table."""
    rows = [stat.as_row() for _, stat in sorted(stats.items())]
    return format_table(["service", "calls", "min (ns)", "mean (ns)", "max (ns)"], rows)


def interface_traffic(trace, unit_name=None):
    """Number of completed transfers per (caller, service) pair.

    When *unit_name* is given only calls through that communication unit are
    counted — this is the SW/HW interface traffic figure of the prototype
    analysis.
    """
    counts = {}
    for record in trace.completed():
        if unit_name is not None and record.unit != unit_name:
            continue
        key = (record.caller, record.service)
        counts[key] = counts.get(key, 0) + 1
    return counts
