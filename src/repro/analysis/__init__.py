"""Evaluation and back-annotation helpers (the paper's stated future work).

The paper closes with "future work consists of developing tools for
evaluation and back-annotation with the results of co-synthesis tools"; this
package provides exactly that layer on top of the flow:

* :mod:`repro.analysis.metrics` — traffic/latency statistics extracted from
  co-simulation traces,
* :mod:`repro.analysis.timing` — real-time constraint checking over recorded
  waveforms,
* :mod:`repro.analysis.back_annotation` — turning co-synthesis estimates into
  simulation parameters for platform-timed re-simulation.
"""

from repro.analysis.metrics import service_latency_stats, interface_traffic, LatencyStats
from repro.analysis.timing import (
    PulseTimingReport,
    check_pulse_timing,
    ResponseLatencyReport,
    check_response_latency,
)
from repro.analysis.back_annotation import BackAnnotation, back_annotate

__all__ = [
    "service_latency_stats",
    "interface_traffic",
    "LatencyStats",
    "PulseTimingReport",
    "check_pulse_timing",
    "ResponseLatencyReport",
    "check_response_latency",
    "BackAnnotation",
    "back_annotate",
]
