"""Evaluation and back-annotation helpers (the paper's stated future work).

The paper closes with "future work consists of developing tools for
evaluation and back-annotation with the results of co-synthesis tools"; this
package provides exactly that layer on top of the flow:

* :mod:`repro.analysis.metrics` — traffic/latency statistics extracted from
  co-simulation traces,
* :mod:`repro.analysis.timing` — real-time constraint checking over recorded
  waveforms,
* :mod:`repro.analysis.back_annotation` — turning co-synthesis estimates into
  simulation parameters for platform-timed re-simulation.
"""

from repro.analysis.metrics import (
    LatencyStats,
    interface_traffic,
    service_boundary_words,
    service_latency_stats,
    static_boundary_traffic,
)
from repro.analysis.timing import (
    PulseTimingReport,
    check_pulse_timing,
    ResponseLatencyReport,
    check_response_latency,
)
from repro.analysis.back_annotation import BackAnnotation, back_annotate

__all__ = [
    "service_latency_stats",
    "interface_traffic",
    "service_boundary_words",
    "static_boundary_traffic",
    "LatencyStats",
    "PulseTimingReport",
    "check_pulse_timing",
    "ResponseLatencyReport",
    "check_response_latency",
    "BackAnnotation",
    "back_annotate",
]
