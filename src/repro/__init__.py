"""repro — a unified model for co-simulation and co-synthesis of mixed HW/SW systems.

Reproduction of C. A. Valderrama et al., "A Unified Model for Co-simulation
and Co-synthesis of Mixed Hardware/Software Systems", DATE 1995.

Package map
-----------

=================  ==========================================================
``repro.core``      the unified system model (modules, communication units,
                    services, multi-view library)
``repro.ir``        FSM-structured behavioural IR shared by all views
``repro.desim``     discrete-event simulation kernel (VHDL semantics)
``repro.hdl``       VHDL emission (HW views, behavioural architectures)
``repro.swc``       C emission (SW simulation and SW synthesis views)
``repro.comm``      library of communication units and view generation
``repro.platforms`` target platform models (PC-AT + ISA + XC4000, UNIX IPC,
                    micro-coded, multiprocessor)
``repro.cosim``     co-simulation backplane
``repro.cosyn``     co-synthesis flow (HLS, code generation, estimation,
                    coherence checking)
``repro.apps``      the Adaptive Motor Controller example
``repro.analysis``  evaluation and back-annotation helpers
=================  ==========================================================
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
