"""Sweep job descriptions.

A job is a small, picklable **recipe** — never a live model or simulator —
so it can travel to a worker process, serve as a cache key and appear in a
report verbatim.  Three kinds cover the project's workloads:

* :class:`KernelJob` — one generated kernel scenario
  (:class:`~repro.testkit.generator.KernelScenario`) run on one kernel,
  fingerprinted.
* :class:`CosimJob` — one generated system co-simulated to completion (or
  to a fixed horizon), functionally checked against the generator's
  expectations, fingerprinted; optionally executed through a mid-run
  checkpoint/restore round-trip (``checkpoint_at``), which by construction
  must not change the fingerprint.  ``batch=N`` runs N scenarios of the
  same generated system inside one job, amortizing model generation, lint
  pre-flight and whole-system compilation across the batch while keeping
  every per-scenario fingerprint byte-identical to a standalone run.
* :class:`CosynJob` — one generated system (optionally repartitioned, e.g.
  to a DSE Pareto candidate) co-synthesized on one platform.  The full
  artefact dict is the **cacheable payload**: the sweep service stores it
  content-addressed by the job spec, so repeated partitions never re-run
  HLS.
* :class:`ConformanceJob` — one named testkit scenario
  (``kernel-<size>-<seed>``, ``system-<seed>``, ``fault-<kind>-<seed>``,
  ``realtime-<seed>``) replayed through the differential conformance
  oracles; divergences surface as functional problems.
* :class:`DseJob` — one full partition exploration
  (:class:`~repro.dse.explorer.DesignSpaceExplorer`) of a generated
  system; the JSON exploration report (Pareto front + synthesis
  artefacts) is the cacheable payload.

``job.spec()`` is the job's identity (canonical, JSON-serializable);
``job.execute()`` returns ``(record, payload)`` where *record* is the
deterministic report entry and *payload* the cacheable artefact (or None).
"""

from repro.utils.canonical import content_digest


def _lint_preflight(model, no_lint):
    """Lint *model* before running a job; returns the report summary dict.

    Error-level findings abort the job with a
    :class:`~repro.utils.errors.ValidationError` (surfacing as the job's
    error record) unless *no_lint* is set, in which case the lint step is
    skipped entirely and ``None`` is recorded.  Warnings never refuse a
    job; they are visible in the recorded summary.
    """
    if no_lint:
        return None
    from repro.lint import lint_model
    from repro.utils.errors import ValidationError

    report = lint_model(model)
    errors = report.errors
    if errors:
        raise ValidationError(
            [diagnostic.legacy_text for diagnostic in errors],
            diagnostics=errors,
        )
    return report.summary()


class SweepJob:
    """Base class: identity, naming and error records shared by all kinds."""

    kind = None
    #: True when ``execute`` produces a payload the service may cache.
    cacheable = False

    def spec(self):
        """The job's canonical identity as a JSON-serializable dict."""
        raise NotImplementedError

    @property
    def name(self):
        raise NotImplementedError

    def execute(self):
        """Run the job; returns ``(record, payload_or_none)``."""
        raise NotImplementedError

    def error_record(self, exc):
        """Deterministic report entry for a job that raised *exc*."""
        record = dict(self.spec())
        record["name"] = self.name
        record["error"] = f"{type(exc).__name__}: {exc}"
        return record

    def _base_record(self):
        record = dict(self.spec())
        record["name"] = self.name
        record["error"] = None
        return record

    def __repr__(self):
        return f"{type(self).__name__}({self.name})"


class KernelJob(SweepJob):
    """Run one generated kernel scenario and fingerprint every observable."""

    kind = "kernel"

    def __init__(self, size, seed, kernel="production"):
        from repro.testkit.generator import SIZES

        if size not in SIZES:
            raise ValueError(f"unknown scenario size {size!r}; "
                             f"available: {sorted(SIZES)}")
        self.size = size
        self.seed = int(seed)
        self.kernel = kernel

    def spec(self):
        return {"kind": self.kind, "size": self.size, "seed": self.seed,
                "kernel": self.kernel}

    @property
    def name(self):
        return f"kernel-{self.size}-{self.seed}@{self.kernel}"

    def execute(self):
        from repro.testkit.generator import KernelScenario

        scenario = KernelScenario(self.seed, size=self.size)
        instance = scenario.build(self.kernel)
        instance.run()
        fingerprint = instance.fingerprint()
        record = self._base_record()
        record.update({
            "end_time": fingerprint["end_time"],
            "log_entries": len(fingerprint["log"]),
            "delta_cycles": fingerprint["statistics"]["delta_cycles"],
            "process_runs": fingerprint["statistics"]["process_runs"],
            "fingerprint_digest": content_digest(fingerprint),
        })
        return record, None


class CosimJob(SweepJob):
    """Co-simulate one generated system; check and fingerprint the outcome.

    With *until* unset the session runs to software completion
    (:func:`~repro.testkit.oracles.run_session_to_completion`) and the
    generator's functional expectations are checked; with *until* set it
    runs to that fixed horizon.  *checkpoint_at* (< *until* or < the
    completion horizon) routes execution through
    ``save()`` → fresh session → ``restore()`` mid-run: the recorded
    fingerprint digest must equal the uninterrupted variant's, which is
    exactly what the sweep's checkpoint tests pin.
    """

    kind = "cosim"

    def __init__(self, seed, networks=None, kernel="production", until=None,
                 checkpoint_at=None, fsm_mode=None, system_mode=None,
                 coverage=False, fault_kind=None, fault_unit_index=0,
                 no_lint=False, batch=None, fault_at_offset=0):
        self.seed = int(seed)
        self.networks = None if networks is None else int(networks)
        self.kernel = kernel
        # Resolved at construction so the job spec — the report/replay
        # identity — stays explicit even if the project default flips.
        if fsm_mode is None:
            from repro.ir.interp import DEFAULT_FSM_MODE
            fsm_mode = DEFAULT_FSM_MODE
        self.fsm_mode = fsm_mode
        if system_mode is None:
            from repro.ir.syscompile import DEFAULT_SYSTEM_MODE
            system_mode = DEFAULT_SYSTEM_MODE
        self.system_mode = system_mode
        self.batch = None if batch is None else int(batch)
        if self.batch is not None and self.batch < 1:
            raise ValueError("batch must be a positive scenario count")
        self.fault_at_offset = int(fault_at_offset)
        self.until = None if until is None else int(until)
        self.checkpoint_at = (None if checkpoint_at is None
                              else int(checkpoint_at))
        if self.checkpoint_at is not None and self.checkpoint_at <= 0:
            raise ValueError("checkpoint_at must be a positive time")
        if (self.checkpoint_at is not None and self.until is not None
                and self.checkpoint_at >= self.until):
            raise ValueError("checkpoint_at must lie before until")
        if self.checkpoint_at is not None and self.batch is not None:
            raise ValueError("checkpoint_at does not combine with batch; "
                             "checkpoint round-trips are a single-scenario "
                             "concern")
        self.coverage = bool(coverage)
        if fault_kind is not None:
            from repro.cosim.faults import FAULT_KINDS

            if fault_kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {fault_kind!r}; "
                                 f"available: {FAULT_KINDS}")
        self.fault_kind = fault_kind
        self.fault_unit_index = int(fault_unit_index)
        self.no_lint = bool(no_lint)
        # Coverage maps are deterministic and reasonably sized, so a
        # coverage-collecting run is worth caching: the record plus the
        # serialized map become the payload.
        self.cacheable = self.coverage

    def spec(self):
        return {
            "kind": self.kind,
            "seed": self.seed,
            "networks": self.networks,
            "kernel": self.kernel,
            "fsm_mode": self.fsm_mode,
            "system_mode": self.system_mode,
            "until": self.until,
            "checkpoint_at": self.checkpoint_at,
            "coverage": self.coverage,
            "fault_kind": self.fault_kind,
            "fault_unit_index": self.fault_unit_index,
            "no_lint": self.no_lint,
            "batch": self.batch,
            "fault_at_offset": self.fault_at_offset,
        }

    @property
    def name(self):
        suffix = f"x{self.networks}" if self.networks is not None else ""
        fault = f"+{self.fault_kind}" if self.fault_kind is not None else ""
        batch = f"*{self.batch}" if self.batch is not None else ""
        return f"cosim-{self.seed}{suffix}{fault}{batch}@{self.kernel}"

    def _session(self, system, model=None, scenario_index=0,
                 validate=True):
        from repro.cosim import CosimSession
        from repro.cosim.faults import default_fault_window, plan_for_unit

        if model is None:
            model = system.build_model()
        session = CosimSession(model, kernel=self.kernel,
                               fsm_mode=self.fsm_mode,
                               system_mode=self.system_mode,
                               validate=validate,
                               **system.cosim_params)
        if self.fault_kind is not None:
            units = list(session.model.comm_units.values())
            unit = units[self.fault_unit_index % len(units)]
            at, duration = default_fault_window(
                system.cosim_params["clock_period"])
            at += scenario_index * self.fault_at_offset
            session.add_fault_plan(plan_for_unit(self.fault_kind, unit,
                                                 at=at, duration=duration))
        return session

    def _run_scenario(self, system, model=None, scenario_index=0,
                      validate=True):
        """One co-simulated scenario; returns ``(entry, coverage_or_none)``.

        *entry* is the deterministic per-scenario report fragment — the
        same fields whether the scenario runs standalone or inside a
        batch, so batched fingerprints are directly comparable to
        sequential ones.
        """
        from repro.testkit.coverage import (
            CoverageMap,
            attach_session,
            coverage_universe,
            scoreboard,
        )
        from repro.testkit.oracles import (
            COSIM_MAX_TIME,
            check_functional_outcome,
            cosim_fingerprint,
            run_session_to_completion,
        )
        from repro.testkit.scenarios import FAULT_MAX_TIME

        coverage = CoverageMap() if self.coverage else None
        session = self._session(system, model=model,
                                scenario_index=scenario_index,
                                validate=validate)
        if coverage is not None:
            attach_session(session, coverage)
        if self.checkpoint_at is not None:
            session.run(until=self.checkpoint_at)
            checkpoint = session.save()
            session = self._session(system).restore(checkpoint)
            if coverage is not None:
                # Rewire the observers onto the restored instances; the
                # map keeps accumulating across the checkpoint boundary.
                attach_session(session, coverage, seed_states=False)
        max_time = (FAULT_MAX_TIME if self.fault_kind is not None
                    else COSIM_MAX_TIME)
        if self.until is None:
            result = run_session_to_completion(session, system.expectations,
                                               max_time=max_time)
            problems = check_functional_outcome(session, result,
                                                system.expectations,
                                                max_time=max_time)
        else:
            result = session.run(until=self.until)
            problems = None
        entry = {
            "end_time": result.end_time,
            "service_calls": len(result.trace),
            "sw_finished_all": all(result.sw_finished.values()),
            # A faulted run may legitimately miss its expectations; that is
            # the fault-survival signal, not an error.
            "functional_problems": (None if self.fault_kind is not None
                                    else problems),
            # Execution-tier counters: a sweep silently losing the compiled
            # fast path (per-FSM or whole-system) shows up here as
            # fallback/system_fallback > 0 or *_hits == 0.
            "fsm": dict(result.fsm_counters),
            "system_mode": result.system_mode,
            "fingerprint_digest": content_digest(
                cosim_fingerprint(session, result)
            ),
            "fault_survival": (not problems if self.fault_kind is not None
                               and self.until is None else None),
        }
        if coverage is not None:
            coverage.record_trace(result.trace)
            universe = coverage_universe(session.model)
            entry["scoreboard"] = scoreboard(
                coverage, universe,
                fault_survival=entry["fault_survival"],
            )
            entry["coverage_digest"] = coverage.digest()
        return entry, coverage

    def execute(self):
        from repro.testkit.models import generate_system

        system = generate_system(self.seed, networks=self.networks)
        if self.batch is None:
            lint = _lint_preflight(system.build_model(), self.no_lint)
            entry, coverage = self._run_scenario(system)
            record = self._base_record()
            record.update(entry)
            # Lint pre-flight summary (None when skipped via no_lint); an
            # error-level finding never reaches here — the job refuses.
            record["lint"] = lint
            coverages = [] if coverage is None else [coverage]
        else:
            # One model object serves the whole batch: generation, the lint
            # pre-flight and the whole-system compile (weakly cached per
            # model in repro.ir.syscompile) all happen once, which is where
            # the batched speed-up over N standalone jobs comes from.
            model = system.build_model()
            lint = _lint_preflight(model, self.no_lint)
            scenarios = []
            coverages = []
            for index in range(self.batch):
                # The shared model is validated once (scenario 0); model
                # validation is read-only, so skipping the re-check on the
                # same object cannot change any observable.
                entry, coverage = self._run_scenario(
                    system, model=model, scenario_index=index,
                    validate=index == 0)
                entry["index"] = index
                scenarios.append(entry)
                if coverage is not None:
                    coverages.append(coverage)
            record = self._base_record()
            fsm_totals = {}
            for entry in scenarios:
                for key, value in entry["fsm"].items():
                    fsm_totals[key] = fsm_totals.get(key, 0) + value
            survivals = [entry["fault_survival"] for entry in scenarios
                         if entry["fault_survival"] is not None]
            problems = [f"scenario {entry['index']}: {problem}"
                        for entry in scenarios
                        for problem in entry["functional_problems"] or ()]
            record.update({
                "scenarios": scenarios,
                "end_time": max(entry["end_time"] for entry in scenarios),
                "service_calls": sum(entry["service_calls"]
                                     for entry in scenarios),
                "sw_finished_all": all(entry["sw_finished_all"]
                                       for entry in scenarios),
                "functional_problems": (None if self.fault_kind is not None
                                        else problems),
                "fsm": fsm_totals,
                "system_mode": scenarios[0]["system_mode"],
                # The batch digest pins every per-scenario fingerprint.
                "fingerprint_digest": content_digest(
                    [entry["fingerprint_digest"] for entry in scenarios]
                ),
                "fault_survival": (sum(survivals) / len(survivals)
                                   if survivals else None),
                "lint": lint,
            })
        payload = None
        if coverages:
            record["cached"] = False
            identity = set(self.spec()) | {"name", "error"}
            payload = {
                "record": {key: value for key, value in record.items()
                           if key not in identity and key != "cached"},
                "coverage": (coverages[0].as_dict() if self.batch is None
                             else [cov.as_dict() for cov in coverages]),
            }
        return record, payload

    def record_from_payload(self, payload, cached):
        """Report entry for a cache-served coverage run."""
        record = self._base_record()
        record.update(payload["record"])
        record["cached"] = cached
        return record


class CosynJob(SweepJob):
    """Co-synthesize one generated system on one platform; cacheable.

    *hw_modules* overrides the generated partitioning (a sorted list of
    module names to place in hardware — the form DSE Pareto candidates
    arrive in); None keeps the generator's own partitioning.
    """

    kind = "cosyn"
    cacheable = True

    def __init__(self, seed, networks=None, platform="pc_at_fpga",
                 hw_modules=None, no_lint=False):
        self.seed = int(seed)
        self.networks = None if networks is None else int(networks)
        self.platform = platform
        self.hw_modules = (None if hw_modules is None
                           else sorted(str(name) for name in hw_modules))
        self.no_lint = bool(no_lint)

    def spec(self):
        return {
            "kind": self.kind,
            "seed": self.seed,
            "networks": self.networks,
            "platform": self.platform,
            "hw_modules": self.hw_modules,
            "no_lint": self.no_lint,
        }

    @property
    def name(self):
        suffix = f"x{self.networks}" if self.networks is not None else ""
        return f"cosyn-{self.seed}{suffix}@{self.platform}"

    def execute(self):
        from repro.cosyn import CosynthesisFlow
        from repro.dse.space import repartition
        from repro.platforms import get_platform
        from repro.testkit.models import generate_system

        system = generate_system(self.seed, networks=self.networks)
        model = system.build_model()
        if self.hw_modules is not None:
            model = repartition(model, self.hw_modules)
        # Lint the model actually synthesized (post-repartition): the
        # summary travels in the payload so a cache-served record carries
        # the same lint evidence as a fresh one.
        lint = _lint_preflight(model, self.no_lint)
        result = CosynthesisFlow(model, get_platform(self.platform)).run()
        payload = result.as_dict(include_text=True)
        payload["lint"] = lint
        return self.record_from_payload(payload, cached=False), payload

    def record_from_payload(self, payload, cached):
        """Report entry from an artefact payload (fresh or cache-served)."""
        record = self._base_record()
        record.update({
            "ok": payload["ok"],
            "problems": list(payload["problems"]),
            "total_clbs": payload["total_clbs"],
            "system_clock_ns": payload["system_clock_ns"],
            "hardware_modules": sorted(payload["hardware"]),
            "software_modules": sorted(payload["software"]),
            "lint": payload.get("lint"),
            "artifact_digest": content_digest(payload),
            "cached": cached,
        })
        return record


class ConformanceJob(SweepJob):
    """Replay one named conformance scenario through the differential kit.

    *scenario* is the testkit name (``kernel-<size>-<seed>``,
    ``system-<seed>``, ``fault-<kind>-<seed>``, ``realtime-<seed>``) —
    exactly what ``python -m repro.testkit --replay`` accepts.  Any
    divergence between kernels/tiers (or a missed functional expectation)
    lands in the record's ``functional_problems``, so a batch containing
    conformance jobs fails its report when conformance breaks.
    """

    kind = "conformance"

    def __init__(self, scenario, fsm_mode=None, system_mode=None):
        self.scenario = str(scenario)
        if fsm_mode is None:
            from repro.ir.interp import DEFAULT_FSM_MODE
            fsm_mode = DEFAULT_FSM_MODE
        self.fsm_mode = fsm_mode
        if system_mode is None:
            from repro.ir.syscompile import DEFAULT_SYSTEM_MODE
            system_mode = DEFAULT_SYSTEM_MODE
        self.system_mode = system_mode

    def spec(self):
        return {"kind": self.kind, "scenario": self.scenario,
                "fsm_mode": self.fsm_mode, "system_mode": self.system_mode}

    @property
    def name(self):
        return f"conformance-{self.scenario}"

    def execute(self):
        from repro.testkit.runner import replay

        problems = replay(self.scenario, fsm_mode=self.fsm_mode,
                          system_mode=self.system_mode)
        record = self._base_record()
        record.update({
            "ok": not problems,
            "functional_problems": list(problems),
        })
        return record, None


class DseJob(SweepJob):
    """One full hw/sw partition exploration of a generated system; cacheable.

    The exploration report — Pareto front with complete co-synthesis
    artefacts per winner — is a pure function of the spec (the search is
    seeded), so it is stored in the artefact cache like a synthesis run.
    Evaluation always runs serially inside the job: sweep/server workers
    are daemonic processes and may not spawn a nested pool; parallelism
    comes from running many jobs, not from inside one.
    """

    kind = "dse"
    cacheable = True

    def __init__(self, seed, networks=None, mode="auto", platforms=None,
                 search_seed=0, restarts=3, max_rounds=20):
        self.seed = int(seed)
        self.networks = None if networks is None else int(networks)
        if mode not in ("auto", "exhaustive", "heuristic"):
            raise ValueError(f"unknown DSE mode {mode!r}; "
                             "expected auto, exhaustive or heuristic")
        self.mode = mode
        self.platforms = (None if platforms is None
                          else sorted(str(name) for name in platforms))
        self.search_seed = int(search_seed)
        self.restarts = int(restarts)
        self.max_rounds = int(max_rounds)

    def spec(self):
        return {
            "kind": self.kind,
            "seed": self.seed,
            "networks": self.networks,
            "mode": self.mode,
            "platforms": self.platforms,
            "search_seed": self.search_seed,
            "restarts": self.restarts,
            "max_rounds": self.max_rounds,
        }

    @property
    def name(self):
        suffix = f"x{self.networks}" if self.networks is not None else ""
        return f"dse-{self.seed}{suffix}@{self.mode}"

    def execute(self):
        from repro.dse.explorer import DesignSpaceExplorer
        from repro.testkit.models import generate_system

        system = generate_system(self.seed, networks=self.networks)
        explorer = DesignSpaceExplorer(system.build_model(),
                                       platforms=self.platforms,
                                       cosim_params=system.cosim_params,
                                       expectations=system.expectations)
        report = explorer.explore(mode=self.mode, seed=self.search_seed,
                                  restarts=self.restarts,
                                  max_rounds=self.max_rounds)
        payload = report.as_dict()
        return self.record_from_payload(payload, cached=False), payload

    def record_from_payload(self, payload, cached):
        """Report entry from an exploration report (fresh or cache-served)."""
        record = self._base_record()
        record.update({
            "mode": payload["mode"],
            "platforms": list(payload["platforms"]),
            "evaluated": payload["evaluated"],
            "feasible": payload["feasible"],
            "front": [{"platform": entry["platform"],
                       "hw_modules": entry["hw_modules"]}
                      for entry in payload["front"]],
            "report_digest": content_digest(payload),
            "cached": cached,
        })
        return record


_JOB_KINDS = {
    KernelJob.kind: KernelJob,
    CosimJob.kind: CosimJob,
    CosynJob.kind: CosynJob,
    ConformanceJob.kind: ConformanceJob,
    DseJob.kind: DseJob,
}


def job_from_dict(data):
    """Build a job from its spec dict (the JSON job-file entry format)."""
    if not isinstance(data, dict):
        raise ValueError(f"job entry must be an object, got {data!r}")
    kwargs = dict(data)
    kind = kwargs.pop("kind", None)
    try:
        factory = _JOB_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown job kind {kind!r}; available: {sorted(_JOB_KINDS)}"
        ) from None
    try:
        return factory(**kwargs)
    except TypeError as exc:
        raise ValueError(f"bad {kind} job {data!r}: {exc}") from None


def jobs_from_dse_report(report, seed, networks=None):
    """Cosyn jobs for every Pareto-front candidate of a DSE report dict.

    The DSE report names the swept system but not the generator recipe
    that built it, so the caller supplies *seed*/*networks* (the values
    passed to ``python -m repro.dse``).
    """
    jobs = []
    for entry in report.get("front", ()):
        jobs.append(CosynJob(seed, networks=networks,
                             platform=entry["platform"],
                             hw_modules=entry["hw_modules"]))
    return jobs
