"""Content-addressed cache for synthesis artefacts.

Co-synthesis is the expensive leg of a sweep: a full
:class:`~repro.cosyn.flow.CosynthesisFlow` run re-does HLS for every
hardware module.  Its outcome, however, is a pure function of the job spec
(generator seed, networks, platform, partition), so the sweep service
caches each result's ``as_dict(include_text=True)`` payload under the
sha256 of the canonical-JSON job spec — repeated partitions never re-run
HLS, across batches *and* across processes.

Layout: ``<root>/<key[:2]>/<key>.json``, each file a JSON envelope::

    {"format": 1, "key": ..., "sha256": <digest of payload>, "payload": ...}

Writes are atomic (temp file + ``os.replace``), so a crashed writer never
leaves a half-written entry behind.  Reads verify the envelope: anything
unreadable, truncated or failing the payload checksum is **deleted and
treated as a miss** (counted in ``stats["invalidated"]``) — a corrupted
cache can cost time, never correctness.
"""

import json
import os
import tempfile

from repro.utils.canonical import canonical_json, content_digest

_FORMAT = 1


class ArtifactCache:
    """Content-addressed JSON payload store rooted at a directory."""

    def __init__(self, root):
        self.root = str(root)
        self.stats = {"hits": 0, "misses": 0, "writes": 0, "invalidated": 0}

    # ------------------------------------------------------------------- keys

    @staticmethod
    def key_for(spec):
        """Cache key of a JSON-serializable job *spec* (canonical sha256)."""
        return content_digest(spec)

    def _path(self, key):
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------ store

    def get(self, key):
        """Return the cached payload for *key*, or None on miss.

        A present-but-invalid entry (unparsable JSON, wrong envelope,
        checksum mismatch) is removed and reported as a miss.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="ascii") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._invalidate(path)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != _FORMAT
            or envelope.get("key") != key
            or envelope.get("sha256") != content_digest(envelope.get("payload"))
        ):
            self._invalidate(path)
            return None
        self.stats["hits"] += 1
        return envelope["payload"]

    def put(self, key, payload):
        """Store *payload* under *key* atomically; returns the payload."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        envelope = {
            "format": _FORMAT,
            "key": key,
            "sha256": content_digest(payload),
            "payload": payload,
        }
        descriptor, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="ascii") as handle:
                handle.write(canonical_json(envelope))
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.stats["writes"] += 1
        return payload

    def _invalidate(self, path):
        self.stats["misses"] += 1
        self.stats["invalidated"] += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    def __repr__(self):
        return f"ArtifactCache({self.root!r}, stats={self.stats})"
