"""Content-addressed cache for synthesis artefacts.

Co-synthesis is the expensive leg of a sweep: a full
:class:`~repro.cosyn.flow.CosynthesisFlow` run re-does HLS for every
hardware module.  Its outcome, however, is a pure function of the job spec
(generator seed, networks, platform, partition), so the sweep service
caches each result's ``as_dict(include_text=True)`` payload under the
sha256 of the canonical-JSON job spec — repeated partitions never re-run
HLS, across batches *and* across processes.

Layout: ``<root>/<key[:2]>/<key>.json``, each file a JSON envelope::

    {"format": 1, "key": ..., "sha256": <digest of payload>, "payload": ...}

Writes are atomic: the envelope is written to a uniquely-named temp file
*in the entry's own directory* and ``os.replace``-d over the destination,
so a crashed writer never leaves a half-written entry behind and two
processes ``put``-ing the same key concurrently simply race to
last-writer-wins — both write complete, checksummed envelopes.  Reads
tolerate a concurrent replace (an already-open handle keeps reading its
own consistent inode; a not-yet-present entry is a plain miss) and verify
the envelope: anything unreadable, truncated or failing the payload
checksum is **deleted and treated as a miss** (counted in
``stats["invalidated"]``).  Invalidation is inode-guarded so a reader that
saw a corrupt entry does not delete the fresh entry a concurrent writer
replaced it with (best-effort: the guard closes the race down to a
stat/unlink window, and losing that race costs a re-run, never
correctness) — a corrupted cache can cost time, never correctness.
"""

import json
import os
import tempfile

from repro.utils.canonical import canonical_json, content_digest

_FORMAT = 1


class ArtifactCache:
    """Content-addressed JSON payload store rooted at a directory."""

    def __init__(self, root):
        self.root = str(root)
        self.stats = {"hits": 0, "misses": 0, "writes": 0, "invalidated": 0}

    # ------------------------------------------------------------------- keys

    @staticmethod
    def key_for(spec):
        """Cache key of a JSON-serializable job *spec* (canonical sha256)."""
        return content_digest(spec)

    def _path(self, key):
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------ store

    def get(self, key):
        """Return the cached payload for *key*, or None on miss.

        A present-but-invalid entry (unparsable JSON, wrong envelope,
        checksum mismatch) is removed and reported as a miss.
        """
        path = self._path(key)
        stamp = None
        try:
            with open(path, "rb") as handle:
                # Identity of the inode actually read: a concurrent
                # os.replace() swaps the directory entry but never this
                # open handle, so the parse below sees one consistent
                # file — and invalidation can check it is still deleting
                # the entry it judged, not a fresh replacement.
                status = os.fstat(handle.fileno())
                stamp = (status.st_dev, status.st_ino)
                envelope = json.load(handle)
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._invalidate(path, stamp)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != _FORMAT
            or envelope.get("key") != key
            or envelope.get("sha256") != content_digest(envelope.get("payload"))
        ):
            self._invalidate(path, stamp)
            return None
        self.stats["hits"] += 1
        return envelope["payload"]

    def put(self, key, payload):
        """Store *payload* under *key* atomically; returns the payload."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        envelope = {
            "format": _FORMAT,
            "key": key,
            "sha256": content_digest(payload),
            "payload": payload,
        }
        descriptor, temp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="ascii") as handle:
                handle.write(canonical_json(envelope))
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.stats["writes"] += 1
        return payload

    def _invalidate(self, path, stamp=None):
        """Remove a bad entry; count the miss.

        *stamp* is the ``(st_dev, st_ino)`` identity of the inode the
        failed read actually saw.  When the directory entry no longer
        points at it — a concurrent ``put`` replaced the corrupt file
        with a fresh one — the unlink is skipped so the reader cannot
        half-invalidate its neighbour's good write.
        """
        self.stats["misses"] += 1
        self.stats["invalidated"] += 1
        try:
            if stamp is not None:
                status = os.stat(path)
                if (status.st_dev, status.st_ino) != stamp:
                    return
            os.unlink(path)
        except OSError:
            pass

    def __repr__(self):
        return f"ArtifactCache({self.root!r}, stats={self.stats})"
