"""Command-line entry of the scenario-sweep service.

Usage::

    python -m repro.sweep                        # default ≥100-job batch
    python -m repro.sweep --quick                # CI smoke batch
    python -m repro.sweep --kernel tiny=40 small=10 --cosim 20 --cosyn 8
    python -m repro.sweep --jobs jobs.json --workers 8 --out report.json
    python -m repro.sweep --from-dse dse_report.json --seed 0 --networks 9
    python -m repro.sweep --cache-dir .sweep-cache --cosyn 12
    python -m repro.sweep --selfcheck --quick    # parity + warm-cache check
    python -m repro.sweep --cosim 6 --coverage --fault-kinds stuck_handshake

``--coverage`` attaches a :class:`~repro.testkit.coverage.CoverageMap` to
every co-simulation job and records the per-job scoreboard (state/edge
coverage, fault survival) into the report; coverage jobs are cacheable,
so a ``--cache-dir`` sweep replays them from the artefact cache.
``--fault-kinds`` adds one faulted variant of every cosim seed per kind.

``--selfcheck`` runs the batch serially and on the pool, asserts the two
reports are byte-identical, then re-runs the cacheable jobs against the
warm cache and asserts zero re-synthesis.  Exit status is non-zero when a
job errors, a co-simulation misses its expected outcome, or a selfcheck
assertion fails.
"""

import argparse
import json
import sys
import tempfile
import time

from repro.cosim.faults import FAULT_KINDS
from repro.obs import TELEMETRY
from repro.sweep.cache import ArtifactCache
from repro.sweep.jobs import (
    CosimJob,
    CosynJob,
    KernelJob,
    job_from_dict,
    jobs_from_dse_report,
)
from repro.sweep.service import SweepService

#: Default batch: a ≥100-scenario mix across all three job kinds.
DEFAULT_KERNEL_TIER = (("tiny", 60), ("small", 20))
DEFAULT_COSIM_JOBS = 24
DEFAULT_COSYN_JOBS = 8

#: Smoke batch (< 30 s on two workers; wired into CI and pytest).
QUICK_KERNEL_TIER = (("tiny", 6),)
QUICK_COSIM_JOBS = 3
QUICK_COSYN_JOBS = 3


def _parse_kernel_tier(parser, pairs):
    tier = []
    for pair in pairs:
        size, _, count = pair.partition("=")
        if not count:
            parser.error(f"--kernel expects SIZE=COUNT, got {pair!r}")
        tier.append((size, int(count)))
    return tuple(tier)


def build_jobs(args, parser):
    """Translate the CLI source flags into the job list."""
    jobs = []
    explicit = (args.kernel is not None or args.cosim is not None
                or args.cosyn is not None or args.jobs is not None
                or args.from_dse is not None)

    if args.jobs is not None:
        with open(args.jobs) as handle:
            entries = json.load(handle)
        if not isinstance(entries, list):
            parser.error(f"{args.jobs}: expected a JSON list of job objects")
        jobs.extend(job_from_dict(entry) for entry in entries)
    if args.from_dse is not None:
        with open(args.from_dse) as handle:
            report = json.load(handle)
        dse_jobs = jobs_from_dse_report(report, args.seed_base,
                                        networks=args.networks)
        if not dse_jobs:
            parser.error(f"{args.from_dse}: report has no Pareto front entries")
        jobs.extend(dse_jobs)

    if explicit:
        kernel_tier = _parse_kernel_tier(parser, args.kernel or ())
        cosim_jobs = args.cosim or 0
        cosyn_jobs = args.cosyn or 0
    elif args.quick:
        kernel_tier = QUICK_KERNEL_TIER
        cosim_jobs = QUICK_COSIM_JOBS
        cosyn_jobs = QUICK_COSYN_JOBS
    else:
        kernel_tier = DEFAULT_KERNEL_TIER
        cosim_jobs = DEFAULT_COSIM_JOBS
        cosyn_jobs = DEFAULT_COSYN_JOBS

    for size, count in kernel_tier:
        for offset in range(count):
            jobs.append(KernelJob(size, args.seed_base + offset,
                                  kernel=args.sim_kernel))
    for offset in range(cosim_jobs):
        jobs.append(CosimJob(args.seed_base + offset, networks=args.networks,
                             kernel=args.sim_kernel, until=args.until,
                             checkpoint_at=args.checkpoint_at,
                             coverage=args.coverage, no_lint=args.no_lint))
        for kind in args.fault_kinds or ():
            jobs.append(CosimJob(args.seed_base + offset,
                                 networks=args.networks,
                                 kernel=args.sim_kernel,
                                 coverage=args.coverage,
                                 fault_kind=kind, no_lint=args.no_lint))
    for offset in range(cosyn_jobs):
        for platform in args.platforms:
            jobs.append(CosynJob(args.seed_base + offset,
                                 networks=args.networks, platform=platform,
                                 no_lint=args.no_lint))
    return jobs


def run_selfcheck(jobs, args):
    """Serial/parallel parity plus warm-cache zero-resynthesis assertions."""
    failures = []
    with tempfile.TemporaryDirectory(prefix="sweep-selfcheck-") as scratch:
        serial_cache = f"{scratch}/serial"
        parallel_cache = f"{scratch}/parallel"
        serial = SweepService(jobs, workers=1,
                              cache=ArtifactCache(serial_cache)).run()
        parallel = SweepService(jobs, workers=max(2, args.workers),
                                cache=ArtifactCache(parallel_cache)).run()
        if serial.to_json() != parallel.to_json():
            failures.append("serial and parallel reports are NOT byte-identical")
        else:
            print(f"parity: serial == parallel over {len(jobs)} jobs "
                  f"({max(2, args.workers)} workers)")

        cacheable = [job for job in jobs if job.cacheable]
        if cacheable:
            warm = SweepService(jobs, workers=1,
                                cache=ArtifactCache(serial_cache)).run()
            if warm.cosyn_executed() != 0:
                failures.append(
                    f"warm-cache re-run performed "
                    f"{warm.cosyn_executed()} re-synthesis runs (expected 0)"
                )
            elif warm.cosyn_cached() != len(cacheable):
                failures.append(
                    f"warm-cache re-run served {warm.cosyn_cached()} of "
                    f"{len(cacheable)} cacheable jobs from cache"
                )
            else:
                print(f"warm cache: {warm.cosyn_cached()}/{len(cacheable)} "
                      "cacheable jobs served from cache, zero re-synthesis")
        if not serial.ok:
            failures.append("batch reported errors/functional problems "
                            "(see report)")
            print(serial.summary())
    for failure in failures:
        print(f"selfcheck: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="batched scenario-sweep service",
    )
    source = parser.add_argument_group("job sources")
    source.add_argument("--kernel", nargs="*", metavar="SIZE=COUNT",
                        help="kernel scenario jobs per size band")
    source.add_argument("--cosim", type=int, metavar="N",
                        help="co-simulation jobs over generated systems")
    source.add_argument("--cosyn", type=int, metavar="N",
                        help="co-synthesis jobs over generated systems")
    source.add_argument("--jobs", metavar="FILE",
                        help="JSON file with a list of job spec objects")
    source.add_argument("--from-dse", metavar="FILE",
                        help="cosyn jobs from a DSE report's Pareto front "
                             "(combine with --seed-base/--networks of that "
                             "DSE run)")
    shape = parser.add_argument_group("job shaping")
    shape.add_argument("--seed-base", type=int, default=0,
                       help="shift every generated seed (default 0)")
    shape.add_argument("--networks", type=int, default=None,
                       help="networks per generated system (default: "
                            "random 1-3)")
    shape.add_argument("--sim-kernel", choices=("production", "reference"),
                       default="production",
                       help="kernel for simulation jobs (default production)")
    shape.add_argument("--platforms", nargs="+", metavar="NAME",
                       default=("pc_at_fpga",),
                       help="platforms for --cosyn jobs (default pc_at_fpga)")
    shape.add_argument("--until", type=int, default=None,
                       help="fixed horizon (ns) for cosim jobs "
                            "(default: run to software completion)")
    shape.add_argument("--checkpoint-at", type=int, default=None,
                       help="run cosim jobs through a save/restore "
                            "checkpoint at this time")
    shape.add_argument("--coverage", action="store_true",
                       help="collect FSM coverage on cosim jobs and record "
                            "the per-job scoreboard (makes them cacheable)")
    shape.add_argument("--fault-kinds", nargs="+", metavar="KIND",
                       choices=FAULT_KINDS, default=None,
                       help="additionally run each cosim seed under these "
                            f"fault kinds (choices: {', '.join(FAULT_KINDS)})")
    shape.add_argument("--no-lint", action="store_true",
                       help="skip the lint pre-flight on cosim/cosyn jobs "
                            "(error-level findings otherwise refuse the job)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes (default 4; 1 = serial)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="content-addressed artefact cache directory")
    parser.add_argument("--out", metavar="FILE",
                        help="write the JSON report to FILE")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke batch (< 30 s)")
    parser.add_argument("--selfcheck", action="store_true",
                        help="assert serial/parallel parity and warm-cache "
                             "behaviour instead of a plain run")
    parser.add_argument("--obs-out", metavar="FILE",
                        help="enable telemetry for the batch and write the "
                             "artefact (inspect with python -m repro.obs)")
    parser.add_argument("--verbose", action="store_true",
                        help="print one line per job")
    args = parser.parse_args(argv)

    try:
        jobs = build_jobs(args, parser)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not jobs:
        parser.error("no jobs to run (check the source flags)")

    if args.selfcheck:
        return run_selfcheck(jobs, args)

    cache = ArtifactCache(args.cache_dir) if args.cache_dir else None
    progress = print if args.verbose else None
    if args.obs_out:
        TELEMETRY.enable()
    started = time.perf_counter()
    report = SweepService(jobs, workers=args.workers, cache=cache).run(
        progress=progress
    )
    elapsed = time.perf_counter() - started

    print(report.summary())
    print(f"({elapsed:.1f} s wall clock, {args.workers} worker(s))")
    if args.obs_out:
        TELEMETRY.write(args.obs_out)
        print(f"telemetry artefact written to {args.obs_out}")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
