"""The batch scenario-sweep service.

:class:`SweepService` takes a queue of jobs (testkit generators, DSE Pareto
candidates, JSON job files — see :mod:`repro.sweep.jobs`), executes them
across a :class:`~repro.utils.pool.WorkerPool` and merges the outcomes into
a :class:`SweepReport` that is **byte-identical to a serial run**:

* records are merged in submission order (``Pool.map`` preserves it),
* every record is a pure function of its job spec (kernel determinism,
  synthesis purity),
* cache traffic happens only in the parent process — lookups before
  dispatch, writes after collection — so worker count can never change
  what is or is not cached.

Cacheable jobs (co-synthesis) are served from the
:class:`~repro.sweep.cache.ArtifactCache` when their content key hits:
a warm-cache re-run performs **zero** HLS re-synthesis.

Failures stay data: a job raising a :class:`~repro.utils.errors.ReproError`
becomes an ``error`` record at its slot (deterministically), never an
aborted batch.
"""

import json
import time

from repro.obs import TELEMETRY
from repro.sweep.cache import ArtifactCache
from repro.utils.errors import ReproError
from repro.utils.pool import WorkerPool
from repro.utils.text import format_table


def _execute_job(job):
    """Top-level worker entry: run one job, degrade errors to records."""
    try:
        return job.execute()
    except ReproError as exc:
        return job.error_record(exc), None


def _execute_job_stamped(job):
    """Worker entry carrying ``perf_counter`` stamps for the parent's trace.

    Telemetry a forked worker collects dies with the worker; what survives
    is this pair of monotonic stamps, from which the parent reconstructs
    the job span and the queue-wait/run-time split.
    """
    start = time.perf_counter()
    outcome = _execute_job(job)
    return outcome, start, time.perf_counter()


class SweepReport:
    """Deterministic outcome of one sweep batch."""

    def __init__(self, records, cache_stats=None):
        self.records = list(records)
        self.cache_stats = dict(cache_stats) if cache_stats is not None else None

    # ------------------------------------------------------------------ query

    @property
    def errors(self):
        return [record for record in self.records if record.get("error")]

    @property
    def functional_problems(self):
        problems = []
        for record in self.records:
            for problem in record.get("functional_problems") or ():
                problems.append(f"{record['name']}: {problem}")
        return problems

    @property
    def ok(self):
        """No job raised and no co-simulation missed its expected outcome."""
        return not self.errors and not self.functional_problems

    def by_kind(self):
        counts = {}
        for record in self.records:
            counts[record["kind"]] = counts.get(record["kind"], 0) + 1
        return counts

    def cosyn_executed(self):
        """Co-synthesis runs actually performed (cache misses + uncached)."""
        return sum(1 for record in self.records
                   if record["kind"] == "cosyn" and not record.get("cached")
                   and not record.get("error"))

    def cosyn_cached(self):
        return sum(1 for record in self.records if record.get("cached"))

    # ------------------------------------------------------------- rendering

    def as_dict(self):
        totals = {
            "jobs": len(self.records),
            "by_kind": self.by_kind(),
            "errors": len(self.errors),
            "functional_problems": len(self.functional_problems),
            "cosyn_executed": self.cosyn_executed(),
            "cosyn_cached": self.cosyn_cached(),
            "cache": self.cache_stats,
        }
        return {"format": 1, "jobs": self.records, "totals": totals}

    def to_json(self, indent=2):
        """Deterministic JSON rendering (byte-identical for equal batches)."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def summary(self, limit=12):
        """Human-readable digest: totals plus the first *limit* records."""
        rows = []
        for record in self.records[:limit]:
            if record.get("error"):
                outcome = f"ERROR: {record['error']}"
            elif record["kind"] == "cosyn":
                outcome = ("ok" if record["ok"] else "constraints") \
                    + (" [cached]" if record.get("cached") else "")
            elif record["kind"] == "cosim":
                problems = record.get("functional_problems")
                outcome = "ok" if not problems else f"{len(problems)} problems"
                outcome += f" @{record['end_time']} ns"
            elif record["kind"] == "conformance":
                problems = record.get("functional_problems")
                outcome = "ok" if not problems else f"{len(problems)} problems"
            elif record["kind"] == "dse":
                outcome = (f"front {len(record['front'])}"
                           + (" [cached]" if record.get("cached") else ""))
            else:
                outcome = f"@{record['end_time']} ns"
            rows.append((record["name"], record["kind"], outcome))
        table = format_table(["job", "kind", "outcome"], rows)
        kinds = ", ".join(f"{kind}: {count}"
                          for kind, count in sorted(self.by_kind().items()))
        lines = [
            f"sweep: {len(self.records)} jobs ({kinds}) — "
            + ("PASS" if self.ok else
               f"FAIL ({len(self.errors)} errors, "
               f"{len(self.functional_problems)} functional problems)"),
        ]
        if self.cache_stats is not None:
            lines.append(
                f"cache: {self.cache_stats['hits']} hits, "
                f"{self.cache_stats['misses']} misses, "
                f"{self.cache_stats['writes']} writes, "
                f"{self.cache_stats['invalidated']} invalidated "
                f"({self.cosyn_executed()} synthesis runs, "
                f"{self.cosyn_cached()} served from cache)"
            )
        if len(self.records) > limit:
            lines.append(f"(first {limit} of {len(self.records)} jobs shown)")
        lines.append(table)
        lines.extend(f"  - {problem}" for problem in self.functional_problems)
        lines.extend(f"  - {record['name']}: {record['error']}"
                     for record in self.errors)
        return "\n".join(lines)


class SweepService:
    """Executes one batch of sweep jobs; optionally pooled and cached."""

    def __init__(self, jobs, workers=1, cache=None):
        self.jobs = list(jobs)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if isinstance(cache, str):
            cache = ArtifactCache(cache)
        self.cache = cache

    def run(self, progress=None):
        """Execute every job and return the :class:`SweepReport`."""
        with TELEMETRY.span("sweep.batch", cat="sweep",
                            jobs=len(self.jobs), workers=self.workers):
            return self._run(progress)

    def _run(self, progress):
        def note(message):
            if progress is not None:
                progress(message)

        obs = TELEMETRY if TELEMETRY.enabled else None
        records = [None] * len(self.jobs)
        pending = []  # (slot, job, cache_key_or_None)
        for slot, job in enumerate(self.jobs):
            key = None
            if self.cache is not None and job.cacheable:
                key = ArtifactCache.key_for(job.spec())
                payload = self.cache.get(key)
                if payload is not None:
                    records[slot] = job.record_from_payload(payload,
                                                            cached=True)
                    if obs is not None:
                        self._obs_count(obs, job.kind, "cached")
                    note(f"[cache ] {job.name}: hit")
                    continue
            pending.append((slot, job, key))

        if pending:
            workers_used = min(self.workers, len(pending))
            note(f"[run   ] {len(pending)} jobs on {workers_used} worker(s)")
            dispatch_start = time.perf_counter()
            if self.workers > 1 and len(pending) > 1:
                with WorkerPool(self.workers) as pool:
                    stamped = pool.map(_execute_job_stamped,
                                       [job for _, job, _ in pending])
            else:
                stamped = [_execute_job_stamped(job)
                           for _, job, _ in pending]
            batch_seconds = time.perf_counter() - dispatch_start
            busy_seconds = 0.0
            for (slot, job, key), (outcome, start, end) in zip(pending,
                                                               stamped):
                record, payload = outcome
                records[slot] = record
                busy_seconds += end - start
                if obs is not None:
                    self._obs_job(obs, job, record, dispatch_start, start,
                                  end)
                if key is not None and payload is not None:
                    self.cache.put(key, payload)
                note(f"[done  ] {job.name}: "
                     f"{'ERROR' if record.get('error') else 'ok'}")
            if obs is not None and batch_seconds > 0:
                obs.metrics.gauge(
                    "repro_sweep_worker_utilization",
                    help="Busy fraction of the worker pool over the last "
                         "batch (total job run time / workers / wall time).",
                ).set(busy_seconds / (workers_used * batch_seconds))

        cache_stats = self.cache.stats if self.cache is not None else None
        return SweepReport(records, cache_stats=cache_stats)

    # ------------------------------------------------------------- telemetry

    @staticmethod
    def _obs_count(obs, kind, outcome):
        obs.metrics.counter(
            "repro_sweep_jobs_total", labels={"kind": kind,
                                              "outcome": outcome},
            help="Sweep jobs by kind and outcome (ok/error/cached).",
        ).inc()

    @staticmethod
    def _obs_job(obs, job, record, dispatch_start, start, end):
        """One executed job: span plus queue-wait/run-time histograms.

        The span is recorded post-hoc from the worker's stamps, so pooled
        and serial runs land in the same trace with real timings; *queue
        wait* is how long the job sat behind the dispatch point before a
        worker (or the serial loop) picked it up.
        """
        outcome = "error" if record.get("error") else "ok"
        SweepService._obs_count(obs, job.kind, outcome)
        obs.tracer.record("sweep.job", start, end, cat="sweep",
                          job=job.name, kind=job.kind, outcome=outcome)
        obs.metrics.histogram(
            "repro_sweep_job_seconds", labels={"kind": job.kind},
            help="Per-job run time (seconds, worker-side).",
        ).observe(end - start)
        obs.metrics.histogram(
            "repro_sweep_queue_wait_seconds",
            help="Dispatch-to-start wait per executed job (seconds).",
        ).observe(max(0.0, start - dispatch_start))
