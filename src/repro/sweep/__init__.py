"""Batched scenario-sweep service with snapshot/restore and artefact cache.

The sweep layer is the serving front of the reproduction: it takes a queue
of scenario/partition jobs — generated kernel scenarios, co-simulations,
co-synthesis runs (including DSE Pareto candidates) — and executes them
across a multiprocessing worker pool with reports **byte-identical to a
serial run**, while co-synthesis artefacts are cached content-addressed by
their job specs so repeated partitions never re-run HLS.  Long
co-simulations can be checkpointed (``CosimSession.save``/``restore`` over
``Simulator.snapshot``/``restore``) and warm-started mid-sweep.

Entry points::

    python -m repro.sweep                 # ≥100-job default batch, pooled
    python -m repro.sweep --quick         # CI smoke batch
    python -m repro.sweep --selfcheck     # parity + warm-cache assertions

See ``docs/sweep.md`` for the job format, cache layout and checkpoint
semantics.
"""

from repro.sweep.cache import ArtifactCache
from repro.sweep.jobs import (
    ConformanceJob,
    CosimJob,
    CosynJob,
    DseJob,
    KernelJob,
    SweepJob,
    job_from_dict,
    jobs_from_dse_report,
)
from repro.sweep.service import SweepReport, SweepService

__all__ = [
    "ArtifactCache",
    "ConformanceJob",
    "CosimJob",
    "CosynJob",
    "DseJob",
    "KernelJob",
    "SweepJob",
    "SweepReport",
    "SweepService",
    "job_from_dict",
    "jobs_from_dse_report",
]
