"""Fault-injection and real-time scenario families.

Two scenario families extending the conformance kit beyond the fault-free
functional runs of :mod:`repro.testkit.models`:

* :class:`FaultScenario` — a generated system with a
  :class:`~repro.cosim.faults.FaultPlan` installed against one of its
  communication units.  Faults may legitimately change the functional
  outcome (that is the point), so the oracle
  (:func:`check_fault_scenario`) asserts *determinism* and *kernel/tier
  conformance* only; whether the functional expectations survived is
  reported separately (:meth:`FaultScenario.survival`) and feeds the
  coverage scoreboard's fault-survival field.

* :class:`RealtimeScenario` — a generated system co-synthesised on a real
  platform, re-simulated with the back-annotated clock and activation
  periods under a load multiplier, and checked against deadlines derived
  from the annotation via :mod:`repro.analysis.timing`.  Deadline misses
  are counted, not asserted — they are the scoreboard's deadline-miss
  field.

Scenario names follow the testkit convention and replay from the CLI:
``fault-<kind>-<seed>`` and ``realtime-<seed>``.
"""

from repro.analysis.back_annotation import back_annotate
from repro.analysis.timing import check_pulse_timing, check_response_latency
from repro.cosim import CosimSession
from repro.cosim.faults import FAULT_KINDS, default_fault_window, plan_for_unit
from repro.cosyn import CosynthesisFlow
from repro.platforms import get_platform
from repro.testkit.models import generate_system
from repro.testkit.oracles import (
    check_functional_outcome,
    cosim_fingerprint,
    run_session_to_completion,
    variant_label,
    variant_matrix,
)
from repro.utils.errors import SimulationError

#: Completion horizon of faulted runs: generous for delay faults, bounded
#: for the genuinely lossy ones (a dropped FIFO strobe or a mid-transaction
#: reset may leave a network stuck forever by design).
FAULT_MAX_TIME = 120_000

#: Completion horizon of platform-timed real-time runs, in multiples of
#: the back-annotated software activation period.
REALTIME_HORIZON_ACTIVATIONS = 1_000


class FaultScenario:
    """One generated system plus one fault plan against one of its units."""

    def __init__(self, seed, kind="stuck_handshake", at=None, duration=None,
                 networks=None, unit_index=0):
        if kind not in FAULT_KINDS:
            raise SimulationError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        self.seed = seed
        self.kind = kind
        self.networks = networks
        self.unit_index = unit_index
        self.system = generate_system(seed, networks=networks)
        default_at, default_duration = default_fault_window(
            self.system.cosim_params["clock_period"])
        self.at = at if at is not None else default_at
        self.duration = duration if duration is not None else default_duration
        self.name = f"fault-{kind}-{seed}"

    def spec(self):
        return {
            "family": "fault",
            "seed": self.seed,
            "kind": self.kind,
            "at": self.at,
            "duration": self.duration,
            "networks": self.networks,
            "unit_index": self.unit_index,
        }

    def build_session(self, kernel="production", fsm_mode=None, coverage=None,
                      system_mode=None):
        """A fresh faulted session (built when *coverage* is attached)."""
        model = self.system.build_model()
        session = CosimSession(model, kernel=kernel, fsm_mode=fsm_mode,
                               system_mode=system_mode,
                               **self.system.cosim_params)
        units = list(model.comm_units.values())
        unit = units[self.unit_index % len(units)]
        session.add_fault_plan(plan_for_unit(self.kind, unit, at=self.at,
                                             duration=self.duration))
        if coverage is not None:
            from repro.testkit.coverage import attach_session
            attach_session(session, coverage)
        return session

    def run(self, kernel="production", fsm_mode=None, coverage=None,
            max_time=FAULT_MAX_TIME, system_mode=None):
        """Run to completion (or the horizon); returns ``(session, result)``."""
        session = self.build_session(kernel, fsm_mode=fsm_mode,
                                     coverage=coverage,
                                     system_mode=system_mode)
        result = run_session_to_completion(session, self.system.expectations,
                                           max_time=max_time)
        if coverage is not None:
            coverage.record_trace(result.trace)
        return session, result

    def survival(self, session, result, max_time=FAULT_MAX_TIME):
        """True when the functional expectations held despite the fault."""
        return not check_functional_outcome(session, result,
                                            self.system.expectations,
                                            max_time=max_time)


def check_fault_scenario(scenario, kernels=("production", "reference"),
                         fsm_mode=None, system_mode=None):
    """Differential oracle for one fault scenario; returns problem strings.

    Asserts seeded determinism per (kernel, tier) variant and byte-identical
    observables across the whole variant matrix — including the
    whole-system tiers when *system_mode* expands them — plus that the
    fault plan actually fired.  The functional outcome is *not* asserted
    (faults may break it) but must itself be identical everywhere, which
    the fingerprint comparison already guarantees.
    """
    variants = variant_matrix(kernels, fsm_mode, system_mode)

    def label(variant):
        return variant_label(variant, variants)

    problems = []
    fingerprints = {}
    for variant in variants:
        kernel, fmode, smode = variant
        session_a, result_a = scenario.run(kernel, fsm_mode=fmode,
                                           system_mode=smode)
        session_b, result_b = scenario.run(kernel, fsm_mode=fmode,
                                           system_mode=smode)
        fingerprint_a = cosim_fingerprint(session_a, result_a)
        fingerprint_b = cosim_fingerprint(session_b, result_b)
        for field in fingerprint_a:
            if fingerprint_a[field] != fingerprint_b[field]:
                problems.append(
                    f"{scenario.name}: {label(variant)} not deterministic "
                    f"under fault injection ({field} differs)"
                )
        for injector in session_a.fault_injectors.values():
            if injector.cursor == 0:
                problems.append(
                    f"{scenario.name}: fault plan {injector.plan.name!r} "
                    "never fired"
                )
        fingerprints[variant] = fingerprint_a
    baseline = variants[0]
    for variant in variants[1:]:
        for field in fingerprints[baseline]:
            if fingerprints[baseline][field] != fingerprints[variant][field]:
                problems.append(
                    f"{scenario.name}: {label(baseline)} vs {label(variant)} "
                    f"disagree on {field} under fault injection"
                )
    return problems


class RealtimeScenario:
    """Back-annotated platform timing under load, with deadline accounting."""

    def __init__(self, seed, load=2, deadline_factor=40, networks=None,
                 platform="pc_at_fpga"):
        self.seed = seed
        self.load = load
        self.deadline_factor = deadline_factor
        self.networks = networks
        self.platform = platform
        self.system = generate_system(seed, networks=networks)
        self.name = f"realtime-{seed}"

    def spec(self):
        return {
            "family": "realtime",
            "seed": self.seed,
            "load": self.load,
            "deadline_factor": self.deadline_factor,
            "networks": self.networks,
            "platform": self.platform,
        }

    def session_parameters(self):
        """Back-annotated cosim parameters with the load multiplier applied."""
        flow = CosynthesisFlow(self.system.build_model(),
                               get_platform(self.platform)).run()
        params = back_annotate(flow).session_parameters()
        # The kernel requires an even clock period; round up.
        params["clock_period"] += params["clock_period"] % 2
        params["sw_activation_period"] = (
            max(params["sw_activation_period"], params["clock_period"])
            * self.load
        )
        return params

    def run(self, kernel="production", fsm_mode=None, coverage=None,
            system_mode=None):
        """Run the platform-timed session; returns ``(session, result, report)``.

        The report carries the scoreboard inputs: the back-annotated
        deadline, the per-call deadline-miss count, the first-response
        latency check and the clock pulse-train check (both from
        :mod:`repro.analysis.timing`).
        """
        params = self.session_parameters()
        session = CosimSession(self.system.build_model(), kernel=kernel,
                               fsm_mode=fsm_mode, system_mode=system_mode,
                               **params)
        if coverage is not None:
            from repro.testkit.coverage import attach_session
            attach_session(session, coverage)
        deadline_ns = self.deadline_factor * params["sw_activation_period"]
        max_time = REALTIME_HORIZON_ACTIVATIONS * params["sw_activation_period"]
        result = run_session_to_completion(session, self.system.expectations,
                                           max_time=max_time)
        if coverage is not None:
            coverage.record_trace(result.trace)
        completed = [record for record in result.trace.records
                     if record.completed]
        misses = sum(1 for record in completed
                     if record.latency > deadline_ns)
        latency = check_response_latency(
            [record.start_time for record in completed],
            [record.end_time for record in completed],
            max_latency_ns=deadline_ns,
        )
        pulses = check_pulse_timing(result.waveform, "hwclk",
                                    min_period_ns=params["clock_period"],
                                    max_period_ns=params["clock_period"])
        report = {
            "clock_period": params["clock_period"],
            "sw_activation_period": params["sw_activation_period"],
            "deadline_ns": deadline_ns,
            "deadline_misses": misses,
            "calls_completed": len(completed),
            "first_response_ok": latency.ok,
            "clock_train_ok": pulses.ok,
            "finished": all(result.sw_finished.values()),
        }
        return session, result, report


def check_realtime_scenario(scenario, kernels=("production", "reference"),
                            fsm_mode=None, system_mode=None):
    """Differential oracle for one real-time scenario.

    Asserts determinism and kernel conformance of the platform-timed run
    *and* of its deadline report (the miss count is part of the observable
    contract), plus that the clock pulse train satisfies its own
    back-annotated period — the one timing property load cannot excuse.
    """
    variants = variant_matrix(kernels, fsm_mode, system_mode)

    def label(variant):
        return variant_label(variant, variants)

    problems = []
    fingerprints = {}
    reports = {}
    for variant in variants:
        kernel, fmode, smode = variant
        session_a, result_a, report_a = scenario.run(kernel, fsm_mode=fmode,
                                                     system_mode=smode)
        session_b, result_b, report_b = scenario.run(kernel, fsm_mode=fmode,
                                                     system_mode=smode)
        fingerprint_a = cosim_fingerprint(session_a, result_a)
        fingerprint_b = cosim_fingerprint(session_b, result_b)
        for field in fingerprint_a:
            if fingerprint_a[field] != fingerprint_b[field]:
                problems.append(
                    f"{scenario.name}: {label(variant)} platform-timed run "
                    f"not deterministic ({field} differs)"
                )
        if report_a != report_b:
            problems.append(
                f"{scenario.name}: {label(variant)} deadline report not "
                "deterministic"
            )
        if not report_a["clock_train_ok"]:
            problems.append(
                f"{scenario.name}: {label(variant)} clock pulse train "
                "violates the back-annotated period"
            )
        fingerprints[variant] = fingerprint_a
        reports[variant] = report_a
    baseline = variants[0]
    for variant in variants[1:]:
        for field in fingerprints[baseline]:
            if fingerprints[baseline][field] != fingerprints[variant][field]:
                problems.append(
                    f"{scenario.name}: {label(baseline)} vs {label(variant)} "
                    f"disagree on {field} in the platform-timed run"
                )
        if reports[baseline] != reports[variant]:
            problems.append(
                f"{scenario.name}: {label(baseline)} vs {label(variant)} "
                "disagree on the deadline report"
            )
    return problems
