"""Seeded random generation of complete system models.

Where :mod:`repro.testkit.generator` exercises the kernel directly, this
module generates whole :class:`~repro.core.model.SystemModel` instances —
the inputs of the paper's Figure 1 loop — so the co-simulation backplane
and the co-synthesis flow can be oracle-checked at scale.

A generated system is a set of independent *networks*, each either a
producer → consumer pair or a producer → relay → consumer pipeline, wired
through a randomly chosen channel kind (handshake, FIFO, shared register).
Every module is randomly partitioned to hardware or software (at least one
software module always exists so ``run_until_software_done`` terminates on
completion, not on the time limit).

For the lossless channel kinds the expected functional outcome is computed
at generation time: every consumer must report exactly the words sent and
their arithmetic-series sum.  Shared-register channels are lossy by design,
so only structural and determinism invariants apply to them.
"""

import random

from repro.comm import fifo_channel, handshake_channel, shared_register_channel
from repro.core import HardwareModule, SoftwareModule, SystemModel
from repro.ir import INT, Assign, FsmBuilder, var
from repro.ir.dtypes import word_type

#: Channel kinds with their factory and losslessness.
CHANNEL_KINDS = {
    "handshake": (handshake_channel, True),
    "fifo": (fifo_channel, True),
    "shared": (shared_register_channel, False),
}


class GeneratedSystem:
    """A generated model plus everything needed to check and re-run it."""

    def __init__(self, seed, builder, expectations, cosim_params, summary,
                 sw_only=()):
        self.seed = seed
        self.name = f"system-{seed}"
        self._builder = builder
        #: ``{consumer module: {"words": n, "total": sum} | None}`` —
        #: ``None`` marks a lossy network with no functional expectation.
        self.expectations = expectations
        #: Keyword arguments for :class:`~repro.cosim.session.CosimSession`.
        self.cosim_params = cosim_params
        self.summary = summary
        #: Modules that must stay in software for co-simulation validity
        #: (relays: the clocked hardware adapter is only validated for
        #: single-call chains).  DSE pins these when cosim-validating.
        self.sw_only = tuple(sw_only)

    def build_model(self):
        """Return a **fresh** :class:`SystemModel` (never shared between runs)."""
        return self._builder()

    def __repr__(self):
        return f"GeneratedSystem({self.name}, {self.summary})"


def _producer_fsm(name, service, words, start):
    build = FsmBuilder(name)
    build.variable("VALUE", INT, start)
    build.variable("COUNT", INT, 0)
    with build.state("Send") as state:
        state.call(service, args=[var("VALUE")], then="Advance")
    with build.state("Advance") as state:
        state.go("Finish", when=var("COUNT").ge(words - 1))
        state.go("Send", actions=[Assign("VALUE", var("VALUE") + 1),
                                  Assign("COUNT", var("COUNT") + 1)])
    with build.state("Finish", done=True) as state:
        state.stay()
    return build.build(initial="Send")


def _consumer_fsm(name, service, words):
    accumulate = [Assign("TOTAL", var("TOTAL") + var("RX")),
                  Assign("RECEIVED", var("RECEIVED") + 1)]
    build = FsmBuilder(name)
    # RX receives a channel word; its declared range must cover the get
    # service's return type (lint IF007).
    build.variable("RX", word_type(16), 0)
    build.variable("TOTAL", INT, 0)
    build.variable("RECEIVED", INT, 0)
    with build.state("Receive") as state:
        state.call(service, store="RX", then="Accumulate")
    with build.state("Accumulate") as state:
        state.go("Done", when=var("RECEIVED").ge(words - 1), actions=accumulate)
        state.go("Receive", actions=accumulate)
    with build.state("Done", done=True) as state:
        state.stay()
    return build.build(initial="Receive")


def _relay_fsm(name, get_service, put_service, words):
    build = FsmBuilder(name)
    build.variable("RX", word_type(16), 0)
    build.variable("COUNT", INT, 0)
    with build.state("Receive") as state:
        state.call(get_service, store="RX", then="Forward")
    with build.state("Forward") as state:
        state.call(put_service, args=[var("RX")], then="Advance")
    with build.state("Advance") as state:
        state.go("Done", when=var("COUNT").ge(words - 1))
        state.go("Receive", actions=[Assign("COUNT", var("COUNT") + 1)])
    with build.state("Done", done=True) as state:
        state.stay()
    return build.build(initial="Receive")


def _add_module(model, name, fsm, software, activation_period=None):
    if software:
        model.add_software_module(
            SoftwareModule(name, fsm, activation_period=activation_period)
        )
    else:
        model.add_hardware_module(HardwareModule(name, [fsm]))


def generate_system(seed, networks=None):
    """Generate the reproducible random system identified by *seed*.

    *networks* overrides the random 1–3 network count, which is how DSE and
    stress workloads obtain systems far larger than the conformance tiers
    use; the result is still fully determined by ``(seed, networks)``.
    """
    rng = random.Random(f"system:{seed}")
    n_networks = rng.randint(1, 3) if networks is None else int(networks)
    if n_networks < 1:
        raise ValueError("networks must be >= 1")
    specs = []
    any_software = False
    for index in range(n_networks):
        kind = rng.choice(sorted(CHANNEL_KINDS))
        pipeline = rng.random() < 0.3
        words = rng.randint(2, 6)
        start = rng.randrange(25)
        roles = 3 if pipeline else 2
        software = [rng.random() < 0.5 for _ in range(roles)]
        # Relays issue two interleaved service calls per word; the paper's
        # one-transition-per-activation software policy handles that, the
        # plain clocked hardware adapter setup is only validated for single
        # call chains — keep relays in software.
        if pipeline:
            software[1] = True
        activation = rng.choice((None, None, 200, 300))
        specs.append((index, kind, pipeline, words, start, software, activation))
        any_software = any_software or any(software)
    if not any_software:
        index, kind, pipeline, words, start, software, activation = specs[0]
        software = [True] + software[1:]
        specs[0] = (index, kind, pipeline, words, start, software, activation)

    clock_period = rng.choice((20, 60, 100))
    sw_activation_period = clock_period * rng.choice((1, 2))
    cosim_params = {"clock_period": clock_period,
                    "sw_activation_period": sw_activation_period}

    def builder():
        model = SystemModel(f"Generated{seed}")
        for index, kind, pipeline, words, start, software, activation in specs:
            factory, _ = CHANNEL_KINDS[kind]
            if pipeline:
                model.add_comm_unit(factory(
                    f"NetA{index}", put_name=f"PutA{index}",
                    get_name=f"GetA{index}", prefix=f"NA{index}"))
                model.add_comm_unit(factory(
                    f"NetB{index}", put_name=f"PutB{index}",
                    get_name=f"GetB{index}", prefix=f"NB{index}"))
                _add_module(model, f"Prod{index}",
                            _producer_fsm(f"PROD{index}", f"PutA{index}",
                                          words, start),
                            software[0], activation)
                _add_module(model, f"Relay{index}",
                            _relay_fsm(f"RELAY{index}", f"GetA{index}",
                                       f"PutB{index}", words),
                            software[1], activation)
                _add_module(model, f"Cons{index}",
                            _consumer_fsm(f"CONS{index}", f"GetB{index}", words),
                            software[2], activation)
                model.bind(f"Prod{index}", f"PutA{index}", f"NetA{index}")
                model.bind(f"Relay{index}", f"GetA{index}", f"NetA{index}")
                model.bind(f"Relay{index}", f"PutB{index}", f"NetB{index}")
                model.bind(f"Cons{index}", f"GetB{index}", f"NetB{index}")
            else:
                model.add_comm_unit(factory(
                    f"Net{index}", put_name=f"Put{index}",
                    get_name=f"Get{index}", prefix=f"NT{index}"))
                _add_module(model, f"Prod{index}",
                            _producer_fsm(f"PROD{index}", f"Put{index}",
                                          words, start),
                            software[0], activation)
                _add_module(model, f"Cons{index}",
                            _consumer_fsm(f"CONS{index}", f"Get{index}", words),
                            software[1], activation)
                model.bind(f"Prod{index}", f"Put{index}", f"Net{index}")
                model.bind(f"Cons{index}", f"Get{index}", f"Net{index}")
        return model

    expectations = {}
    summary_bits = []
    sw_only = []
    for index, kind, pipeline, words, start, software, _ in specs:
        if pipeline:
            sw_only.append(f"Relay{index}")
        _, lossless = CHANNEL_KINDS[kind]
        expected = None
        if lossless:
            expected = {"words": words,
                        "total": sum(range(start, start + words))}
        expectations[f"Cons{index}"] = expected
        shape = "pipeline" if pipeline else "pair"
        partition = "".join("S" if sw else "H" for sw in software)
        summary_bits.append(f"{kind}/{shape}/{partition}")
    return GeneratedSystem(seed, builder, expectations, cosim_params,
                           "+".join(summary_bits), sw_only=sw_only)


def generate_models(count, seed_base=0, networks=None):
    """Yield *count* :class:`GeneratedSystem` instances, oracle-free.

    This is the workload-source hook for consumers (``repro.dse``, ad-hoc
    experiments) that want the generator's systems without paying for the
    differential conformance oracles.  Exposed on the CLI as
    ``python -m repro.testkit --emit-models N``.
    """
    for offset in range(count):
        yield generate_system(seed_base + offset, networks=networks)
