"""Coverage instrumentation over co-simulation runs.

A :class:`CoverageMap` counts four families of behavioural bins:

* **state visits** — every FSM state entered (controllers, service FSMs,
  hardware behaviours, software FSMs),
* **transition edges** — every ``from>to`` edge fired,
* **protocol phases** — per communication unit, the rolling 3-grams of
  ``role.STATE`` events (controller / put / get), keyed by channel kind
  (handshake / fifo / shared_reg): the observable interleavings of the
  protocol,
* **service-call orderings** — consecutive completed service pairs per
  caller, read post-hoc from the session's service-call trace.

Bin names are *normalised*: every digit run becomes ``#`` (``PROD0`` →
``PROD#``, ``Net3Ctrl`` → ``Net#Ctrl``), so the coverage universe is
finite and shared across generated systems of any size, and "more
networks" cannot masquerade as "more behaviour covered".

Collection hangs off the per-step ``observer`` hook of
:class:`repro.ir.interp.FsmInstance`, which both execution tiers invoke on
the identical StepResult — a compiled and an interpreted run of the same
seed serialise to byte-identical coverage.  Serialisation goes through
:func:`repro.utils.canonical.canonical_json`, so it is also independent of
PYTHONHASHSEED and platform.
"""

import re

from repro.cosim.faults import classify_unit
from repro.utils.canonical import canonical_json, content_digest

#: Length of the protocol-phase n-grams.
PHASE_DEPTH = 3

_DIGITS = re.compile(r"\d+")


def normalize_name(name):
    """Collapse every digit run in *name* to ``#`` (``PROD12`` → ``PROD#``)."""
    return _DIGITS.sub("#", name)


class CoverageMap:
    """Counting bins of behavioural coverage; mergeable and serialisable."""

    def __init__(self):
        self.state_visits = {}
        self.edges = {}
        self.phases = {}
        self.call_pairs = {}
        # Rolling per-unit window feeding the phase n-grams (runtime only,
        # not part of the serialised map).
        self._phase_window = {}

    # ------------------------------------------------------------- collection

    @staticmethod
    def _bump(table, key):
        table[key] = table.get(key, 0) + 1

    def visit_state(self, fsm_name, state):
        self._bump(self.state_visits, f"{normalize_name(fsm_name)}/{state}")

    def fsm_observer(self, fsm_name, phase=None):
        """Observer callback for one FSM instance.

        *phase*, when given, is ``(kind, role, unit_name)`` and feeds the
        unit's protocol-phase window in addition to states and edges.
        """
        name = normalize_name(fsm_name)
        state_visits = self.state_visits
        edges = self.edges

        def observe(result):
            if not result.fired:
                return
            self._bump(state_visits, f"{name}/{result.to_state}")
            self._bump(edges, f"{name}/{result.from_state}>{result.to_state}")
            if phase is not None:
                kind, role, unit = phase
                self.record_phase(kind, role, unit, result.to_state)

        return observe

    def record_phase(self, kind, role, unit, state):
        window = self._phase_window.setdefault(unit, [])
        window.append(f"{role}.{state}")
        del window[:-PHASE_DEPTH]
        self._bump(self.phases, f"{kind}:" + ">".join(window))

    def record_trace(self, trace):
        """Fold a session's service-call trace into the ordering bins."""
        previous = {}
        for record in trace.records:
            if not record.completed:
                continue
            caller = normalize_name(record.caller)
            service = normalize_name(record.service)
            before = previous.get(caller)
            if before is not None:
                self._bump(self.call_pairs, f"{caller}:{before}>{service}")
            previous[caller] = service

    def merge(self, other):
        """Add *other*'s counts into this map; returns self."""
        for mine, theirs in (
            (self.state_visits, other.state_visits),
            (self.edges, other.edges),
            (self.phases, other.phases),
            (self.call_pairs, other.call_pairs),
        ):
            for key, count in theirs.items():
                mine[key] = mine.get(key, 0) + count
        return self

    # ------------------------------------------------------------------ query

    def bins(self):
        """Total number of distinct bins hit (the novelty currency)."""
        return (len(self.state_visits) + len(self.edges)
                + len(self.phases) + len(self.call_pairs))

    def state_coverage(self, universe):
        return _fraction(self.state_visits, universe["states"])

    def edge_coverage(self, universe):
        return _fraction(self.edges, universe["edges"])

    # -------------------------------------------------------------- serialise

    def as_dict(self):
        return {
            "format": 1,
            "states": dict(self.state_visits),
            "edges": dict(self.edges),
            "phases": dict(self.phases),
            "calls": dict(self.call_pairs),
        }

    @classmethod
    def from_dict(cls, data):
        coverage = cls()
        coverage.state_visits = dict(data["states"])
        coverage.edges = dict(data["edges"])
        coverage.phases = dict(data["phases"])
        coverage.call_pairs = dict(data["calls"])
        return coverage

    def to_json(self):
        """Byte-stable serialisation (same seed + mode → identical bytes)."""
        return canonical_json(self.as_dict())

    def digest(self):
        return content_digest(self.as_dict())

    def __repr__(self):
        return (f"CoverageMap(states={len(self.state_visits)}, "
                f"edges={len(self.edges)}, phases={len(self.phases)}, "
                f"calls={len(self.call_pairs)})")


def _fraction(table, keys):
    if not keys:
        return 1.0
    hit = sum(1 for key in keys if key in table)
    return hit / len(keys)


def coverage_universe(model):
    """The statically reachable bins of *model*: normalised states and edges.

    Built from the declared FSMs — communication-unit controllers and
    services, hardware behaviours, software FSMs — in declaration order.
    Phase and call-ordering bins have no closed static universe (they are
    dynamic interleavings) and are reported as raw bin counts instead.
    """
    states, edges = set(), set()
    for fsm in model_fsms(model):
        name = normalize_name(fsm.name)
        for state in fsm.iter_states():
            states.add(f"{name}/{state.name}")
            for transition in state.transitions:
                edges.add(f"{name}/{state.name}>{transition.target}")
    return {"states": sorted(states), "edges": sorted(edges)}


def merge_universes(universes):
    """Union of several :func:`coverage_universe` results."""
    states, edges = set(), set()
    for universe in universes:
        states.update(universe["states"])
        edges.update(universe["edges"])
    return {"states": sorted(states), "edges": sorted(edges)}


def model_fsms(model):
    """Every FSM declared by *model*, in declaration order."""
    for unit in model.comm_units.values():
        for controller in unit.controllers:
            yield controller.fsm
        for service in unit.services.values():
            yield service.fsm
    for module in model.hardware_modules():
        yield from module.behaviours()
    for module in model.software_modules():
        yield module.fsm


def attach_session(session, coverage, seed_states=True):
    """Wire *coverage* observers into every FSM instance of *session*.

    The session is built if needed; each instance's current (initial)
    state is seeded as visited, matching the VHDL notion that an FSM *is*
    in its initial state before any transition fires.  Returns *coverage*.
    Call :meth:`CoverageMap.record_trace` after the run to fold in the
    service-call orderings.

    Pass ``seed_states=False`` when re-wiring the *same* map onto a
    session restored from a checkpoint: the resumed states were already
    counted before the snapshot, and skipping the seed keeps the final
    map byte-identical to an unbroken run.
    """
    session.build()
    kinds = {unit.name: classify_unit(unit)
             for unit in session.model.comm_units.values()}

    def wire(instance, phase=None):
        instance.observer = coverage.fsm_observer(instance.fsm.name,
                                                  phase=phase)
        if seed_states:
            coverage.visit_state(instance.fsm.name, instance.current)

    for key, instance in session.controller_instances.items():
        unit_name = key.split(".", 1)[0]
        wire(instance, phase=(kinds[unit_name], "ctrl", unit_name))
    for adapter in session.hw_adapters.values():
        for instance in adapter.instances.values():
            wire(instance)
        for service in adapter.registry.instances():
            _wire_service(wire, kinds, service)
    for executor in session.sw_executors.values():
        wire(executor.instance)
        for service in executor.registry.instances():
            _wire_service(wire, kinds, service)
    return coverage


def _wire_service(wire, kinds, service):
    role = "put" if service.service.param_names else "get"
    wire(service.instance,
         phase=(kinds[service.unit_name], role, service.unit_name))


def scoreboard(coverage, universe, fault_survival=None, deadline_misses=None):
    """The per-sweep scoreboard record of one coverage collection.

    *fault_survival* — fraction (0..1) of fault scenarios whose functional
    expectations still held, or None when no faults were injected;
    *deadline_misses* — count of service calls exceeding the
    back-annotated deadline, or None when no real-time scenario ran.
    """
    states_total = len(universe["states"])
    edges_total = len(universe["edges"])
    states_visited = sum(1 for key in universe["states"]
                         if key in coverage.state_visits)
    edges_covered = sum(1 for key in universe["edges"]
                        if key in coverage.edges)
    return {
        "states_visited": states_visited,
        "states_total": states_total,
        "state_coverage": round(states_visited / states_total, 4)
        if states_total else 1.0,
        "edges_covered": edges_covered,
        "edges_total": edges_total,
        "edge_coverage": round(edges_covered / edges_total, 4)
        if edges_total else 1.0,
        "phase_bins": len(coverage.phases),
        "call_bins": len(coverage.call_pairs),
        "fault_survival": fault_survival,
        "deadline_misses": deadline_misses,
    }
