"""Oracle checks for generated system models.

Two oracles, one per flow of the paper's Figure 1:

* :func:`check_cosim_conformance` — lints the generated model
  (:func:`repro.lint.lint_model` pre-flight: error-level findings fail the
  oracle before any run), then runs the system through
  :class:`~repro.cosim.session.CosimSession` four times (production kernel
  twice, reference kernel twice) and checks

  - **seeded determinism**: two runs of the same generated system on the
    same kernel produce byte-identical waveform dumps and service-call
    trace tables,
  - **kernel conformance**: the production and reference kernels agree on
    every observable (waveform, trace, final software states, activation
    counts, hardware cycles, statistics),
  - **functional outcome**: every consumer on a lossless channel reports
    exactly the generated word count and arithmetic-series sum.

* :func:`check_cosyn_conformance` — runs the system through
  :class:`~repro.cosyn.flow.CosynthesisFlow` twice per compatible platform
  and checks report stability, address-map consistency (all SW-reachable
  unit ports mapped, no address collisions) and constraint-report sanity.

Both return a list of human-readable problem strings (empty = pass), each
prefixed with the generated system's name so a failure pins its seed.
"""

from repro.cosim import CosimSession
from repro.cosyn import CosynthesisFlow
from repro.ir.interp import DEFAULT_FSM_MODE
from repro.ir.syscompile import DEFAULT_SYSTEM_MODE
from repro.lint import lint_model
from repro.platforms import get_platform

#: Generous completion horizon: generated systems transfer < 20 words.
COSIM_MAX_TIME = 500_000


def variant_matrix(kernels, fsm_mode=None, system_mode=None):
    """The (kernel, fsm_mode, system_mode) grid a conformance check runs.

    ``fsm_mode="differential"`` expands to the compiled and interpreted
    per-FSM tiers (the PR 5 oracle); ``system_mode="differential"``
    expands to the fused, per-FSM and whole-interpreted system tiers.
    ``system_mode="interpreted"`` (explicit or expanded) forces the FSM
    tier to ``interpreted`` — the session would reject the contradictory
    combination — which also deduplicates the expanded grid.  ``None``
    defers to the project defaults.
    """
    if fsm_mode is None:
        fsm_mode = DEFAULT_FSM_MODE
    if system_mode is None:
        system_mode = DEFAULT_SYSTEM_MODE
    fsm_modes = (("compiled", "interpreted") if fsm_mode == "differential"
                 else (fsm_mode,))
    system_modes = (("fused", "per-fsm", "interpreted")
                    if system_mode == "differential" else (system_mode,))
    variants = []
    for kernel in kernels:
        for smode in system_modes:
            for fmode in fsm_modes:
                if smode == "interpreted":
                    fmode = "interpreted"
                variant = (kernel, fmode, smode)
                if variant not in variants:
                    variants.append(variant)
    return variants


def variant_label(variant, variants):
    """Human label for one matrix entry, terse when an axis is constant."""
    kernel, fmode, smode = variant
    parts = [kernel]
    if len({v[2] for v in variants}) > 1:
        parts.append(smode)
    if len({v[1] for v in variants}) > 1:
        parts.append(fmode)
    return "/".join(parts)


def hw_consumers_pending(session, expectations):
    """Expected consumers living in hardware that have not reached Done."""
    pending = []
    for module_name, expected in expectations.items():
        if expected is None or module_name not in session.hw_adapters:
            continue
        adapter = session.hw_adapters[module_name]
        (process_name,) = adapter.instances.keys()
        if adapter.process_state(process_name) != "Done":
            pending.append(module_name)
    return pending


def run_session_to_completion(session, expectations, max_time=COSIM_MAX_TIME):
    """Run *session* until its expected consumers are done; returns the result.

    ``run_until_software_done`` only waits for software modules; an
    all-hardware network (with a functional expectation) may still be mid
    transfer when a fast all-software network releases the stop condition.
    Keep running in slices until every expected hardware consumer reaches
    ``Done``, activity dries up, or the horizon is hit — the functional
    check then reports a genuinely stuck network instead of a network that
    merely had not finished yet.  Shared with :mod:`repro.dse.validate`.
    """
    result = session.run_until_software_done(max_time=max_time)
    while (session.simulator.now < max_time
           and hw_consumers_pending(session, expectations)):
        before = session.simulator.now
        result = session.run(until=min(before + 10_000, max_time))
        if session.simulator.now == before:
            break  # no activity left: the network really is stuck
    return result


def run_cosim(system, kernel, fsm_mode=None, system_mode=None):
    """One fresh co-simulation of *system* on *kernel*; returns (session, result).

    ``fsm_mode=None`` / ``system_mode=None`` defer to the project defaults
    (:data:`repro.ir.interp.DEFAULT_FSM_MODE`,
    :data:`repro.ir.syscompile.DEFAULT_SYSTEM_MODE`), resolved by the
    session.
    """
    session = CosimSession(system.build_model(), kernel=kernel,
                           fsm_mode=fsm_mode, system_mode=system_mode,
                           **system.cosim_params)
    result = run_session_to_completion(session, system.expectations)
    return session, result


def check_functional_outcome(session, result, expectations,
                             max_time=COSIM_MAX_TIME):
    """Problem strings for the testkit expectation convention, unprefixed.

    Checks every expected consumer's ``RECEIVED``/``TOTAL`` end state and
    that every software module finished.  Shared between the conformance
    oracle (which prefixes the system name) and DSE front validation.
    """
    problems = []
    for module_name, expected in expectations.items():
        if expected is None:
            continue
        end_state = _module_end_state(session, result, module_name)
        if end_state.get("RECEIVED") != expected["words"]:
            problems.append(
                f"{module_name} received {end_state.get('RECEIVED')} words, "
                f"expected {expected['words']}"
            )
        if end_state.get("TOTAL") != expected["total"]:
            problems.append(
                f"{module_name} total {end_state.get('TOTAL')}, "
                f"expected {expected['total']}"
            )
    for module_name, finished in result.sw_finished.items():
        if not finished:
            problems.append(
                f"software module {module_name} did not finish within "
                f"{max_time} ns (state {result.sw_states[module_name]})"
            )
    return problems


def cosim_fingerprint(session, result):
    """Every observable two conforming runs must agree on, as text + dicts."""
    hw_states = {
        name: {proc: adapter.process_state(proc)
               for proc in adapter.instances}
        for name, adapter in session.hw_adapters.items()
    }
    hw_vars = {
        name: {proc: adapter.process_variables(proc)
               for proc in adapter.instances}
        for name, adapter in session.hw_adapters.items()
    }
    return {
        "end_time": result.end_time,
        "waveform_dump": result.waveform.dump(),
        "trace_table": result.trace.as_table(),
        "sw_states": result.sw_states,
        "sw_finished": result.sw_finished,
        "sw_activations": result.sw_activations,
        "hw_cycles": result.hw_cycles,
        "hw_states": hw_states,
        "hw_vars": hw_vars,
        "statistics": result.statistics,
    }


def _module_end_state(session, result, module_name):
    """Final FSM variables of *module_name*, software or hardware."""
    if module_name in session.sw_executors:
        return session.sw_executors[module_name].variables()
    adapter = session.hw_adapters[module_name]
    (process_name,) = adapter.instances.keys()
    return adapter.process_variables(process_name)


def _diff_fingerprints(label, left, right):
    problems = []
    for field in left:
        if left[field] != right[field]:
            problems.append(f"{label}: {field} differs")
    return problems


def check_cosim_conformance(system, kernels=("production", "reference"),
                            fsm_mode=None, system_mode=None):
    """Run the full co-simulation oracle on one generated system.

    *fsm_mode* selects the FSM execution tier every run uses (``compiled``
    or ``interpreted``; ``None`` defers to the project default); the
    reports must be identical either way.  The special value
    ``"differential"`` additionally crosses each kernel with **both** tiers
    and asserts every observable matches across the whole (kernel, tier)
    matrix — the compiled-vs-interpreted oracle.  *system_mode* does the
    same for the whole-system tier (:mod:`repro.ir.syscompile`): its
    ``"differential"`` crosses each kernel with the fused, per-FSM and
    interpreted system tiers — the fused-codegen oracle.
    """
    variants = variant_matrix(kernels, fsm_mode, system_mode)

    # Lint pre-flight: a generated system must be free of error-level
    # findings before any simulation is trusted (warnings are tolerated —
    # the generator corpus is expected to stay warning-free, but a warning
    # must not fail the oracle for every sweep consumer).
    problems = [
        f"{system.name}: lint {diagnostic.rule}: "
        f"{diagnostic.path}: {diagnostic.message}"
        for diagnostic in lint_model(system.build_model()).errors
    ]
    if problems:
        return problems

    def label(variant):
        return variant_label(variant, variants)

    fingerprints = {}
    sessions = {}
    for variant in variants:
        kernel, fmode, smode = variant
        session_a, result_a = run_cosim(system, kernel, fsm_mode=fmode,
                                        system_mode=smode)
        session_b, result_b = run_cosim(system, kernel, fsm_mode=fmode,
                                        system_mode=smode)
        fingerprint_a = cosim_fingerprint(session_a, result_a)
        fingerprint_b = cosim_fingerprint(session_b, result_b)
        problems.extend(_diff_fingerprints(
            f"{system.name}: {label(variant)} kernel not deterministic "
            "under fixed seed",
            fingerprint_a, fingerprint_b,
        ))
        fingerprints[variant] = fingerprint_a
        sessions[variant] = (session_a, result_a)
    baseline = variants[0]
    for variant in variants[1:]:
        problems.extend(_diff_fingerprints(
            f"{system.name}: {label(baseline)} vs {label(variant)} divergence",
            fingerprints[baseline], fingerprints[variant],
        ))

    session, result = sessions[baseline]
    problems.extend(
        f"{system.name}: {problem}"
        for problem in check_functional_outcome(session, result,
                                                system.expectations)
    )
    return problems


def _compatible_platforms(model):
    names = ["pc_at_fpga", "microcoded", "multiproc"]
    if not model.hardware_modules():
        names.append("unix_ipc")
    return names


def check_cosyn_conformance(system):
    """Run the co-synthesis oracle on one generated system."""
    problems = []
    model = system.build_model()
    for platform_name in _compatible_platforms(model):
        label = f"{system.name}@{platform_name}"
        first = CosynthesisFlow(system.build_model(),
                                get_platform(platform_name)).run()
        second = CosynthesisFlow(system.build_model(),
                                 get_platform(platform_name)).run()
        if first.report() != second.report():
            problems.append(f"{label}: constraint report not stable across runs")
        if first.address_map != second.address_map:
            problems.append(f"{label}: address map not stable across runs")

        target = first.target
        expected_ports = []
        for unit in target.units_used_by_software():
            expected_ports.extend(unit.ports)
        missing = [port for port in expected_ports
                   if port not in first.address_map]
        if missing:
            problems.append(f"{label}: unmapped SW-visible ports {missing}")
        addresses = list(first.address_map.values())
        if len(set(addresses)) != len(addresses):
            problems.append(f"{label}: address collision in {first.address_map}")
        if first.system_clock_ns() <= 0:
            problems.append(f"{label}: non-positive system clock")
        if first.problems and not isinstance(first.problems, list):
            problems.append(f"{label}: problems is not a list")
        for module in model.software_modules():
            if module.name not in first.software:
                problems.append(f"{label}: no SW synthesis result for {module.name}")
        for module in model.hardware_modules():
            if module.name not in first.hardware:
                problems.append(f"{label}: no HW synthesis result for {module.name}")
    return problems
