"""Command-line entry of the conformance kit.

Usage::

    python -m repro.testkit                # full tier (200+ scenarios)
    python -m repro.testkit --quick        # < 30 s smoke tier
    python -m repro.testkit --seed-base 1000
    python -m repro.testkit --replay kernel-medium-17
    python -m repro.testkit --fsm-mode interpreted   # or: differential
    python -m repro.testkit --kernel-scenarios tiny=5 small=2 --cosim 3 --cosyn 1
    python -m repro.testkit --emit-models 5 --networks 4   # generator only
    python -m repro.testkit --coverage --budget 24 --coverage-floor 0.9

``--coverage`` runs a coverage-directed co-simulation campaign instead of
the differential tiers: scenario configurations (plain system, fault
injection, platform-timed real-time) are drawn by novelty-weighted
mutation, deduplicated and executed against one shared
:class:`~repro.testkit.coverage.CoverageMap`, and the final scoreboard is
printed.  ``--coverage-floor`` turns the state-visit coverage into a gate
(exit 1 below the floor) for CI.

Exit status is non-zero when any scenario diverges or violates an oracle.
"""

import argparse
import json
import sys
import time

from repro.testkit.models import generate_models
from repro.testkit.runner import (
    FULL_COSIM_MODELS,
    FULL_COSYN_MODELS,
    FULL_FAULT_SEEDS,
    FULL_KERNEL_TIER,
    FULL_REALTIME_MODELS,
    QUICK_COSIM_MODELS,
    QUICK_COSYN_MODELS,
    QUICK_FAULT_SEEDS,
    QUICK_KERNEL_TIER,
    QUICK_REALTIME_MODELS,
    replay,
    run_conformance,
)


def _parse_kernel_tier(pairs):
    tier = []
    for pair in pairs:
        size, _, count = pair.partition("=")
        if not count:
            raise SystemExit(f"--kernel-scenarios expects size=count, got {pair!r}")
        tier.append((size, int(count)))
    return tuple(tier)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit",
        description="randomized differential conformance kit",
    )
    parser.add_argument("--quick", action="store_true",
                        help="run the < 30 s smoke tier")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="shift every generated seed (default 0)")
    parser.add_argument("--kernel-scenarios", nargs="*", metavar="SIZE=COUNT",
                        help="override the kernel-scenario tier")
    parser.add_argument("--cosim", type=int, default=None,
                        help="number of generated systems for the cosim oracle")
    parser.add_argument("--cosyn", type=int, default=None,
                        help="number of generated systems for the cosyn oracle")
    parser.add_argument("--fault-seeds", type=int, default=None,
                        help="seeds per fault kind for the fault-injection "
                             "tier")
    parser.add_argument("--realtime", type=int, default=None,
                        help="number of back-annotated real-time scenarios")
    parser.add_argument("--coverage", action="store_true",
                        help="run a coverage-directed campaign and print the "
                             "scoreboard instead of the conformance tiers")
    parser.add_argument("--budget", type=int, default=24,
                        help="scenario budget of the --coverage campaign "
                             "(default 24)")
    parser.add_argument("--campaign-seed", type=int, default=0,
                        help="RNG seed of the --coverage campaign (default 0)")
    parser.add_argument("--coverage-floor", type=float, default=None,
                        metavar="FRACTION",
                        help="with --coverage: exit 1 when state-visit "
                             "coverage lands below this fraction")
    parser.add_argument("--uniform", action="store_true",
                        help="with --coverage: draw scenarios uniformly "
                             "instead of coverage-directed (baseline)")
    parser.add_argument("--fsm-mode", default=None,
                        choices=("compiled", "interpreted", "differential"),
                        help="FSM execution tier for the cosim oracle: the "
                             "compiled programs (the project default), the "
                             "tree-walking interpreter, or 'differential' "
                             "to cross-check both tiers against each other")
    parser.add_argument("--system-mode", default=None,
                        choices=("fused", "per-fsm", "interpreted",
                                 "differential"),
                        help="whole-system execution tier for the cosim "
                             "oracle: the fused single-step program (the "
                             "project default), per-FSM processes, the "
                             "whole-interpreted stack, or 'differential' "
                             "to cross-check all three tiers")
    parser.add_argument("--replay", metavar="NAME",
                        help="re-run one scenario by name and exit")
    parser.add_argument("--emit-models", type=int, metavar="N",
                        help="print N generated system models (one JSON line "
                             "each) without running any oracle, then exit")
    parser.add_argument("--networks", type=int, default=None,
                        help="with --emit-models: networks per generated "
                             "system (default: random 1-3)")
    parser.add_argument("--verbose", action="store_true",
                        help="print one line per scenario")
    args = parser.parse_args(argv)

    if args.networks is not None and args.emit_models is None:
        parser.error("--networks only applies to --emit-models; the "
                     "conformance tiers use the generator's own 1-3 "
                     "network sizing")

    if args.emit_models is not None:
        if args.emit_models < 1:
            parser.error("--emit-models expects a positive count")
        try:
            systems = list(generate_models(args.emit_models,
                                           seed_base=args.seed_base,
                                           networks=args.networks))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for system in systems:
            model = system.build_model()
            print(json.dumps({
                "name": system.name,
                "summary": system.summary,
                "modules": len(model.modules),
                "sw_only": list(system.sw_only),
                "cosim_params": system.cosim_params,
                "topology": model.topology(),
            }, sort_keys=True))
        return 0

    if args.replay:
        problems = replay(args.replay, fsm_mode=args.fsm_mode,
                          system_mode=args.system_mode)
        if problems:
            print("\n".join(problems))
            return 1
        print(f"{args.replay}: ok")
        return 0

    if args.coverage:
        return run_coverage_campaign(args)

    if args.quick:
        kernel_tier = QUICK_KERNEL_TIER
        cosim_models = QUICK_COSIM_MODELS
        cosyn_models = QUICK_COSYN_MODELS
        fault_seeds = QUICK_FAULT_SEEDS
        realtime_models = QUICK_REALTIME_MODELS
    else:
        kernel_tier = FULL_KERNEL_TIER
        cosim_models = FULL_COSIM_MODELS
        cosyn_models = FULL_COSYN_MODELS
        fault_seeds = FULL_FAULT_SEEDS
        realtime_models = FULL_REALTIME_MODELS
    if args.kernel_scenarios is not None:
        kernel_tier = _parse_kernel_tier(args.kernel_scenarios)
    if args.cosim is not None:
        cosim_models = args.cosim
    if args.cosyn is not None:
        cosyn_models = args.cosyn
    if args.fault_seeds is not None:
        fault_seeds = args.fault_seeds
    if args.realtime is not None:
        realtime_models = args.realtime

    progress = print if args.verbose else None
    started = time.perf_counter()
    report = run_conformance(kernel_tier=kernel_tier,
                             cosim_models=cosim_models,
                             cosyn_models=cosyn_models,
                             fault_seeds=fault_seeds,
                             realtime_models=realtime_models,
                             seed_base=args.seed_base,
                             progress=progress,
                             fsm_mode=args.fsm_mode,
                             system_mode=args.system_mode)
    elapsed = time.perf_counter() - started
    print(report.summary())
    print(f"({elapsed:.1f} s wall clock)")
    return 0 if report.ok else 1


def run_coverage_campaign(args):
    """Execute the ``--coverage`` mode; returns the process exit status."""
    from repro.testkit.coverage import scoreboard
    from repro.testkit.generator import (
        campaign_universe,
        run_directed,
        run_uniform,
    )

    runner = run_uniform if args.uniform else run_directed
    started = time.perf_counter()
    campaign = runner(args.budget, rng_seed=args.campaign_seed,
                      fsm_mode=args.fsm_mode)
    elapsed = time.perf_counter() - started
    universe = campaign_universe()
    survivals = [report["survival"] for report in campaign["reports"]
                 if report.get("survival") is not None]
    misses = sum(report.get("deadline_misses") or 0
                 for report in campaign["reports"])
    board = scoreboard(
        campaign["coverage"], universe,
        fault_survival=(round(sum(survivals) / len(survivals), 4)
                        if survivals else None),
        deadline_misses=misses,
    )
    print(f"coverage campaign: {campaign['mode']}, "
          f"budget {campaign['budget']}, {campaign['executed']} executed "
          f"({elapsed:.1f} s wall clock)")
    for field, value in board.items():
        print(f"  {field}: {value}")
    if args.coverage_floor is not None:
        if board["state_coverage"] < args.coverage_floor:
            print(f"FAIL: state coverage {board['state_coverage']} below "
                  f"floor {args.coverage_floor}", file=sys.stderr)
            return 1
        print(f"state coverage {board['state_coverage']} >= "
              f"floor {args.coverage_floor}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
