"""Randomized scenario generator + differential conformance kit.

The ROADMAP asks the simulation stack to handle "as many scenarios as you
can imagine"; this package *generates* them and keeps the optimised kernel
honest while it evolves.  Three layers:

* :mod:`repro.testkit.generator` — seeded random **kernel scenarios**:
  layered process networks mixing sensitivity processes, clocked processes,
  generator scripts, watchdogs and idle waiters, sized from tiny
  (unit-test) to 1k+ processes (stress).
* :mod:`repro.testkit.models` — seeded random **system models**: producer /
  relay / consumer module networks with mixed hw/sw partitionings over
  handshake, FIFO and shared-register channels, with computable expected
  outcomes for the lossless channel kinds.
* :mod:`repro.testkit.oracles` + :mod:`repro.testkit.runner` — the checks:
  every kernel scenario runs on both the production kernel and the naive
  :class:`~repro.desim.reference.ReferenceSimulator` and must produce
  identical event ordering, waveforms, final states and statistics; system
  models are pushed through :class:`~repro.cosim.session.CosimSession`
  (both kernels, twice per kernel for seeded determinism) and
  :class:`~repro.cosyn.flow.CosynthesisFlow` (address-map consistency,
  constraint-report stability).

Entry points: ``python -m repro.testkit`` (``make conformance``) for the
batch tiers, ``tests/test_testkit_conformance.py`` for the pytest-wired
``--quick`` subset.  Every scenario is reproducible from its printed name
alone — see ``docs/testing.md``.
"""

from repro.testkit.coverage import (
    CoverageMap,
    attach_session,
    coverage_universe,
    merge_universes,
    scoreboard,
)
from repro.testkit.generator import (
    KernelScenario,
    SIZES,
    campaign_universe,
    dedupe_scenarios,
    run_directed,
    run_uniform,
)
from repro.testkit.models import GeneratedSystem, generate_models, generate_system
from repro.testkit.oracles import (
    check_cosim_conformance,
    check_cosyn_conformance,
)
from repro.testkit.runner import (
    ConformanceReport,
    check_kernel_scenario,
    run_conformance,
)
from repro.testkit.scenarios import (
    FaultScenario,
    RealtimeScenario,
    check_fault_scenario,
    check_realtime_scenario,
)

__all__ = [
    "KernelScenario",
    "SIZES",
    "GeneratedSystem",
    "generate_models",
    "generate_system",
    "check_cosim_conformance",
    "check_cosyn_conformance",
    "check_kernel_scenario",
    "ConformanceReport",
    "run_conformance",
    "CoverageMap",
    "attach_session",
    "coverage_universe",
    "merge_universes",
    "scoreboard",
    "campaign_universe",
    "dedupe_scenarios",
    "run_directed",
    "run_uniform",
    "FaultScenario",
    "RealtimeScenario",
    "check_fault_scenario",
    "check_realtime_scenario",
]
