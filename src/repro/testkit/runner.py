"""The differential conformance runner.

Executes generated scenarios against the production and reference kernels
and collects divergences into a :class:`ConformanceReport`.  Every failure
message starts with the scenario name (``kernel-<size>-<seed>``,
``system-<seed>``, ``fault-<kind>-<seed>`` or ``realtime-<seed>``), which
is all that is needed to reproduce it::

    python -m repro.testkit --replay kernel-medium-17
"""

from repro.cosim.faults import FAULT_KINDS
from repro.testkit.generator import KernelScenario
from repro.testkit.models import generate_system
from repro.testkit.oracles import check_cosim_conformance, check_cosyn_conformance
from repro.testkit.scenarios import (
    FaultScenario,
    RealtimeScenario,
    check_fault_scenario,
    check_realtime_scenario,
)

#: Full-tier composition: (size, count) for kernel scenarios.  Together
#: with the model tiers below this yields 200+ scenarios per `make
#: conformance` run.
FULL_KERNEL_TIER = (("tiny", 80), ("small", 60), ("medium", 30), ("stress", 4))
FULL_COSIM_MODELS = 60
FULL_COSYN_MODELS = 40
#: Fault tier: seeds per fault kind (every kind runs on every seed).
FULL_FAULT_SEEDS = 12
FULL_REALTIME_MODELS = 12

#: Quick tier (< 30 s, wired into pytest).
QUICK_KERNEL_TIER = (("tiny", 14), ("small", 8), ("medium", 2))
QUICK_COSIM_MODELS = 5
QUICK_COSYN_MODELS = 3
QUICK_FAULT_SEEDS = 2
QUICK_REALTIME_MODELS = 2


def _describe_log_divergence(left_log, right_log):
    """Pinpoint the first differing entry of two execution logs."""
    for index, (left, right) in enumerate(zip(left_log, right_log)):
        if left != right:
            return (f"first divergence at log entry {index}: "
                    f"production={left!r} reference={right!r}")
    return (f"log length differs: production={len(left_log)} "
            f"reference={len(right_log)}")


def check_kernel_scenario(scenario, kernels=("production", "reference")):
    """Run *scenario* on both kernels; returns problem strings (empty = pass)."""
    fingerprints = []
    for kernel in kernels:
        instance = scenario.build(kernel)
        instance.run()
        fingerprints.append(instance.fingerprint())
    baseline, other = fingerprints[0], fingerprints[1]
    problems = []
    for field in baseline:
        if baseline[field] != other[field]:
            detail = ""
            if field == "log":
                detail = " — " + _describe_log_divergence(baseline["log"],
                                                          other["log"])
            problems.append(
                f"{scenario.name}: {kernels[0]} vs {kernels[1]} "
                f"disagree on {field}{detail}"
            )
    return problems


class ConformanceReport:
    """Aggregated outcome of one conformance run."""

    def __init__(self):
        self.scenarios_run = 0
        self.problems = []

    @property
    def ok(self):
        return not self.problems

    def record(self, problems):
        self.scenarios_run += 1
        self.problems.extend(problems)

    def summary(self):
        verdict = "PASS" if self.ok else f"FAIL ({len(self.problems)} problems)"
        lines = [f"conformance: {self.scenarios_run} scenarios — {verdict}"]
        lines.extend(f"  - {problem}" for problem in self.problems)
        return "\n".join(lines)


def run_conformance(kernel_tier=FULL_KERNEL_TIER,
                    cosim_models=FULL_COSIM_MODELS,
                    cosyn_models=FULL_COSYN_MODELS,
                    fault_seeds=FULL_FAULT_SEEDS,
                    realtime_models=FULL_REALTIME_MODELS,
                    seed_base=0, progress=None, fsm_mode=None,
                    system_mode=None):
    """Run a full conformance sweep; returns a :class:`ConformanceReport`.

    *seed_base* shifts every generated seed, so nightly runs can explore
    fresh scenarios while `make conformance` stays reproducible by default.
    *fsm_mode* selects the FSM execution tier of the cosim oracle
    (``compiled``, ``interpreted``, ``differential`` to cross-check both
    tiers against each other, or ``None`` for the project default — see
    :func:`repro.testkit.oracles.check_cosim_conformance`).
    *system_mode* does the same for the whole-system execution tier
    (``fused``, ``per-fsm``, ``interpreted``, or ``differential`` to
    cross-check all three against each other).
    """
    report = ConformanceReport()

    def note(message):
        if progress is not None:
            progress(message)

    for size, count in kernel_tier:
        for offset in range(count):
            scenario = KernelScenario(seed_base + offset, size=size)
            problems = check_kernel_scenario(scenario)
            report.record(problems)
            note(f"[kernel] {scenario.name}: "
                 f"{'ok' if not problems else 'DIVERGED'}")
    for offset in range(cosim_models):
        system = generate_system(seed_base + offset)
        problems = check_cosim_conformance(system, fsm_mode=fsm_mode,
                                           system_mode=system_mode)
        report.record(problems)
        note(f"[cosim ] {system.name} ({system.summary}): "
             f"{'ok' if not problems else 'FAILED'}")
    for offset in range(cosyn_models):
        system = generate_system(seed_base + offset)
        problems = check_cosyn_conformance(system)
        report.record(problems)
        note(f"[cosyn ] {system.name} ({system.summary}): "
             f"{'ok' if not problems else 'FAILED'}")
    for kind in FAULT_KINDS:
        for offset in range(fault_seeds):
            scenario = FaultScenario(seed_base + offset, kind=kind)
            problems = check_fault_scenario(scenario, fsm_mode=fsm_mode,
                                            system_mode=system_mode)
            report.record(problems)
            note(f"[fault ] {scenario.name}: "
                 f"{'ok' if not problems else 'FAILED'}")
    for offset in range(realtime_models):
        scenario = RealtimeScenario(seed_base + offset)
        problems = check_realtime_scenario(scenario, fsm_mode=fsm_mode,
                                           system_mode=system_mode)
        report.record(problems)
        note(f"[rtime ] {scenario.name}: "
             f"{'ok' if not problems else 'FAILED'}")
    return report


def replay(name, fsm_mode=None, system_mode=None):
    """Re-run one scenario from its printed name; returns problem strings.

    Accepts ``kernel-<size>-<seed>`` (differential kernel check),
    ``system-<seed>`` (both cosim and cosyn oracles),
    ``fault-<kind>-<seed>`` (differential fault-injection check) and
    ``realtime-<seed>`` (back-annotated deadline check).
    """
    parts = name.split("-")
    if parts[0] == "kernel" and len(parts) == 3:
        return check_kernel_scenario(KernelScenario(int(parts[2]), size=parts[1]))
    if parts[0] == "system" and len(parts) == 2:
        system = generate_system(int(parts[1]))
        return (check_cosim_conformance(system, fsm_mode=fsm_mode,
                                        system_mode=system_mode)
                + check_cosyn_conformance(system))
    if parts[0] == "fault" and len(parts) >= 3:
        kind = "-".join(parts[1:-1])
        scenario = FaultScenario(int(parts[-1]), kind=kind)
        return check_fault_scenario(scenario, fsm_mode=fsm_mode,
                                    system_mode=system_mode)
    if parts[0] == "realtime" and len(parts) == 2:
        scenario = RealtimeScenario(int(parts[1]))
        return check_realtime_scenario(scenario, fsm_mode=fsm_mode,
                                       system_mode=system_mode)
    raise ValueError(
        f"unrecognised scenario name {name!r}; expected "
        "'kernel-<size>-<seed>', 'system-<seed>', 'fault-<kind>-<seed>' "
        "or 'realtime-<seed>'"
    )
