"""Seeded random generation of kernel-level scenarios.

A :class:`KernelScenario` is a reproducible recipe: given ``(size, seed)``
it builds *the same* process network into any kernel honouring the
:class:`~repro.desim.kernel.Simulator` API, so the differential runner can
execute it once per kernel and compare every observable.

Generated networks mix every scheduling shape the kernel supports:

* free-running clocks (``add_clock``),
* sensitivity-list processes and clocked processes (``add_clocked_process``),
* generator processes running finite random scripts of ``Timeout`` /
  ``SignalChange`` / ``Delta`` waits,
* watchdogs re-issuing bounded waits on quiet signals (waiter-list churn),
* permanently idle waiters with far-future deadlines (population scaling),
* pokers injecting future transaction bursts, plus mid-run pokes between
  segmented ``run()`` calls (the PR-1 stall regressions).

**Boundedness.** Data signals are organised in layers; a process whose
trigger signals reach up to layer *i* may schedule zero-delay writes only
to layers strictly greater than *i* (time-triggered work may start at any
layer).  Zero-delay chains are therefore bounded by the layer count and the
generated networks can never hit the delta-cycle limit, while still
exercising multi-delta cascades every time point.

**Determinism.** All structure is drawn at build time from
``random.Random(<string seed>)`` (string seeding is hash-randomization
independent); runtime behaviour uses per-process streams seeded the same
way, so two builds of one scenario behave identically — unless the kernels
schedule them differently, which is exactly what the kit must detect.
"""

import random

from repro.desim import Delta, SignalChange, Timeout, WaveformRecorder, create_simulator

#: Size bands: (min processes, max processes, min horizon ns, max horizon ns).
SIZES = {
    "tiny": (4, 12, 1_200, 2_000),
    "small": (25, 60, 1_000, 1_800),
    "medium": (100, 220, 600, 1_000),
    "stress": (900, 1_200, 250, 400),
}

#: Far-future deadline for permanently idle waiters (1 simulated second).
IDLE_TIMEOUT = 1_000_000_000

#: Process-kind weights per size band (active kinds thin out as the
#: population grows, mirroring the idle-heavy workloads the kernel targets).
_KIND_WEIGHTS = {
    "tiny": (("sensitivity", 3), ("clocked", 2), ("script", 4),
             ("watchdog", 2), ("poker", 2), ("idle", 1)),
    "small": (("sensitivity", 3), ("clocked", 2), ("script", 4),
              ("watchdog", 2), ("poker", 1), ("idle", 3)),
    "medium": (("sensitivity", 2), ("clocked", 2), ("script", 3),
               ("watchdog", 2), ("poker", 1), ("idle", 8)),
    "stress": (("sensitivity", 1), ("clocked", 1), ("script", 1),
               ("watchdog", 2), ("poker", 1), ("idle", 30)),
}


def _weighted_choice(rng, weights):
    total = sum(weight for _, weight in weights)
    pick = rng.randrange(total)
    for kind, weight in weights:
        if pick < weight:
            return kind
        pick -= weight
    raise AssertionError("unreachable")


class ScenarioInstance:
    """One build of a scenario on one kernel: the simulator plus its probes."""

    def __init__(self, scenario, simulator, log, recorder, segments):
        self.scenario = scenario
        self.simulator = simulator
        #: Execution log appended to by every generated process:
        #: ``(process name, time, delta, observed values)`` in run order.
        self.log = log
        self.recorder = recorder
        #: ``[(until, [(signal name, value, delay), ...]), ...]`` — the
        #: segmented run plan, identical across kernels.
        self.segments = segments

    def run(self):
        """Execute the segmented run plan; returns the final time."""
        for until, pokes in self.segments:
            self.simulator.run(until=until)
            for name, value, delay in pokes:
                self.simulator.poke(name, value, delay)
        return self.simulator.run(until=self.scenario.horizon)

    def fingerprint(self):
        """Every observable the two kernels must agree on."""
        sim = self.simulator
        return {
            "log": list(self.log),
            "end_time": sim.now,
            "waveforms": {name: list(changes)
                          for name, changes in self.recorder.changes.items()},
            "final_values": {name: signal.value
                             for name, signal in sim.signals.items()},
            "run_counts": {name: process.run_count
                           for name, process in sim.processes.items()},
            "finished": {name: process.finished
                         for name, process in sim.processes.items()},
            "statistics": dict(sim.statistics),
        }


class KernelScenario:
    """A reproducible random process network, identified by ``(size, seed)``."""

    def __init__(self, seed, size="small"):
        if size not in SIZES:
            raise ValueError(f"unknown size {size!r}; available: {sorted(SIZES)}")
        self.seed = seed
        self.size = size
        self.name = f"kernel-{size}-{seed}"
        rng = random.Random(f"scenario:{size}:{seed}")
        lo, hi, h_lo, h_hi = SIZES[size]
        self.n_processes = rng.randint(lo, hi)
        self.horizon = rng.randint(h_lo, h_hi)
        self.n_layers = rng.randint(2, 4)
        self.n_clocks = rng.randint(1, 3)

    # ------------------------------------------------------------------ build

    def build(self, kernel="production"):
        """Build the network into a fresh *kernel*; returns the instance."""
        rng = random.Random(f"build:{self.size}:{self.seed}")
        sim = create_simulator(kernel)
        log = []

        clocks = [
            sim.add_clock(f"clk{index}", period=2 * rng.randint(2, 12))
            for index in range(self.n_clocks)
        ]

        # Data signals in layers; layer 0 is the clocks.
        n_signals = max(4, self.n_processes // 2)
        n_signals = min(n_signals, 40 if self.size != "stress" else 60)
        layers = [[] for _ in range(self.n_layers)]
        by_layer = {}
        data_signals = []
        for index in range(n_signals):
            layer = rng.randrange(self.n_layers)
            signal = sim.add_signal(f"data_l{layer}_{index}",
                                    init=rng.randrange(8))
            layers[layer].append(signal)
            by_layer[signal.name] = layer + 1  # clocks occupy layer 0
            data_signals.append(signal)
        for clock in clocks:
            by_layer[clock.name] = 0
        # Guarantee no layer is empty (writers need targets).
        for layer, members in enumerate(layers):
            if not members:
                signal = sim.add_signal(f"data_l{layer}_fill", init=0)
                members.append(signal)
                by_layer[signal.name] = layer + 1
                data_signals.append(signal)

        quiet = [sim.add_signal(f"quiet{index}")
                 for index in range(max(2, self.n_processes // 50))]

        context = _BuildContext(sim, rng, log, clocks, layers, by_layer,
                                data_signals, quiet, self.horizon)
        weights = _KIND_WEIGHTS[self.size]
        builders = {
            "sensitivity": context.add_sensitivity_process,
            "clocked": context.add_clocked_process,
            "script": context.add_script_process,
            "watchdog": context.add_watchdog_process,
            "poker": context.add_poker_process,
            "idle": context.add_idle_process,
        }
        for index in range(self.n_processes):
            builders[_weighted_choice(rng, weights)](index)

        recorder = sim.add_recorder(WaveformRecorder())
        segments = self._draw_segments(rng, sim)
        return ScenarioInstance(self, sim, log, recorder, segments)

    def _draw_segments(self, rng, sim):
        """Split the horizon into run segments with pokes in between."""
        segments = []
        if rng.random() < 0.5:
            cut = rng.randint(self.horizon // 4, 3 * self.horizon // 4)
            pokes = []
            for _ in range(rng.randint(0, 3)):
                name = rng.choice(sorted(sim.signals))
                pokes.append((name, rng.randrange(64),
                              rng.choice((0, 0, 1, rng.randint(1, 40)))))
            segments.append((cut, pokes))
        return segments

    def __repr__(self):
        return (
            f"KernelScenario({self.name}, processes={self.n_processes}, "
            f"horizon={self.horizon} ns)"
        )


class _BuildContext:
    """Shared state while populating one simulator with random processes."""

    def __init__(self, sim, rng, log, clocks, layers, by_layer, data_signals,
                 quiet, horizon):
        self.sim = sim
        self.rng = rng
        self.log = log
        self.clocks = clocks
        self.layers = layers
        self.by_layer = by_layer
        self.data_signals = data_signals
        self.quiet = quiet
        self.horizon = horizon

    # -------------------------------------------------------------- utilities

    def _proc_rng(self, name):
        return random.Random(f"proc:{name}")

    def _observe_set(self, watched):
        extra = self.rng.sample(self.data_signals,
                                min(len(self.data_signals), self.rng.randint(1, 3)))
        merged = list(watched)
        for signal in extra:
            if signal not in merged:
                merged.append(signal)
        return merged

    def _zero_delay_targets(self, trigger_layer):
        """Signals a trigger at *trigger_layer* may write with zero delay."""
        out = []
        for layer_index, members in enumerate(self.layers):
            if layer_index + 1 > trigger_layer:
                out.extend(members)
        return out

    def _max_layer(self, signals):
        return max((self.by_layer[sig.name] for sig in signals), default=0)

    def _make_actions(self, trigger_layer):
        """Draw a static write plan for one process/script step.

        Returns ``(zero_targets, delayed_plan)`` where *delayed_plan* is
        ``[(signal, delay), ...]``; values are computed at runtime from the
        observed signals and the process rng so divergence propagates.
        """
        zero_candidates = self._zero_delay_targets(trigger_layer)
        zero_targets = []
        if zero_candidates:
            for _ in range(self.rng.randint(0, 2)):
                zero_targets.append(self.rng.choice(zero_candidates))
        delayed_plan = []
        for _ in range(self.rng.randint(0, 2)):
            delayed_plan.append((self.rng.choice(self.data_signals),
                                 self.rng.randint(1, 60)))
        return zero_targets, delayed_plan

    def _act(self, name, proc_rng, observe, zero_targets, delayed_plan):
        """Runtime body shared by every generated process kind."""
        sim = self.sim
        observed = tuple(signal.value for signal in observe)
        self.log.append((name, sim.now, sim.delta, observed))
        mix = sum(observed) + proc_rng.randrange(997)
        for signal in zero_targets:
            sim.schedule(signal, (mix + signal.change_count) % 251, 0)
        for signal, delay in delayed_plan:
            sim.schedule(signal, (mix * 7 + delay) % 241, delay)

    # -------------------------------------------------------- process kinds

    def add_sensitivity_process(self, index):
        name = f"sense_{index}"
        count = self.rng.randint(1, 3)
        pool = self.clocks + self.data_signals
        watched = self.rng.sample(pool, min(count, len(pool)))
        observe = self._observe_set(watched)
        zero_targets, delayed_plan = self._make_actions(self._max_layer(watched))
        proc_rng = self._proc_rng(name)
        # Fire on a value filter half the time, so runs depend on data.
        threshold = self.rng.choice((None, None, self.rng.randrange(4)))

        def body():
            if threshold is not None and watched[0].value % 4 != threshold:
                return
            self._act(name, proc_rng, observe, zero_targets, delayed_plan)

        self.sim.add_process(name, body, sensitivity=watched,
                             initial_run=self.rng.random() < 0.3)

    def add_clocked_process(self, index):
        name = f"clocked_{index}"
        clock = self.rng.choice(self.clocks)
        edge = self.rng.choice((0, 1))
        observe = self._observe_set([clock])
        zero_targets, delayed_plan = self._make_actions(0)
        proc_rng = self._proc_rng(name)

        def body():
            self._act(name, proc_rng, observe, zero_targets, delayed_plan)

        self.sim.add_clocked_process(name, body, clock, edge=edge)

    def add_script_process(self, index):
        """A generator running a finite random script of waits + actions."""
        name = f"script_{index}"
        steps = []
        for _ in range(self.rng.randint(3, 14)):
            shape = self.rng.randrange(10)
            if shape < 4:
                wait = Timeout(self.rng.randint(1, 80))
                trigger_layer = 0
            elif shape < 8:
                count = self.rng.randint(1, 2)
                pool = self.clocks + self.data_signals
                watched = self.rng.sample(pool, min(count, len(pool)))
                timeout = (None if self.rng.random() < 0.5
                           else self.rng.randint(1, 120))
                wait = SignalChange(*watched, timeout=timeout)
                trigger_layer = self._max_layer(watched)
            else:
                wait = Delta()
                # A Delta wake happens inside the running delta cascade; be
                # conservative and only allow writes into the last layer.
                trigger_layer = len(self.layers) - 1
            observe = self._observe_set(getattr(wait, "signals", ()))
            steps.append((wait, observe, *self._make_actions(trigger_layer)))
        parks = self.rng.random() < 0.5
        park_signal = self.rng.choice(self.quiet)
        proc_rng = self._proc_rng(name)

        def script():
            for wait, observe, zero_targets, delayed_plan in steps:
                yield wait
                self._act(name, proc_rng, observe, zero_targets, delayed_plan)
            while parks:
                yield SignalChange(park_signal, timeout=IDLE_TIMEOUT)

        self.sim.add_process(name, script)

    def add_watchdog_process(self, index):
        """Bounded wait on a rarely-changing signal, re-issued forever."""
        name = f"watchdog_{index}"
        watched = (self.rng.choice(self.quiet) if self.rng.random() < 0.7
                   else self.rng.choice(self.data_signals))
        period = self.rng.randint(20, 150)
        observe = self._observe_set([watched])
        proc_rng = self._proc_rng(name)

        def watchdog():
            while True:
                yield SignalChange(watched, timeout=period)
                observed = tuple(signal.value for signal in observe)
                self.log.append((name, self.sim.now, self.sim.delta,
                                 (watched.event,) + observed))
                proc_rng.random()

        self.sim.add_process(name, watchdog)

    def add_poker_process(self, index):
        """Finite stimulus source: bursts of future transactions."""
        name = f"poker_{index}"
        bursts = []
        for _ in range(self.rng.randint(2, 6)):
            gap = self.rng.randint(5, 120)
            writes = []
            for _ in range(self.rng.randint(1, 4)):
                # Same-delay writes to one signal from several pokers probe
                # matured-transaction ordering (last write wins by seq).
                writes.append((self.rng.choice(self.data_signals),
                               self.rng.randrange(199),
                               self.rng.randint(1, 50)))
            bursts.append((gap, writes))

        def poker():
            for gap, writes in bursts:
                yield Timeout(gap)
                self.log.append((name, self.sim.now, self.sim.delta, ()))
                for signal, value, delay in writes:
                    self.sim.schedule(signal, value, delay)

        self.sim.add_process(name, poker)

    def add_idle_process(self, index):
        """Permanently idle waiter: private signal + far-future deadline."""
        name = f"idle_{index}"
        idle_signal = self.sim.add_signal(f"idle_sig_{index}")

        def idle():
            while True:
                yield SignalChange(idle_signal, timeout=IDLE_TIMEOUT)

        self.sim.add_process(name, idle)
