"""Seeded random generation of kernel-level scenarios.

A :class:`KernelScenario` is a reproducible recipe: given ``(size, seed)``
it builds *the same* process network into any kernel honouring the
:class:`~repro.desim.kernel.Simulator` API, so the differential runner can
execute it once per kernel and compare every observable.

Generated networks mix every scheduling shape the kernel supports:

* free-running clocks (``add_clock``),
* sensitivity-list processes and clocked processes (``add_clocked_process``),
* generator processes running finite random scripts of ``Timeout`` /
  ``SignalChange`` / ``Delta`` waits,
* watchdogs re-issuing bounded waits on quiet signals (waiter-list churn),
* permanently idle waiters with far-future deadlines (population scaling),
* pokers injecting future transaction bursts, plus mid-run pokes between
  segmented ``run()`` calls (the PR-1 stall regressions).

**Boundedness.** Data signals are organised in layers; a process whose
trigger signals reach up to layer *i* may schedule zero-delay writes only
to layers strictly greater than *i* (time-triggered work may start at any
layer).  Zero-delay chains are therefore bounded by the layer count and the
generated networks can never hit the delta-cycle limit, while still
exercising multi-delta cascades every time point.

**Determinism.** All structure is drawn at build time from
``random.Random(<string seed>)`` (string seeding is hash-randomization
independent); runtime behaviour uses per-process streams seeded the same
way, so two builds of one scenario behave identically — unless the kernels
schedule them differently, which is exactly what the kit must detect.
"""

import random

from repro.desim import Delta, SignalChange, Timeout, WaveformRecorder, create_simulator
from repro.cosim import CosimSession
from repro.cosim.faults import FAULT_KINDS
from repro.testkit.coverage import CoverageMap, attach_session, coverage_universe, merge_universes
from repro.testkit.models import generate_system
from repro.testkit.oracles import run_session_to_completion
from repro.utils.canonical import content_digest

#: Size bands: (min processes, max processes, min horizon ns, max horizon ns).
SIZES = {
    "tiny": (4, 12, 1_200, 2_000),
    "small": (25, 60, 1_000, 1_800),
    "medium": (100, 220, 600, 1_000),
    "stress": (900, 1_200, 250, 400),
}

#: Far-future deadline for permanently idle waiters (1 simulated second).
IDLE_TIMEOUT = 1_000_000_000

#: Process-kind weights per size band (active kinds thin out as the
#: population grows, mirroring the idle-heavy workloads the kernel targets).
_KIND_WEIGHTS = {
    "tiny": (("sensitivity", 3), ("clocked", 2), ("script", 4),
             ("watchdog", 2), ("poker", 2), ("idle", 1)),
    "small": (("sensitivity", 3), ("clocked", 2), ("script", 4),
              ("watchdog", 2), ("poker", 1), ("idle", 3)),
    "medium": (("sensitivity", 2), ("clocked", 2), ("script", 3),
               ("watchdog", 2), ("poker", 1), ("idle", 8)),
    "stress": (("sensitivity", 1), ("clocked", 1), ("script", 1),
               ("watchdog", 2), ("poker", 1), ("idle", 30)),
}


def _weighted_choice(rng, weights):
    total = sum(weight for _, weight in weights)
    pick = rng.randrange(total)
    for kind, weight in weights:
        if pick < weight:
            return kind
        pick -= weight
    raise AssertionError("unreachable")


class ScenarioInstance:
    """One build of a scenario on one kernel: the simulator plus its probes."""

    def __init__(self, scenario, simulator, log, recorder, segments):
        self.scenario = scenario
        self.simulator = simulator
        #: Execution log appended to by every generated process:
        #: ``(process name, time, delta, observed values)`` in run order.
        self.log = log
        self.recorder = recorder
        #: ``[(until, [(signal name, value, delay), ...]), ...]`` — the
        #: segmented run plan, identical across kernels.
        self.segments = segments

    def run(self):
        """Execute the segmented run plan; returns the final time."""
        for until, pokes in self.segments:
            self.simulator.run(until=until)
            for name, value, delay in pokes:
                self.simulator.poke(name, value, delay)
        return self.simulator.run(until=self.scenario.horizon)

    def fingerprint(self):
        """Every observable the two kernels must agree on."""
        sim = self.simulator
        return {
            "log": list(self.log),
            "end_time": sim.now,
            "waveforms": {name: list(changes)
                          for name, changes in self.recorder.changes.items()},
            "final_values": {name: signal.value
                             for name, signal in sim.signals.items()},
            "run_counts": {name: process.run_count
                           for name, process in sim.processes.items()},
            "finished": {name: process.finished
                         for name, process in sim.processes.items()},
            "statistics": dict(sim.statistics),
        }


class KernelScenario:
    """A reproducible random process network, identified by ``(size, seed)``."""

    def __init__(self, seed, size="small"):
        if size not in SIZES:
            raise ValueError(f"unknown size {size!r}; available: {sorted(SIZES)}")
        self.seed = seed
        self.size = size
        self.name = f"kernel-{size}-{seed}"
        rng = random.Random(f"scenario:{size}:{seed}")
        lo, hi, h_lo, h_hi = SIZES[size]
        self.n_processes = rng.randint(lo, hi)
        self.horizon = rng.randint(h_lo, h_hi)
        self.n_layers = rng.randint(2, 4)
        self.n_clocks = rng.randint(1, 3)

    # ------------------------------------------------------------------ build

    def build(self, kernel="production"):
        """Build the network into a fresh *kernel*; returns the instance."""
        rng = random.Random(f"build:{self.size}:{self.seed}")
        sim = create_simulator(kernel)
        log = []

        clocks = [
            sim.add_clock(f"clk{index}", period=2 * rng.randint(2, 12))
            for index in range(self.n_clocks)
        ]

        # Data signals in layers; layer 0 is the clocks.
        n_signals = max(4, self.n_processes // 2)
        n_signals = min(n_signals, 40 if self.size != "stress" else 60)
        layers = [[] for _ in range(self.n_layers)]
        by_layer = {}
        data_signals = []
        for index in range(n_signals):
            layer = rng.randrange(self.n_layers)
            signal = sim.add_signal(f"data_l{layer}_{index}",
                                    init=rng.randrange(8))
            layers[layer].append(signal)
            by_layer[signal.name] = layer + 1  # clocks occupy layer 0
            data_signals.append(signal)
        for clock in clocks:
            by_layer[clock.name] = 0
        # Guarantee no layer is empty (writers need targets).
        for layer, members in enumerate(layers):
            if not members:
                signal = sim.add_signal(f"data_l{layer}_fill", init=0)
                members.append(signal)
                by_layer[signal.name] = layer + 1
                data_signals.append(signal)

        quiet = [sim.add_signal(f"quiet{index}")
                 for index in range(max(2, self.n_processes // 50))]

        context = _BuildContext(sim, rng, log, clocks, layers, by_layer,
                                data_signals, quiet, self.horizon)
        weights = _KIND_WEIGHTS[self.size]
        builders = {
            "sensitivity": context.add_sensitivity_process,
            "clocked": context.add_clocked_process,
            "script": context.add_script_process,
            "watchdog": context.add_watchdog_process,
            "poker": context.add_poker_process,
            "idle": context.add_idle_process,
        }
        for index in range(self.n_processes):
            builders[_weighted_choice(rng, weights)](index)

        recorder = sim.add_recorder(WaveformRecorder())
        segments = self._draw_segments(rng, sim)
        return ScenarioInstance(self, sim, log, recorder, segments)

    def _draw_segments(self, rng, sim):
        """Split the horizon into run segments with pokes in between."""
        segments = []
        if rng.random() < 0.5:
            cut = rng.randint(self.horizon // 4, 3 * self.horizon // 4)
            pokes = []
            for _ in range(rng.randint(0, 3)):
                name = rng.choice(sorted(sim.signals))
                pokes.append((name, rng.randrange(64),
                              rng.choice((0, 0, 1, rng.randint(1, 40)))))
            segments.append((cut, pokes))
        return segments

    def __repr__(self):
        return (
            f"KernelScenario({self.name}, processes={self.n_processes}, "
            f"horizon={self.horizon} ns)"
        )


class _BuildContext:
    """Shared state while populating one simulator with random processes."""

    def __init__(self, sim, rng, log, clocks, layers, by_layer, data_signals,
                 quiet, horizon):
        self.sim = sim
        self.rng = rng
        self.log = log
        self.clocks = clocks
        self.layers = layers
        self.by_layer = by_layer
        self.data_signals = data_signals
        self.quiet = quiet
        self.horizon = horizon

    # -------------------------------------------------------------- utilities

    def _proc_rng(self, name):
        return random.Random(f"proc:{name}")

    def _observe_set(self, watched):
        extra = self.rng.sample(self.data_signals,
                                min(len(self.data_signals), self.rng.randint(1, 3)))
        merged = list(watched)
        for signal in extra:
            if signal not in merged:
                merged.append(signal)
        return merged

    def _zero_delay_targets(self, trigger_layer):
        """Signals a trigger at *trigger_layer* may write with zero delay."""
        out = []
        for layer_index, members in enumerate(self.layers):
            if layer_index + 1 > trigger_layer:
                out.extend(members)
        return out

    def _max_layer(self, signals):
        return max((self.by_layer[sig.name] for sig in signals), default=0)

    def _make_actions(self, trigger_layer):
        """Draw a static write plan for one process/script step.

        Returns ``(zero_targets, delayed_plan)`` where *delayed_plan* is
        ``[(signal, delay), ...]``; values are computed at runtime from the
        observed signals and the process rng so divergence propagates.
        """
        zero_candidates = self._zero_delay_targets(trigger_layer)
        zero_targets = []
        if zero_candidates:
            for _ in range(self.rng.randint(0, 2)):
                zero_targets.append(self.rng.choice(zero_candidates))
        delayed_plan = []
        for _ in range(self.rng.randint(0, 2)):
            delayed_plan.append((self.rng.choice(self.data_signals),
                                 self.rng.randint(1, 60)))
        return zero_targets, delayed_plan

    def _act(self, name, proc_rng, observe, zero_targets, delayed_plan):
        """Runtime body shared by every generated process kind."""
        sim = self.sim
        observed = tuple(signal.value for signal in observe)
        self.log.append((name, sim.now, sim.delta, observed))
        mix = sum(observed) + proc_rng.randrange(997)
        for signal in zero_targets:
            sim.schedule(signal, (mix + signal.change_count) % 251, 0)
        for signal, delay in delayed_plan:
            sim.schedule(signal, (mix * 7 + delay) % 241, delay)

    # -------------------------------------------------------- process kinds

    def add_sensitivity_process(self, index):
        name = f"sense_{index}"
        count = self.rng.randint(1, 3)
        pool = self.clocks + self.data_signals
        watched = self.rng.sample(pool, min(count, len(pool)))
        observe = self._observe_set(watched)
        zero_targets, delayed_plan = self._make_actions(self._max_layer(watched))
        proc_rng = self._proc_rng(name)
        # Fire on a value filter half the time, so runs depend on data.
        threshold = self.rng.choice((None, None, self.rng.randrange(4)))

        def body():
            if threshold is not None and watched[0].value % 4 != threshold:
                return
            self._act(name, proc_rng, observe, zero_targets, delayed_plan)

        self.sim.add_process(name, body, sensitivity=watched,
                             initial_run=self.rng.random() < 0.3)

    def add_clocked_process(self, index):
        name = f"clocked_{index}"
        clock = self.rng.choice(self.clocks)
        edge = self.rng.choice((0, 1))
        observe = self._observe_set([clock])
        zero_targets, delayed_plan = self._make_actions(0)
        proc_rng = self._proc_rng(name)

        def body():
            self._act(name, proc_rng, observe, zero_targets, delayed_plan)

        self.sim.add_clocked_process(name, body, clock, edge=edge)

    def add_script_process(self, index):
        """A generator running a finite random script of waits + actions."""
        name = f"script_{index}"
        steps = []
        for _ in range(self.rng.randint(3, 14)):
            shape = self.rng.randrange(10)
            if shape < 4:
                wait = Timeout(self.rng.randint(1, 80))
                trigger_layer = 0
            elif shape < 8:
                count = self.rng.randint(1, 2)
                pool = self.clocks + self.data_signals
                watched = self.rng.sample(pool, min(count, len(pool)))
                timeout = (None if self.rng.random() < 0.5
                           else self.rng.randint(1, 120))
                wait = SignalChange(*watched, timeout=timeout)
                trigger_layer = self._max_layer(watched)
            else:
                wait = Delta()
                # A Delta wake happens inside the running delta cascade; be
                # conservative and only allow writes into the last layer.
                trigger_layer = len(self.layers) - 1
            observe = self._observe_set(getattr(wait, "signals", ()))
            steps.append((wait, observe, *self._make_actions(trigger_layer)))
        parks = self.rng.random() < 0.5
        park_signal = self.rng.choice(self.quiet)
        proc_rng = self._proc_rng(name)

        def script():
            for wait, observe, zero_targets, delayed_plan in steps:
                yield wait
                self._act(name, proc_rng, observe, zero_targets, delayed_plan)
            while parks:
                yield SignalChange(park_signal, timeout=IDLE_TIMEOUT)

        self.sim.add_process(name, script)

    def add_watchdog_process(self, index):
        """Bounded wait on a rarely-changing signal, re-issued forever."""
        name = f"watchdog_{index}"
        watched = (self.rng.choice(self.quiet) if self.rng.random() < 0.7
                   else self.rng.choice(self.data_signals))
        period = self.rng.randint(20, 150)
        observe = self._observe_set([watched])
        proc_rng = self._proc_rng(name)

        def watchdog():
            while True:
                yield SignalChange(watched, timeout=period)
                observed = tuple(signal.value for signal in observe)
                self.log.append((name, self.sim.now, self.sim.delta,
                                 (watched.event,) + observed))
                proc_rng.random()

        self.sim.add_process(name, watchdog)

    def add_poker_process(self, index):
        """Finite stimulus source: bursts of future transactions."""
        name = f"poker_{index}"
        bursts = []
        for _ in range(self.rng.randint(2, 6)):
            gap = self.rng.randint(5, 120)
            writes = []
            for _ in range(self.rng.randint(1, 4)):
                # Same-delay writes to one signal from several pokers probe
                # matured-transaction ordering (last write wins by seq).
                writes.append((self.rng.choice(self.data_signals),
                               self.rng.randrange(199),
                               self.rng.randint(1, 50)))
            bursts.append((gap, writes))

        def poker():
            for gap, writes in bursts:
                yield Timeout(gap)
                self.log.append((name, self.sim.now, self.sim.delta, ()))
                for signal, value, delay in writes:
                    self.sim.schedule(signal, value, delay)

        self.sim.add_process(name, poker)

    def add_idle_process(self, index):
        """Permanently idle waiter: private signal + far-future deadline."""
        name = f"idle_{index}"
        idle_signal = self.sim.add_signal(f"idle_sig_{index}")

        def idle():
            while True:
                yield SignalChange(idle_signal, timeout=IDLE_TIMEOUT)

        self.sim.add_process(name, idle)


# ---------------------------------------------------------------------------
# Coverage-directed co-simulation campaigns
# ---------------------------------------------------------------------------
#
# Above this line the generator produces *kernel*-level scenarios.  The
# section below generates *system*-level scenario configs — plain dicts
# naming a family (plain co-simulation, fault injection, back-annotated
# real-time) plus its knobs — and runs them under the coverage
# instrumentation of :mod:`repro.testkit.coverage`.  Two campaign drivers
# share one budget accounting:
#
# * :func:`run_uniform` draws configs blindly (uniform family, uniform
#   knobs, with replacement) and dispatches the deduplicated survivors;
# * :func:`run_directed` spends the same budget one run at a time, mutating
#   novelty-weighted parents — configs whose runs opened new coverage bins
#   breed, barren ones die out.  No learning machinery: a plain feedback
#   loop over the bin counters.
#
# Both dedupe through :func:`dedupe_scenarios` (identical ``(family,
# knobs)`` configs would otherwise inflate the run counts that the sweep
# scoreboard reports).  All draws come from ``random.Random(<string>)`` so
# a campaign is reproducible from ``(budget, rng_seed)`` alone.

#: Families understood by :func:`run_scenario_config`.
SCENARIO_FAMILIES = ("system", "fault", "realtime")

#: Default number of generated-system seeds a campaign draws from.
SCENARIO_SEED_SPAN = 10

#: Fault-target choices: index into the system's communication units.
FAULT_UNIT_CHOICES = (0, 1, 2)

#: Load multipliers of the real-time family.
REALTIME_LOADS = (1, 2, 4)

#: Deadline factors of the real-time family (2 is tight enough to miss).
REALTIME_DEADLINE_FACTORS = (2, 40)


def random_scenario_config(rng, seed_span=SCENARIO_SEED_SPAN):
    """Draw one scenario config blindly: uniform family, uniform knobs."""
    family = rng.choice(SCENARIO_FAMILIES)
    config = {"family": family, "seed": rng.randrange(seed_span)}
    if family == "fault":
        config["kind"] = rng.choice(FAULT_KINDS)
        config["unit_index"] = rng.choice(FAULT_UNIT_CHOICES)
    elif family == "realtime":
        config["load"] = rng.choice(REALTIME_LOADS)
        config["deadline_factor"] = rng.choice(REALTIME_DEADLINE_FACTORS)
    return config


def mutate_scenario_config(rng, config, seed_span=SCENARIO_SEED_SPAN):
    """One deterministic mutation of *config*: reseed, re-knob, or refamily.

    Mutations preserve the family two thirds of the time (exploit: same
    behaviour class, new angle) and otherwise redraw the family blindly
    (explore: escape a saturated family).
    """
    if rng.random() < 1 / 3:
        return random_scenario_config(rng, seed_span)
    config = dict(config)
    family = config["family"]
    if family == "fault":
        mutation = rng.randrange(3)
        if mutation == 0:
            config["seed"] = rng.randrange(seed_span)
        elif mutation == 1:
            config["kind"] = rng.choice(FAULT_KINDS)
        else:
            config["unit_index"] = rng.choice(FAULT_UNIT_CHOICES)
    elif family == "realtime":
        mutation = rng.randrange(3)
        if mutation == 0:
            config["seed"] = rng.randrange(seed_span)
        elif mutation == 1:
            config["load"] = rng.choice(REALTIME_LOADS)
        else:
            config["deadline_factor"] = rng.choice(REALTIME_DEADLINE_FACTORS)
    else:
        config["seed"] = rng.randrange(seed_span)
    return config


def scenario_config_digest(config):
    """Canonical identity of a scenario config (dedup and cache key)."""
    return content_digest(config)


def dedupe_scenarios(configs):
    """Drop configs identical to an earlier one, preserving order.

    Identity is the canonical digest of the config dict, so key order and
    dict identity do not matter.  Duplicate ``(seed, knobs)`` configs would
    execute byte-identical runs and inflate every count the campaign
    reports; they must never reach dispatch.
    """
    seen = set()
    unique = []
    for config in configs:
        digest = scenario_config_digest(config)
        if digest in seen:
            continue
        seen.add(digest)
        unique.append(config)
    return unique


def run_scenario_config(config, coverage, kernel="production", fsm_mode=None):
    """Execute one scenario config, folding its run into *coverage*.

    Returns a small report dict: the config, its digest, and the
    scoreboard-feeding observations of its family (fault survival,
    deadline misses).
    """
    from repro.testkit.scenarios import FaultScenario, RealtimeScenario

    family = config["family"]
    report = {"config": dict(config),
              "digest": scenario_config_digest(config)}
    if family == "fault":
        scenario = FaultScenario(config["seed"], kind=config["kind"],
                                 unit_index=config["unit_index"])
        session, result = scenario.run(kernel, fsm_mode=fsm_mode,
                                       coverage=coverage)
        report["survival"] = scenario.survival(session, result)
        report["end_time"] = result.end_time
    elif family == "realtime":
        scenario = RealtimeScenario(config["seed"], load=config["load"],
                                    deadline_factor=config["deadline_factor"])
        _, result, timing = scenario.run(kernel, fsm_mode=fsm_mode,
                                         coverage=coverage)
        report["deadline_misses"] = timing["deadline_misses"]
        report["end_time"] = result.end_time
    elif family == "system":
        system = generate_system(config["seed"])
        session = CosimSession(system.build_model(), kernel=kernel,
                               fsm_mode=fsm_mode, **system.cosim_params)
        attach_session(session, coverage)
        result = run_session_to_completion(session, system.expectations)
        coverage.record_trace(result.trace)
        report["end_time"] = result.end_time
    else:
        raise ValueError(f"unknown scenario family {config['family']!r}; "
                         f"available: {SCENARIO_FAMILIES}")
    return report


def campaign_universe(seed_span=SCENARIO_SEED_SPAN):
    """The static state/edge universe of every system a campaign can touch."""
    return merge_universes(
        coverage_universe(generate_system(seed).build_model())
        for seed in range(seed_span)
    )


def run_uniform(budget, rng_seed=0, seed_span=SCENARIO_SEED_SPAN,
                kernel="production", fsm_mode=None):
    """Blind baseline: *budget* uniform draws, deduplicated, dispatched.

    Duplicate draws are discarded (never dispatched) but still consume
    budget — blindness pays for its collisions.  Returns the same campaign
    dict as :func:`run_directed`.
    """
    rng = random.Random(f"uniform:{rng_seed}")
    drawn = [random_scenario_config(rng, seed_span) for _ in range(budget)]
    unique = dedupe_scenarios(drawn)
    coverage = CoverageMap()
    reports = [run_scenario_config(config, coverage, kernel, fsm_mode)
               for config in unique]
    return {"mode": "uniform", "budget": budget, "executed": len(reports),
            "coverage": coverage, "reports": reports}


def _covered_bins(coverage, universe):
    """The universe state/edge bins *coverage* has reached, as a tag set."""
    return ({f"S:{key}" for key in universe["states"]
             if key in coverage.state_visits}
            | {f"E:{key}" for key in universe["edges"]
               if key in coverage.edges})


def _seed_bins(seed, cache):
    """Tag set of the state/edge bins *seed*'s own model declares."""
    if seed not in cache:
        universe = coverage_universe(generate_system(seed).build_model())
        cache[seed] = ({f"S:{key}" for key in universe["states"]}
                       | {f"E:{key}" for key in universe["edges"]})
    return cache[seed]


def _is_stall_bin(tag):
    """True for bins only backpressure reaches: WAIT states, self-loop edges.

    Tags are ``S:<fsm>/<state>`` or ``E:<fsm>/<from>><to>``; a stall bin
    is a WAIT-named state/edge or an edge that loops on its own state —
    exactly the shapes a fault plan (stuck strobe, forced-full buffer)
    exists to provoke.
    """
    if "WAIT" in tag:
        return True
    if tag.startswith("E:"):
        _, _, edge = tag.partition("/")
        source, _, target = edge.partition(">")
        return source == target
    return False


def run_directed(budget, rng_seed=0, seed_span=SCENARIO_SEED_SPAN,
                 kernel="production", fsm_mode=None, greed=0.75,
                 universe=None, candidates=12):
    """Coverage-directed campaign: one run at a time, feedback-driven.

    Novelty is measured against the campaign's static state/edge
    *universe* — the metric the scoreboard reports — not against the raw
    bin count, where the unbounded phase/ordering bins would drown the
    signal (every run opens a few interleaving n-grams; only interesting
    runs open unexercised FSM edges).  Each step drafts a pool of fresh
    candidates — mutations of parents weighted by ``1 + 4 × new universe
    bins their run opened`` (*greed* of the time) or blind draws — and
    dispatches the candidate with the highest *potential*: the sum, over
    the uncovered bins its own model declares, of a promise weight that
    halves every time a run declaring the bin fails to cover it (so
    statically-declared-but-unreachable bins stop attracting budget), with
    fault-family candidates scoring uncovered stall bins triple (stuck
    strobes and forced-full buffers are the designated tool for WAIT
    states and blocked self-loops).  The dynamic parent weighting is what
    keeps the loop mutating configs that actually deliver — e.g. spreading
    a stuck-strobe plan that lit a stall state onto the sibling units and
    seeds whose stall bins are still dark.  A step that drafts no fresh
    candidate burns its budget, mirroring the collision cost of the
    uniform baseline.
    """
    rng = random.Random(f"directed:{rng_seed}")
    if universe is None:
        universe = campaign_universe(seed_span)
    coverage = CoverageMap()
    covered = set()
    executed = set()
    corpus = []  # (config, novelty) pairs; weight = 1 + 4 * novelty
    reports = []
    seed_bins_cache = {}
    # Promise decay is keyed per (family, fault kind): a contention run
    # failing to light a stall bin says nothing about what a stuck-strobe
    # run would do to it.
    dark_tries = {}  # (family, kind, bin tag) -> failed promises

    def _signature(config):
        return (config["family"], config.get("kind"))

    def potential(candidate):
        # Integer arithmetic throughout: the sum runs over a set, and only
        # an exact (order-independent) total keeps the campaign identical
        # under every PYTHONHASHSEED.  A full promise is worth 2**8; each
        # failed attempt halves it, hitting zero after eight tries.
        promised = _seed_bins(candidate["seed"], seed_bins_cache) - covered
        signature = _signature(candidate)
        score = 0
        boost = 3 if candidate["family"] == "fault" else 1
        for tag in promised:
            tries = dark_tries.get(signature + (tag,), 0)
            weight = 2 ** (8 - tries) if tries < 8 else 0
            score += weight * (boost if _is_stall_bin(tag) else 1)
        return score

    for _ in range(budget):
        pool = []
        pooled = set()
        for _attempt in range(candidates):
            if corpus and rng.random() < greed:
                weights = [1 + 4 * novelty for _, novelty in corpus]
                parent, _ = rng.choices(corpus, weights=weights)[0]
                candidate = mutate_scenario_config(rng, parent, seed_span)
            else:
                candidate = random_scenario_config(rng, seed_span)
            digest = scenario_config_digest(candidate)
            if digest in executed or digest in pooled:
                continue
            pooled.add(digest)
            pool.append(candidate)
        if not pool:
            continue
        config = max(pool, key=potential)
        promised = _seed_bins(config["seed"], seed_bins_cache) - covered
        before = len(covered)
        report = run_scenario_config(config, coverage, kernel, fsm_mode)
        covered = _covered_bins(coverage, universe)
        novelty = len(covered) - before
        signature = _signature(config)
        for tag in promised - covered:
            key = signature + (tag,)
            dark_tries[key] = dark_tries.get(key, 0) + 1
        report["novelty"] = novelty
        executed.add(report["digest"])
        corpus.append((config, novelty))
        reports.append(report)
    return {"mode": "directed", "budget": budget, "executed": len(reports),
            "coverage": coverage, "reports": reports}
