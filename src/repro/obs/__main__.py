"""Telemetry artefact CLI: summarise, convert, diff, smoke-check.

Usage::

    python -m repro.obs summary obs.json          # human-readable digest
    python -m repro.obs convert obs.json --to chrome -o trace.json
    python -m repro.obs convert obs.json --to prometheus
    python -m repro.obs diff before.json after.json
    python -m repro.obs selfcheck [--quick]       # CI obs-smoke entry

An *artefact* is the JSON file :meth:`repro.obs.Telemetry.write` produces
(``--obs-out`` on ``python -m repro.sweep``, or any direct caller).

``selfcheck`` is the end-to-end smoke: it enables telemetry, runs a small
scenario sweep through :class:`~repro.sweep.service.SweepService`, exports
the artefact, then proves the two exposition paths — the Chrome
trace-event JSON passes the importer-shaped schema check
(:func:`~repro.obs.trace.validate_chrome_trace`) and the Prometheus text
parses line by line (:func:`~repro.obs.metrics.parse_prometheus`) — and
that the disabled path allocates no spans.  Exit 0 means the telemetry
layer holds up; ``make obs-smoke`` runs exactly this.
"""

import argparse
import json
import sys

from repro.obs import (
    NOOP_SPAN,
    TELEMETRY,
    chrome_trace,
    load_artifact,
    parse_prometheus,
    validate_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.utils.text import format_table


def _registry_from_artifact(artifact):
    """Rebuild a registry holding the artefact's metric values."""
    registry = MetricsRegistry()
    for family in artifact["metrics"]["families"]:
        for entry in family["series"]:
            labels = entry["labels"] or None
            if family["type"] == "histogram":
                instrument = registry.histogram(
                    family["name"], buckets=family["buckets"],
                    labels=labels, help=family["help"])
                instrument.counts = list(entry["counts"])
                instrument.total = entry["count"]
                instrument.sum = entry["sum"]
            elif family["type"] == "counter":
                registry.counter(family["name"], labels=labels,
                                 help=family["help"]).value = entry["value"]
            else:
                registry.gauge(family["name"], labels=labels,
                               help=family["help"]).value = entry["value"]
    return registry


def _histogram_quantile(buckets, counts, q):
    """Approximate quantile from fixed buckets (upper bound of the bin)."""
    total = sum(counts)
    if not total:
        return None
    target = q * total
    cumulative = 0
    for bound, count in zip(list(buckets) + [float("inf")], counts):
        cumulative += count
        if cumulative >= target:
            return bound
    return float("inf")


# ------------------------------------------------------------------ summary

def _label_text(labels):
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def summarize(artifact):
    """Human-readable digest of one artefact; returns the text."""
    lines = []
    counter_rows, gauge_rows, histo_rows = [], [], []
    for family in artifact["metrics"]["families"]:
        for entry in family["series"]:
            label = _label_text(entry["labels"])
            if family["type"] == "histogram":
                p50 = _histogram_quantile(family["buckets"], entry["counts"],
                                          0.5)
                p95 = _histogram_quantile(family["buckets"], entry["counts"],
                                          0.95)
                histo_rows.append((
                    family["name"], label, entry["count"],
                    round(entry["sum"], 6),
                    "inf" if p50 == float("inf") else p50,
                    "inf" if p95 == float("inf") else p95,
                ))
            elif family["type"] == "counter":
                counter_rows.append((family["name"], label,
                                     round(entry["value"], 6)))
            else:
                gauge_rows.append((family["name"], label, entry["value"]))
    if counter_rows:
        lines.append("counters:")
        lines.append(format_table(["name", "labels", "value"], counter_rows))
    if gauge_rows:
        lines.append("gauges:")
        lines.append(format_table(["name", "labels", "value"], gauge_rows))
    if histo_rows:
        lines.append("histograms:")
        lines.append(format_table(
            ["name", "labels", "count", "sum", "~p50(<=)", "~p95(<=)"],
            histo_rows))

    trace = artifact["trace"]
    by_name = {}
    for span in trace["spans"]:
        entry = by_name.setdefault(span["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += span["dur_us"]
    lines.append(
        f"trace: {trace['finished']} spans finished, "
        f"{trace['dropped']} dropped (ring limit {trace['limit']})"
    )
    if by_name:
        rows = [
            (name, count, round(total_us / 1000, 3),
             round(total_us / count / 1000, 3))
            for name, (count, total_us) in
            sorted(by_name.items(), key=lambda item: -item[1][1])
        ]
        lines.append(format_table(
            ["span", "count", "total (ms)", "mean (ms)"], rows))
    return "\n".join(lines)


# --------------------------------------------------------------------- diff

def diff_artifacts(before, after):
    """Counter/gauge deltas between two artefacts; returns the text."""
    def flat(artifact):
        values = {}
        for family in artifact["metrics"]["families"]:
            if family["type"] == "histogram":
                for entry in family["series"]:
                    key = (family["name"] + "_count",
                           _label_text(entry["labels"]))
                    values[key] = entry["count"]
            else:
                for entry in family["series"]:
                    values[(family["name"], _label_text(entry["labels"]))] \
                        = entry["value"]
        return values

    old, new = flat(before), flat(after)
    rows = []
    for key in sorted(set(old) | set(new)):
        left, right = old.get(key), new.get(key)
        if left == right:
            continue
        delta = (right or 0) - (left or 0)
        rows.append((key[0], key[1],
                     "-" if left is None else round(left, 6),
                     "-" if right is None else round(right, 6),
                     round(delta, 6)))
    if not rows:
        return "no metric differences"
    return format_table(["name", "labels", "before", "after", "delta"], rows)


# ---------------------------------------------------------------- selfcheck

def selfcheck(quick=True):
    """End-to-end telemetry smoke over a small sweep; returns exit code."""
    from repro.sweep.jobs import CosimJob, KernelJob
    from repro.sweep.service import SweepService

    checks = 0

    def note(label):
        nonlocal checks
        checks += 1
        print(f"  [{checks}] {label}")

    # The disabled fast path first: one shared no-op span, nothing stored.
    TELEMETRY.disable()
    TELEMETRY.reset()
    probe = TELEMETRY.span("probe")
    assert probe is NOOP_SPAN, "disabled telemetry must hand out NOOP_SPAN"
    with probe:
        pass
    assert len(TELEMETRY.tracer) == 0, "disabled telemetry recorded a span"
    note("disabled path: shared no-op span, ring buffer untouched")

    TELEMETRY.enable()
    try:
        jobs = [KernelJob("tiny", seed) for seed in range(2 if quick else 8)]
        jobs += [CosimJob(seed) for seed in range(1 if quick else 4)]
        report = SweepService(jobs, workers=1).run()
        assert report.ok, f"sweep failed:\n{report.summary()}"
        note(f"instrumented sweep of {len(jobs)} jobs passed")

        artifact = TELEMETRY.export()
        spans = artifact["trace"]["spans"]
        assert any(span["name"] == "sweep.job" for span in spans), \
            "no sweep.job spans were traced"
        assert any(f["name"] == "repro_kernel_phase_seconds_total"
                   for f in artifact["metrics"]["families"]), \
            "kernel phase counters missing from the registry"
        note(f"artefact holds {len(spans)} spans and "
             f"{len(artifact['metrics']['families'])} metric families")

        trace = chrome_trace(artifact["trace"])
        events = validate_chrome_trace(
            json.loads(json.dumps(trace)))  # through a real JSON round-trip
        note(f"Chrome trace-event JSON validates ({events} events)")

        exposition = TELEMETRY.metrics.to_prometheus()
        samples = parse_prometheus(exposition)
        assert samples, "empty Prometheus exposition"
        note(f"Prometheus exposition parses ({len(samples)} samples)")
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()
    print(f"obs selfcheck OK ({checks} checks)")
    return 0


# --------------------------------------------------------------------- main

def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="summarise, convert and diff telemetry artefacts",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser("summary", help="print a digest of an artefact")
    cmd.add_argument("artifact")

    cmd = commands.add_parser("convert",
                              help="export an artefact in another format")
    cmd.add_argument("artifact")
    cmd.add_argument("--to", choices=("chrome", "prometheus"),
                     required=True, dest="target")
    cmd.add_argument("-o", "--out", default=None,
                     help="output file (default stdout)")

    cmd = commands.add_parser("diff",
                              help="metric deltas between two artefacts")
    cmd.add_argument("before")
    cmd.add_argument("after")

    cmd = commands.add_parser("selfcheck",
                              help="instrumented sweep + exposition checks")
    cmd.add_argument("--quick", action="store_true",
                     help="smallest job mix (CI smoke tier)")

    args = parser.parse_args(argv)
    try:
        if args.command == "selfcheck":
            return selfcheck(quick=args.quick)
        if args.command == "summary":
            print(summarize(load_artifact(args.artifact)))
            return 0
        if args.command == "diff":
            print(diff_artifacts(load_artifact(args.before),
                                 load_artifact(args.after)))
            return 0
        artifact = load_artifact(args.artifact)
        if args.target == "chrome":
            payload = chrome_trace(artifact["trace"])
            validate_chrome_trace(payload)
            text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        else:
            registry = _registry_from_artifact(artifact)
            text = registry.to_prometheus()
            parse_prometheus(text)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"written to {args.out}")
        else:
            sys.stdout.write(text)
        return 0
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except AssertionError as exc:
        print(f"selfcheck FAILED: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
