"""Unified process-wide telemetry: metrics, spans, exports.

Every runtime layer of the project — the delta-cycle kernels, the
co-simulation session, the sweep service and worker pool, the HTTP job
service — reports into the one :data:`TELEMETRY` object defined here.  It
bundles a :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
fixed-bucket histograms) and a :class:`~repro.obs.trace.SpanTracer`
(wall-clock spans in a bounded ring buffer, exportable as Chrome
trace-event JSON).

**The disabled fast path is the contract.**  Telemetry is off by default;
every instrumentation site in the project guards itself with one
attribute check (``if TELEMETRY.enabled:`` — or a cached binding of it)
and :func:`span` returns one shared no-op context manager, so a
telemetry-off run allocates no spans and pays nothing measurable (the
cosim benchmark gate pins this).  Enabling costs real wall-clock work by
design — that is what profiling is — but must never change *simulated*
results: the full conformance sweep runs with telemetry enabled to pin
that invariant.

Activation:

* programmatically — ``TELEMETRY.enable()`` / ``TELEMETRY.disable()``;
* from the environment — ``REPRO_OBS=1`` enables at import, which is how
  batch CLIs (``python -m repro.testkit``, ``make conformance``) run
  instrumented without growing flags;
* artefacts — :meth:`Telemetry.export` snapshots metrics + trace into one
  JSON-able dict that ``python -m repro.obs`` summarises, converts
  (Chrome trace / Prometheus) and diffs.

See ``docs/observability.md`` for the instrument catalog.
"""

import json
import os
import threading

from repro.obs.metrics import (
    DEPTH_BUCKETS,
    DURATION_BUCKETS,
    MetricsRegistry,
    parse_prometheus,
    prometheus_line,
)
from repro.obs.trace import (
    DEFAULT_SPAN_LIMIT,
    SpanTracer,
    chrome_trace,
    validate_chrome_trace,
)

__all__ = [
    "TELEMETRY", "Telemetry", "NOOP_SPAN", "span", "enabled",
    "MetricsRegistry", "SpanTracer", "chrome_trace", "validate_chrome_trace",
    "parse_prometheus", "prometheus_line",
    "DURATION_BUCKETS", "DEPTH_BUCKETS", "DEFAULT_SPAN_LIMIT",
    "ARTIFACT_FORMAT", "load_artifact",
]

#: Telemetry artefact schema version (the dict ``Telemetry.export`` emits).
ARTIFACT_FORMAT = 1


class _NoopSpan:
    """The shared do-nothing span; one instance serves every disabled site."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        return False


NOOP_SPAN = _NoopSpan()


class Telemetry:
    """One registry + one tracer + the enabled flag; see the module doc."""

    def __init__(self, span_limit=DEFAULT_SPAN_LIMIT):
        self.enabled = False
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer(limit=span_limit)
        self._lock = threading.Lock()

    # ------------------------------------------------------------- lifecycle

    def enable(self, span_limit=None):
        """Turn instrumentation on (idempotent); returns self.

        *span_limit* resizes the tracer's ring buffer; existing spans are
        kept (up to the new limit).
        """
        with self._lock:
            if span_limit is not None and span_limit != self.tracer.limit:
                old = self.tracer
                self.tracer = SpanTracer(limit=span_limit)
                self.tracer.epoch = old.epoch
                self.tracer.started = old.started
                self.tracer.finished = old.finished
                for entry in old.spans():
                    self.tracer._spans.append(entry)
            self.enabled = True
        return self

    def disable(self):
        """Turn instrumentation off; accumulated data stays readable."""
        self.enabled = False
        return self

    def reset(self):
        """Drop all accumulated metrics and spans (enabled flag unchanged)."""
        self.metrics.reset()
        self.tracer.reset()
        return self

    # ----------------------------------------------------------------- spans

    def span(self, name, cat="repro", **args):
        """A timed region; the shared no-op when telemetry is disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return self.tracer.span(name, cat, **args)

    # ------------------------------------------------------------- artefacts

    def export(self):
        """The full telemetry state as one JSON-able artefact dict."""
        return {
            "format": ARTIFACT_FORMAT,
            "enabled": self.enabled,
            "metrics": self.metrics.as_dict(),
            "trace": self.tracer.as_dict(),
        }

    def write(self, path):
        """Write :meth:`export` to *path* as deterministic JSON."""
        artifact = self.export()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return artifact

    def __repr__(self):
        return (f"Telemetry(enabled={self.enabled}, "
                f"spans={len(self.tracer)}, "
                f"families={len(self.metrics.as_dict()['families'])})")


def load_artifact(path):
    """Read and format-check a telemetry artefact written by ``write``."""
    with open(path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    if not isinstance(artifact, dict) \
            or artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path}: not a telemetry artefact "
            f"(format {artifact.get('format') if isinstance(artifact, dict) else '?'!r}, "
            f"expected {ARTIFACT_FORMAT})"
        )
    for key in ("metrics", "trace"):
        if key not in artifact:
            raise ValueError(f"{path}: artefact is missing {key!r}")
    return artifact


#: The process-wide telemetry instance every instrumentation site uses.
TELEMETRY = Telemetry()

if os.environ.get("REPRO_OBS", "") not in ("", "0"):
    TELEMETRY.enable()


def enabled():
    """True when instrumentation is on."""
    return TELEMETRY.enabled


def span(name, cat="repro", **args):
    """Module-level convenience for :meth:`Telemetry.span`."""
    if not TELEMETRY.enabled:
        return NOOP_SPAN
    return TELEMETRY.tracer.span(name, cat, **args)
