"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The registry is the numeric half of :mod:`repro.obs` (spans are the other
half, in :mod:`repro.obs.trace`).  Instruments are *named families* with
optional labels; asking for the same ``(name, labels)`` twice returns the
same instrument object, so call sites may either look instruments up per
event or — on hot paths — bind them once and increment a cached object.

Design rules, in the order they matter:

* **Cheap increments.**  ``Counter.inc`` / ``Gauge.set`` /
  ``Histogram.observe`` take no locks; under CPython's GIL a lost update
  between racing threads skews a telemetry number by one event at worst,
  which is an acceptable price for not serialising the hot path.  Family
  *creation* is locked, so the registry structure itself is always
  consistent (the property the concurrent ``/metrics`` tests pin).
* **Fixed buckets.**  Histograms take their bucket bounds at creation and
  never rebalance; two runs of the same workload therefore produce
  comparable distributions, and the Prometheus exposition is cumulative
  over a stable ``le`` set.
* **Deterministic rendering.**  :meth:`MetricsRegistry.as_dict` and
  :meth:`MetricsRegistry.to_prometheus` order families by name and series
  by label value, so equal registries serialise byte-identically — the
  same canonical-output rule every other artefact in this project obeys.

:func:`parse_prometheus` is the line-by-line validator used by the CI
``obs-smoke`` job and the tests: it accepts exactly the exposition this
module (and :meth:`repro.server.service.JobService.prometheus_metrics`)
emits.
"""

import math
import threading
from bisect import bisect_left

#: Default histogram buckets for durations in seconds (5 us .. 30 s).
DURATION_BUCKETS = (
    0.000005, 0.00002, 0.0001, 0.0005, 0.002, 0.01, 0.05,
    0.2, 1.0, 5.0, 30.0,
)

#: Default buckets for queue/heap depths and other small counts.
DEPTH_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096)


class Counter:
    """Monotonically increasing value (events, seconds spent)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, busy workers)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def dec(self, amount=1):
        self.value -= amount


class Histogram:
    """Fixed-bucket distribution; tracks per-bucket counts, sum and count.

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot
    counts the overflow (the Prometheus ``+Inf`` bucket).  Counts are
    stored *per bucket*, not cumulatively — the exposition accumulates.
    """

    __slots__ = ("buckets", "counts", "total", "sum")

    def __init__(self, buckets):
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value):
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += 1
        self.sum += value


#: Instrument type name -> class (the registry's vocabulary).
_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(labels):
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Family:
    """All series of one instrument name: type, help text, label children."""

    __slots__ = ("name", "kind", "help", "buckets", "series")

    def __init__(self, name, kind, help_text, buckets=None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.series = {}  # label-key tuple -> instrument


class MetricsRegistry:
    """Named, optionally labelled instruments; see the module doc."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families = {}

    # ----------------------------------------------------------- instruments

    def _instrument(self, kind, name, labels, help_text, buckets=None):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets=buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"instrument {name!r} already registered as "
                    f"{family.kind}, not {kind}"
                )
            instrument = family.series.get(key)
            if instrument is None:
                if kind == "histogram":
                    instrument = Histogram(family.buckets)
                else:
                    instrument = _KINDS[kind]()
                family.series[key] = instrument
            return instrument

    def counter(self, name, labels=None, help=""):
        """The :class:`Counter` for ``(name, labels)``, created on demand."""
        return self._instrument("counter", name, labels, help)

    def gauge(self, name, labels=None, help=""):
        """The :class:`Gauge` for ``(name, labels)``, created on demand."""
        return self._instrument("gauge", name, labels, help)

    def histogram(self, name, buckets=DURATION_BUCKETS, labels=None, help=""):
        """The :class:`Histogram` for ``(name, labels)``.

        *buckets* is fixed by the first call for the whole family; later
        calls reuse the family's bounds.
        """
        return self._instrument("histogram", name, labels, help,
                                buckets=tuple(buckets))

    def reset(self):
        """Drop every family (tests and ``Telemetry.reset``)."""
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------- snapshots

    def as_dict(self):
        """Deterministic JSON-able snapshot of every family and series."""
        families = []
        with self._lock:
            items = sorted(self._families.items())
        for name, family in items:
            series = []
            for key in sorted(family.series):
                instrument = family.series[key]
                entry = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry.update({
                        "counts": list(instrument.counts),
                        "count": instrument.total,
                        "sum": instrument.sum,
                    })
                else:
                    entry["value"] = instrument.value
                series.append(entry)
            families.append({
                "name": name,
                "type": family.kind,
                "help": family.help,
                **({"buckets": list(family.buckets)}
                   if family.kind == "histogram" else {}),
                "series": series,
            })
        return {"families": families}

    def to_prometheus(self):
        """Render the registry in Prometheus text exposition format."""
        lines = []
        snapshot = self.as_dict()
        for family in snapshot["families"]:
            name = family["name"]
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['type']}")
            for entry in family["series"]:
                labels = entry["labels"]
                if family["type"] == "histogram":
                    cumulative = 0
                    bounds = [_format_value(b) for b in family["buckets"]]
                    for bound, count in zip(bounds + ["+Inf"],
                                            entry["counts"]):
                        cumulative += count
                        lines.append(prometheus_line(
                            f"{name}_bucket", dict(labels, le=bound),
                            cumulative))
                    lines.append(prometheus_line(f"{name}_sum", labels,
                                                 entry["sum"]))
                    lines.append(prometheus_line(f"{name}_count", labels,
                                                 entry["count"]))
                else:
                    lines.append(prometheus_line(name, labels,
                                                 entry["value"]))
        return "\n".join(lines) + ("\n" if lines else "")


# ------------------------------------------------------- exposition helpers

def _format_value(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _escape_label(value):
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def prometheus_line(name, labels, value):
    """One exposition sample line; shared with the server's hand counters."""
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(val)}"'
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


_NAME_START = set("abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_BODY = _NAME_START | set("0123456789")


def _valid_name(name):
    return (bool(name) and name[0] in _NAME_START
            and all(ch in _NAME_BODY for ch in name))


def parse_prometheus(text):
    """Validate a text exposition line by line; returns the parsed samples.

    Returns ``[(metric_name, labels_dict, float_value), ...]``.  Raises
    ``ValueError`` naming the first offending line — this is the schema
    check the CI ``obs-smoke`` job runs over the server's ``/metrics``
    exposition and any exported artefact.
    """
    samples = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 2)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(
                    f"line {number}: malformed comment {raw!r} "
                    "(expected '# HELP <name> ...' or '# TYPE <name> ...')"
                )
            if parts[1] == "TYPE":
                kind = parts[2].split()
                if len(kind) != 2 or kind[1] not in (*_KINDS, "untyped"):
                    raise ValueError(
                        f"line {number}: bad TYPE declaration {raw!r}"
                    )
            continue
        name, labels, rest = _parse_sample_name(line, number)
        try:
            value = float(rest.strip().split()[0])
        except (ValueError, IndexError):
            raise ValueError(
                f"line {number}: sample {raw!r} has no numeric value"
            ) from None
        samples.append((name, labels, value))
    return samples


def _parse_sample_name(line, number):
    """Split one sample line into (name, labels, remainder-with-value)."""
    brace = line.find("{")
    if brace < 0:
        name, _, rest = line.partition(" ")
        if not _valid_name(name):
            raise ValueError(f"line {number}: invalid metric name {name!r}")
        return name, {}, rest
    name = line[:brace]
    if not _valid_name(name):
        raise ValueError(f"line {number}: invalid metric name {name!r}")
    closing = _closing_brace(line, brace)
    if closing < 0:
        raise ValueError(f"line {number}: unterminated label set in {line!r}")
    labels = {}
    body = line[brace + 1:closing]
    if body:
        for pair in _split_label_pairs(body, number):
            key, _, quoted = pair.partition("=")
            if (not _valid_name(key) or len(quoted) < 2
                    or quoted[0] != '"' or quoted[-1] != '"'):
                raise ValueError(
                    f"line {number}: malformed label pair {pair!r}"
                )
            labels[key] = (quoted[1:-1].replace('\\"', '"')
                          .replace("\\n", "\n").replace("\\\\", "\\"))
    return name, labels, line[closing + 1:]


def _closing_brace(line, brace):
    """Index of the ``}`` closing the label set, honouring quoted values.

    A label value may itself contain braces (a route template like
    ``/jobs/{id}``), so the closing brace is the first unquoted one, not
    the first one ``str.find`` sees.
    """
    in_quotes = escaped = False
    for index in range(brace + 1, len(line)):
        ch = line[index]
        if escaped:
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == '"':
            in_quotes = not in_quotes
        elif ch == "}" and not in_quotes:
            return index
    return -1


def _split_label_pairs(body, number):
    """Split ``a="x",b="y"`` at unquoted commas (values may contain commas)."""
    pairs, current, in_quotes, escaped = [], [], False, False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(ch)
    if in_quotes:
        raise ValueError(f"line {number}: unterminated label value in {body!r}")
    if current:
        pairs.append("".join(current))
    return pairs
