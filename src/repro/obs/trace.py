"""Span-based wall-clock tracing with Chrome trace-event export.

A *span* is one timed region of real (wall-clock) time — a co-simulation
run, one sweep job, one HTTP request — with a name, a category, the thread
it ran on and optional key/value arguments.  Spans nest naturally (the
context manager records whatever encloses whatever), and the exported
Chrome trace-event JSON renders that nesting on a per-thread timeline in
``chrome://tracing`` / Perfetto.

The tracer is deliberately small and safe to leave attached:

* **Bounded.**  Finished spans land in a ring buffer (``deque`` with
  ``maxlen``); a runaway workload evicts its oldest spans and counts them
  in ``dropped`` instead of growing without limit.
* **Thread-safe.**  Span contexts carry their own start time; the only
  shared mutation is the final append, which is atomic on a ``deque``.
  Concurrent spans on different threads interleave freely.
* **Wall-clock only.**  Span times come from ``time.perf_counter`` (a
  monotonic clock), never from simulated time — the tracer measures where
  *real* time goes, which simulated-time latencies
  (:mod:`repro.cosim.tracing`) cannot see.

Simulated results must never depend on the tracer: nothing here feeds
back into any simulation structure, and the conformance sweep is run with
telemetry enabled to pin exactly that.
"""

import threading
import time
from collections import deque

#: Default ring-buffer capacity (finished spans retained).
DEFAULT_SPAN_LIMIT = 65536


class SpanContext:
    """One live span: created by :meth:`SpanTracer.span`, used as ``with``."""

    __slots__ = ("tracer", "name", "cat", "args", "start")

    def __init__(self, tracer, name, cat, args):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.start = None

    def __enter__(self):
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        end = time.perf_counter()
        self.tracer._finish(self, end, failed=exc_type is not None)
        return False


class SpanTracer:
    """Collects finished spans in a bounded ring buffer."""

    def __init__(self, limit=DEFAULT_SPAN_LIMIT):
        if limit is not None and limit < 1:
            raise ValueError(f"span limit must be >= 1 or None, got {limit}")
        self._spans = deque(maxlen=limit)
        self._lock = threading.Lock()
        #: perf_counter origin; span timestamps are microseconds past this.
        self.epoch = time.perf_counter()
        self.started = 0
        self.finished = 0

    @property
    def limit(self):
        return self._spans.maxlen

    @property
    def dropped(self):
        """Finished spans evicted by the ring buffer."""
        return self.finished - len(self._spans)

    def span(self, name, cat="repro", **args):
        """A context manager timing one region; records on exit."""
        self.started += 1
        return SpanContext(self, name, cat, args or None)

    def record(self, name, start, end, cat="repro", tid=None, **args):
        """Record a span post-hoc from explicit ``perf_counter`` stamps.

        Pooled sweep jobs run in forked worker processes whose telemetry
        dies with them; the workers ship raw ``(start, end)`` stamps back
        and the parent records the span here.  On Linux ``perf_counter``
        is ``CLOCK_MONOTONIC``, which is system-wide, so child stamps are
        directly comparable with this tracer's epoch.
        """
        entry = {
            "name": name,
            "cat": cat,
            "ts_us": (start - self.epoch) * 1e6,
            "dur_us": (end - start) * 1e6,
            "tid": threading.get_ident() if tid is None else tid,
            "args": args or {},
        }
        with self._lock:
            self._spans.append(entry)
            self.started += 1
            self.finished += 1

    def _finish(self, context, end, failed=False):
        args = dict(context.args) if context.args else {}
        if failed:
            args["failed"] = True
        entry = {
            "name": context.name,
            "cat": context.cat,
            "ts_us": (context.start - self.epoch) * 1e6,
            "dur_us": (end - context.start) * 1e6,
            "tid": threading.get_ident(),
            "args": args,
        }
        # deque.append is atomic, but finished must stay consistent with
        # the buffer for an accurate dropped count.
        with self._lock:
            self._spans.append(entry)
            self.finished += 1

    # -------------------------------------------------------------- queries

    def spans(self, name=None, cat=None):
        """Finished spans, oldest first, optionally filtered."""
        with self._lock:
            snapshot = list(self._spans)
        return [
            span for span in snapshot
            if (name is None or span["name"] == name)
            and (cat is None or span["cat"] == cat)
        ]

    def reset(self):
        with self._lock:
            self._spans.clear()
            self.epoch = time.perf_counter()
            self.started = 0
            self.finished = 0

    def __len__(self):
        return len(self._spans)

    # -------------------------------------------------------------- exports

    def as_dict(self):
        """JSON-able snapshot: spans plus ring-buffer accounting."""
        return {
            "limit": self.limit,
            "started": self.started,
            "finished": self.finished,
            "dropped": self.dropped,
            "spans": self.spans(),
        }

    def to_chrome(self, pid=0, process_name="repro"):
        """The trace as a Chrome trace-event JSON object (``ph: "X"``)."""
        return chrome_trace(self.as_dict(), pid=pid,
                            process_name=process_name)


def chrome_trace(trace_state, pid=0, process_name="repro"):
    """Convert a :meth:`SpanTracer.as_dict` snapshot to trace-event JSON.

    Emits complete (``ph: "X"``) events plus a process-name metadata
    event; the result loads directly in ``chrome://tracing`` and
    Perfetto.  Shared by the live tracer and the artefact CLI.
    """
    events = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": process_name},
    }]
    for span in trace_state["spans"]:
        events.append({
            "name": span["name"],
            "cat": span["cat"],
            "ph": "X",
            "ts": round(span["ts_us"], 3),
            "dur": round(span["dur_us"], 3),
            "pid": pid,
            "tid": span["tid"],
            "args": span["args"],
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(data):
    """Schema-check a trace-event JSON object; raises ``ValueError``.

    This is the load check the CI ``obs-smoke`` job performs: the object
    shape, the per-event required keys and the phase-specific fields are
    verified the way ``chrome://tracing``'s importer would.
    """
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError("trace must be an object with a 'traceEvents' list")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {index} is missing {key!r}")
        phase = event["ph"]
        if phase == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    raise ValueError(
                        f"event {index}: complete event needs numeric "
                        f"{key!r}"
                    )
            if event["dur"] < 0:
                raise ValueError(f"event {index}: negative duration")
        elif phase == "M":
            if not isinstance(event.get("args"), dict):
                raise ValueError(
                    f"event {index}: metadata event needs an 'args' object"
                )
        else:
            raise ValueError(
                f"event {index}: unsupported phase {phase!r} "
                "(this exporter emits only 'X' and 'M')"
            )
    return len(events)
