"""The delta-cycle simulation kernel.

The kernel follows the VHDL simulation cycle:

1. **Signal update phase** — all transactions scheduled for the current
   ``(time, delta)`` are applied; signals whose value changes get an event.
2. **Process execution phase** — processes sensitive to (or waiting on) the
   signals with events, plus processes whose timed waits expire, are run.
   Zero-delay assignments they perform become transactions for the next
   delta cycle of the same physical time.

The cycle repeats until no delta activity remains, then time advances to the
next scheduled transaction or process timeout.

Scheduling data structures
--------------------------

Per-delta work is proportional to *activity* (signals that changed, waits
that matured), never to *population* (total processes registered).  Four
structures make that true:

* ``_future`` — min-heap of ``(time, seq, signal, value)`` transactions.
* ``_timeout_heap`` — min-heap of ``(resume_at, seq, wait)`` for every
  suspended generator with a deadline (``wait for``, ``wait on ... for``).
  Entries are *lazily invalidated*: a wait cancelled by a signal wakeup
  stays in the heap, flagged ``done``, and is discarded when it surfaces.
* ``_waiters`` — per-signal lists of suspended waits (``wait on``), so a
  signal event wakes exactly its own waiters instead of scanning every
  suspended process.  Entries are lazily invalidated the same way.
* ``_next_time_cache`` — memoised result of :meth:`_next_activity_time`,
  recomputed only after a mutation of the heaps (``_next_time_dirty``).

The invariant tying them together: a suspended process has exactly one
live (``done == False``) wait; waking it — by signal or by deadline,
whichever fires first — sets ``done``, which implicitly cancels every other
index entry that still references it.  Waiter lists additionally count
their stale entries and compact once half the list is dead, so repeated
bounded waits on a quiet signal cannot accumulate unbounded garbage.  See
``docs/kernel.md`` for the full decision rules.
"""

import heapq
import itertools
import time

from repro.desim.events import Delta, SignalChange, Timeout
from repro.desim.process import Process
from repro.desim.signal import ForceValue, ReleaseValue, Signal
from repro.desim.simtime import check_delay, format_time
from repro.obs import DEPTH_BUCKETS, TELEMETRY
from repro.utils.errors import SimulationError


class _KernelObs:
    """Instruments cached for one telemetry-enabled :meth:`Simulator.run`.

    Bound once per ``run()`` call (:meth:`Simulator._obs_bind`), so the
    instrumented delta loop increments plain attributes instead of doing
    registry lookups per delta cycle.  ``profile`` accumulates per-process
    ``[runs, seconds]`` locally and is flushed into labelled counters when
    the run returns — both kernels report under the same counter names,
    distinguished only by the ``kernel`` label.
    """

    __slots__ = ("registry", "labels", "update_s", "wake_s", "run_s",
                 "delta_depth", "timeout_depth", "totals", "profile")

    #: statistics key -> exported counter name (identical across kernels).
    STAT_COUNTERS = {
        "delta_cycles": "repro_kernel_delta_cycles_total",
        "process_runs": "repro_kernel_process_runs_total",
        "transactions": "repro_kernel_transactions_total",
        "time_points": "repro_kernel_time_points_total",
        "timeouts": "repro_kernel_timeouts_total",
    }

    def __init__(self, registry, kernel_name):
        self.registry = registry
        self.labels = {"kernel": kernel_name}
        phase_help = "Wall-clock seconds spent per kernel phase"
        self.update_s = registry.counter(
            "repro_kernel_phase_seconds_total",
            labels={**self.labels, "phase": "update"}, help=phase_help)
        self.wake_s = registry.counter(
            "repro_kernel_phase_seconds_total",
            labels={**self.labels, "phase": "wake"}, help=phase_help)
        self.run_s = registry.counter(
            "repro_kernel_phase_seconds_total",
            labels={**self.labels, "phase": "run"}, help=phase_help)
        self.delta_depth = registry.histogram(
            "repro_kernel_delta_queue_depth", buckets=DEPTH_BUCKETS,
            labels=self.labels,
            help="Pending zero-delay transactions per delta cycle")
        self.timeout_depth = registry.histogram(
            "repro_kernel_timeout_heap_depth", buckets=DEPTH_BUCKETS,
            labels=self.labels,
            help="Suspended deadline waits per delta cycle")
        self.totals = {
            key: registry.counter(name, labels=self.labels,
                                  help=f"Kernel statistics: {key}")
            for key, name in self.STAT_COUNTERS.items()
        }
        self.profile = {}  # process name -> [runs, seconds]

    def flush(self, statistics, stats_before):
        """Export the run's statistics deltas and per-process profile."""
        for key, counter in self.totals.items():
            counter.inc(statistics[key] - stats_before[key])
        for name, (runs, seconds) in self.profile.items():
            self.registry.counter(
                "repro_kernel_process_seconds_total",
                labels={**self.labels, "process": name},
                help="Wall-clock seconds spent running each process",
            ).inc(seconds)
            self.registry.counter(
                "repro_kernel_process_profile_runs_total",
                labels={**self.labels, "process": name},
                help="Process runs observed by the wall-clock profiler",
            ).inc(runs)
        self.profile.clear()


class _GenWait:
    """Book-keeping for one suspended generator process.

    A wait may be registered in several indexes at once: the per-signal
    waiter lists (one per signal in *signals*) and the timeout heap (when
    *resume_at* is set).  Whichever index wakes the process first marks the
    wait ``done``; stale references left in the other indexes are skipped
    and dropped when next encountered (*lazy invalidation*), so cancelling
    a wait never requires searching a heap or a list.

    *seq* records the suspension order: it breaks deadline ties on the
    timeout heap and lets :meth:`Simulator.snapshot` serialise the waiter
    index in an order :meth:`Simulator.restore` can rebuild exactly.
    """

    __slots__ = ("process", "signals", "resume_at", "done", "seq")

    def __init__(self, process, signals=(), resume_at=None, seq=0):
        self.process = process
        self.signals = tuple(signals)
        self.resume_at = resume_at
        self.done = False
        self.seq = seq


class Simulator:
    """Discrete-event simulator holding signals and processes.

    Typical use::

        sim = Simulator()
        clk = sim.add_clock("clk", period=100)
        data = sim.add_signal("data", init=0)
        sim.add_process("producer", produce, sensitivity=[clk])
        sim.run(until=10_000)

    The public surface is ``add_signal`` / ``add_process`` / ``add_clock`` /
    ``schedule`` / ``run`` plus the testbench helpers (``peek``, ``poke``,
    ``signal``).  Scheduling cost per delta cycle is proportional to the
    number of signals that changed and waits that matured, independent of
    how many processes are registered or suspended.
    """

    kernel_name = "production"

    #: True when every matured deadline is discoverable from
    #: ``_timeout_heap[0]`` — the precondition for the delta loop's
    #: skip-``_expired_waits`` guard.  A subclass keeping deadlines in a
    #: different structure (the reference kernel's flat wait list) must
    #: set this False so the loop calls ``_expired_waits`` every delta.
    deadlines_in_heap = True

    def __init__(self, max_deltas=10_000, detect_races=False):
        self.max_deltas = max_deltas
        #: when true, zero-delay writes are attributed to the running
        #: process and same-delta multi-writer signals are logged in
        #: :attr:`race_log` — the dynamic cross-check of the static
        #: ``repro.lint`` RACE001 analysis.
        self.detect_races = bool(detect_races)
        #: race events observed so far: dicts with ``time``, ``delta``,
        #: ``signal`` and the sorted distinct ``writers``.  Observation
        #: state, not simulation state: excluded from ``statistics`` and
        #: from :meth:`snapshot`, and recording never perturbs scheduling.
        self.race_log = []
        self._current_writer = None
        # Zero-delay writes of the pending delta: [(signal, writer name)].
        self._delta_writes = []
        self.now = 0
        self.delta = 0
        self.signals = {}
        self.processes = {}
        self.recorders = []
        self.monitors = []
        self._seq = itertools.count()
        # Future transactions: heap of (time, seq, signal, value).
        self._future = []
        # Transactions for the next delta of the current time: [(signal, value)].
        self._delta_queue = []
        # Signal name -> {process name: Process} (dict, not set: iteration
        # must follow registration order, so same-delta run order is
        # identical in every interpreter process regardless of
        # PYTHONHASHSEED — seeded co-simulations depend on it).  The values
        # hold the Process objects so waking a fully-active population costs
        # one dict-values iteration, not a name lookup per process per delta.
        self._sensitivity = {}
        # Deadline index: heap of (resume_at, seq, _GenWait), lazily pruned.
        self._timeout_heap = []
        # Waiter index: id(signal) -> [_GenWait], lazily pruned.
        self._waiters = {}
        # id(signal) -> count of done entries still in its waiter list;
        # drives compaction once half a list is dead.
        self._waiter_stale = {}
        # Memoised _next_activity_time; recomputed when a heap mutates.
        self._next_time_cache = None
        self._next_time_dirty = True
        self._started = False
        self._in_run = False
        # Telemetry binding for the current run (None = disabled fast path).
        self._obs = None
        # The counter set is part of the kernel's observable contract: both
        # kernels expose the same keys with the same meanings ("timeouts"
        # counts matured deadline wakes), so differential runs can compare
        # activity profiles, not just results.
        self.statistics = {
            "delta_cycles": 0,
            "process_runs": 0,
            "transactions": 0,
            "time_points": 0,
            "timeouts": 0,
        }

    # ------------------------------------------------------------------ setup

    def add_signal(self, name, init=0, dtype=None):
        """Create and register a :class:`Signal`; returns it."""
        if name in self.signals:
            raise SimulationError(f"duplicate signal name {name!r}")
        signal = Signal(name, init=init, dtype=dtype)
        self.signals[name] = signal
        self._announce_signal(signal)
        return signal

    def register_signal(self, signal):
        """Register an externally created signal (e.g. a ResolvedSignal)."""
        if signal.name in self.signals:
            raise SimulationError(f"duplicate signal name {signal.name!r}")
        self.signals[signal.name] = signal
        self._announce_signal(signal)
        return signal

    def _announce_signal(self, signal):
        """Tell started recorders about a late-registered signal.

        Recorders pin a signal's initial value at :meth:`start`; a signal
        registered afterwards would otherwise be assumed to start at 0 in
        ``value_at``/``count_pulses``/``edge_times``.
        """
        if not self._started:
            return
        for recorder in self.recorders:
            register = getattr(recorder, "register", None)
            if register is not None:
                register(signal)

    def add_process(self, name, func, sensitivity=(), initial_run=True,
                    first_wait=None, rearmable=False):
        """Register a process; *func* is a callable or generator function.

        *first_wait* parks a generator process on a wait condition at
        simulation start instead of running it (implies
        ``initial_run=False``); *rearmable* declares the generator safe for
        :meth:`restore` re-suspension — see :class:`Process`.
        """
        if name in self.processes:
            raise SimulationError(f"duplicate process name {name!r}")
        process = Process(name, func, sensitivity=sensitivity,
                          initial_run=initial_run, first_wait=first_wait,
                          rearmable=rearmable)
        self.processes[name] = process
        for signal in process.sensitivity:
            self._sensitivity.setdefault(signal.name, {})[process.name] = process
        return process

    def add_clocked_process(self, name, func, clock, edge=1):
        """Register *func* to run after each transition of *clock* to *edge*.

        Sugar over :meth:`add_process` for the dominant co-simulation shape
        (an FSM stepped once per rising clock edge): the process is made
        sensitive to *clock* and the edge filter is applied before *func*
        is entered.  Returns the created :class:`Process`.
        """

        def on_edge():
            if clock.value == edge:
                func()

        return self.add_process(name, on_edge, sensitivity=[clock],
                                initial_run=False)

    def add_fused_process(self, name, func, clock):
        """Register a whole-system fused stepper on *clock*'s sensitivity list.

        Unlike :meth:`add_clocked_process` there is no edge-filtering
        wrapper: *func* is entered on **every** transition of *clock* and
        performs its own edge check.  The fused stepper generated by
        :mod:`repro.ir.syscompile` folds the edge filter, the per-instance
        dispatch and the run-statistics compensation of all the clocked
        processes it replaces into one code object, so a wrapper frame here
        would be pure per-delta overhead on the hottest call in the
        simulator.  Returns the created :class:`Process`; its ``func`` may
        be rebound after registration (the session binds the generated code
        once the whole backplane exists).
        """
        return self.add_process(name, func, sensitivity=[clock],
                                initial_run=False)

    def add_clock(self, name, period, start_value=0, start_delay=0):
        """Create a free-running clock signal toggling every ``period/2`` ns."""
        check_delay(period)
        if period < 2 or period % 2:
            raise SimulationError("clock period must be an even number of ns >= 2")
        clock = self.add_signal(name, init=start_value)
        half = period // 2

        # Act-first loop with no prologue and no loop-carried frame state:
        # the clock's whole state is the signal value, so the process is
        # rearmable and clocks survive snapshot/restore.  A start delay is
        # expressed as the kernel-armed first wait, not as frame state.
        def toggler():
            tick = Timeout(half)
            schedule = self.schedule
            while True:
                schedule(clock, 1 - clock.value, 0)
                yield tick

        first_wait = Timeout(start_delay) if start_delay else None
        self.add_process(f"{name}_gen", toggler, first_wait=first_wait,
                         rearmable=True)
        return clock

    def add_recorder(self, recorder):
        """Attach a waveform recorder (anything with ``record(time, signal)``)."""
        self.recorders.append(recorder)
        return recorder

    def add_monitor(self, monitor):
        """Attach a monitor checked after every delta cycle."""
        self.monitors.append(monitor)
        return monitor

    # --------------------------------------------------------------- schedule

    def schedule(self, signal, value, delay=0):
        """Schedule a transaction on *signal* after *delay* nanoseconds.

        A zero delay means "next delta cycle", exactly like a VHDL signal
        assignment with no after clause.
        """
        check_delay(delay)
        self.statistics["transactions"] += 1
        if delay == 0:
            self._delta_queue.append((signal, value))
            if self.detect_races:
                self._record_write(signal, value)
        else:
            heapq.heappush(
                self._future, (self.now + delay, next(self._seq), signal, value)
            )
            self._next_time_dirty = True

    # ---------------------------------------------------------- race detection

    def _record_write(self, signal, value):
        """Attribute a zero-delay write to the process currently running.

        Force/release controls are fault-injection overlays, not drivers —
        they never count as writers.  Writes scheduled from outside any
        process (a testbench ``poke`` between runs) are attributed to
        ``"<external>"``.
        """
        if isinstance(value, (ForceValue, ReleaseValue)):
            return
        self._delta_writes.append(
            (signal, self._current_writer or "<external>"))

    def _race_scan(self):
        """Log every signal of the pending delta with >= 2 distinct writers.

        Called by the delta loop immediately before the update phase, when
        the queued transactions of one delta cycle are complete.  Delayed
        transactions matured by ``_begin_time_point`` are deliberately not
        tracked: the race model (like the static RACE001 analysis) covers
        same-delta driver conflicts, where last-write-wins resolution hides
        a nondeterministic outcome.
        """
        writes, self._delta_writes = self._delta_writes, []
        per_signal = {}
        for signal, writer in writes:
            per_signal.setdefault(signal.name, []).append(writer)
        for name, writers in per_signal.items():
            distinct = sorted(set(writers))
            if len(distinct) >= 2:
                self.race_log.append({
                    "time": self.now,
                    "delta": self.delta,
                    "signal": name,
                    "writers": distinct,
                })

    def race_signals(self):
        """Distinct signal names with at least one observed write race."""
        return {event["signal"] for event in self.race_log}

    # -------------------------------------------------------------------- run

    def _start(self):
        self._started = True
        for recorder in self.recorders:
            recorder.start(self)
        runnable = []
        for process in self.processes.values():
            process.start()
            if process.first_wait is not None:
                self._suspend(process, process.first_wait)
            elif process.initial_run:
                runnable.append(process)
        self._run_processes(runnable)
        self._drain_deltas()

    def run(self, until=None, max_time=None):
        """Run the simulation.

        *until* (alias *max_time*) is an absolute stop time in nanoseconds;
        when omitted the simulation runs until no activity remains.  Returns
        the simulation time reached.
        """
        if until is None:
            until = max_time
        obs = self._obs_bind()
        stats_before = dict(self.statistics) if obs is not None else None
        if not self._started:
            self._start()
        self._in_run = True
        try:
            while True:
                next_time = self._next_activity_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                self.now = next_time
                self.statistics["time_points"] += 1
                self._begin_time_point()
                self._drain_deltas()
                if until is not None and self.now >= until:
                    break
        finally:
            self._in_run = False
            if obs is not None:
                obs.flush(self.statistics, stats_before)
        return self.now

    def run_for(self, duration):
        """Run for *duration* additional nanoseconds."""
        return self.run(until=self.now + check_delay(duration))

    # ---------------------------------------------------------------- phases

    def _next_activity_time(self):
        """Earliest time with pending work, or ``None`` when fully idle.

        Pending zero-delay transactions and past-due waits (a deadline at
        or before ``now``, reachable when activity is injected between two
        :meth:`run` calls) report ``self.now``: they are due immediately
        and must not be mistaken for "no activity", which would stall
        :meth:`run`.  The result is memoised until a heap mutates.
        """
        if self._delta_queue:
            return self.now
        if self._next_time_dirty:
            future = self._future[0][0] if self._future else None
            deadline = self._peek_deadline()
            if future is None:
                earliest = deadline
            elif deadline is None or future < deadline:
                earliest = future
            else:
                earliest = deadline
            self._next_time_cache = earliest
            self._next_time_dirty = False
        earliest = self._next_time_cache
        if earliest is None:
            return None
        return self.now if earliest <= self.now else earliest

    def _peek_deadline(self):
        """Earliest live deadline, discarding cancelled waits from the heap top."""
        heap = self._timeout_heap
        while heap:
            resume_at, _, wait = heap[0]
            if wait.done:
                heapq.heappop(heap)
                continue
            return resume_at
        return None

    def _begin_time_point(self):
        """Move matured future transactions into the delta queue."""
        moved = False
        while self._future and self._future[0][0] <= self.now:
            _, _, signal, value = heapq.heappop(self._future)
            self._delta_queue.append((signal, value))
            moved = True
        if moved:
            self._next_time_dirty = True

    def _expired_waits(self):
        """Pop and wake every wait whose deadline has matured.

        Cancelled (``done``) entries surfacing at the heap top are
        discarded — this is where lazy invalidation pays its debt, once
        per cancelled wait over the whole simulation.
        """
        expired = []
        heap = self._timeout_heap
        while heap:
            resume_at, _, wait = heap[0]
            if wait.done:
                heapq.heappop(heap)
                continue
            if resume_at > self.now:
                break
            heapq.heappop(heap)
            self._wake(wait)
            expired.append(wait.process)
        if expired:
            self.statistics["timeouts"] += len(expired)
            self._next_time_dirty = True
        return expired

    def _wake(self, wait):
        """Consume *wait*: it no longer wakes its process through any index.

        Stale timeout-heap entries are discarded when they surface at the
        top; waiter lists have no such guaranteed drain (the watched signal
        may never change again), so each list tracks its dead-entry count
        and is compacted in place once at least half of it is stale —
        amortised O(1) per wake, and bounded garbage per signal.
        """
        wait.done = True
        for signal in wait.signals:
            key = id(signal)
            waiters = self._waiters.get(key)
            if waiters is None:
                continue
            stale = self._waiter_stale.get(key, 0) + 1
            if 2 * stale >= len(waiters):
                live = [entry for entry in waiters if not entry.done]
                if live:
                    self._waiters[key] = live
                else:
                    del self._waiters[key]
                self._waiter_stale.pop(key, None)
            else:
                self._waiter_stale[key] = stale

    # ------------------------------------------------------------- telemetry

    def _obs_bind(self):
        """(Re)bind cached telemetry instruments for the next run.

        The disabled fast path is this one attribute check: with telemetry
        off, ``self._obs`` stays ``None`` and every instrumented loop
        dispatches straight to its uninstrumented twin.
        """
        if not TELEMETRY.enabled:
            self._obs = None
        elif self._obs is None:
            self._obs = _KernelObs(TELEMETRY.metrics, self.kernel_name)
        return self._obs

    def _obs_timeout_depth(self):
        """Current deadline-index population (for the depth histogram)."""
        return len(self._timeout_heap)

    def _drain_deltas(self):
        if self._obs is not None:
            return self._drain_deltas_obs(self._obs)
        # Guarded phase dispatch: each phase call below is skipped when its
        # input is visibly empty (no queued transactions, no changed
        # signals, no matured deadline at the heap top).  The skipped calls
        # are no-ops by construction — ``_update_phase`` on an empty queue
        # returns ``[]``, ``_collect_runnable`` of no changes collects
        # nothing, ``_expired_waits`` past the guard wakes nothing — so
        # observables and statistics are bit-identical; only the terminating
        # empty delta of every time point (and the apply-only delta of every
        # clock edge) gets cheaper.  A ``done`` wait surfacing at the heap
        # top with a future deadline is left for a later guard pass to
        # discard — the same lazy-invalidation contract ``_peek_deadline``
        # already implements.  The deadline guard only holds when matured
        # deadlines surface at ``_timeout_heap[0]`` (``deadlines_in_heap``);
        # the reference kernel keeps them in a flat list and opts out.
        self.delta = 0
        statistics = self.statistics
        now = self.now
        guard_deadlines = self.deadlines_in_heap
        while True:
            if self._delta_writes:
                self._race_scan()
            changed = self._update_phase() if self._delta_queue else ()
            runnable = self._collect_runnable(changed) if changed else []
            if guard_deadlines:
                heap = self._timeout_heap
                if heap and heap[0][0] <= now:
                    expired = self._expired_waits()
                    if expired:
                        runnable.extend(expired)
            else:
                expired = self._expired_waits()
                if expired:
                    runnable.extend(expired)
            if not changed and not runnable and not self._delta_queue:
                break
            self._run_processes(runnable)
            for signal in changed:
                signal.clear_event()
            if self.monitors:
                self._check_monitors()
            self.delta += 1
            statistics["delta_cycles"] += 1
            if self.delta > self.max_deltas:
                raise SimulationError(
                    f"delta-cycle limit exceeded at {format_time(self.now)}; "
                    "combinational loop or zero-delay oscillation"
                )

    def _drain_deltas_obs(self, obs):
        """The delta loop with wall-clock phase timing and depth sampling.

        A timed twin of :meth:`_drain_deltas` — same phase calls in the
        same order, with ``perf_counter`` brackets around the update phase,
        the wake scan (runnable collection + deadline expiry) and the
        process-execution phase, plus one depth observation per delta.
        Keeping the uninstrumented loop untouched is the point: telemetry
        off costs one ``is not None`` check per drain.  The conformance
        sweep runs with telemetry enabled to pin that both loops produce
        identical simulations.
        """
        self.delta = 0
        statistics = self.statistics
        perf = time.perf_counter
        while True:
            obs.delta_depth.observe(len(self._delta_queue))
            obs.timeout_depth.observe(self._obs_timeout_depth())
            if self._delta_writes:
                self._race_scan()
            begin = perf()
            changed = self._update_phase()
            updated = perf()
            runnable = self._collect_runnable(changed)
            expired = self._expired_waits()
            if expired:
                runnable.extend(expired)
            woken = perf()
            obs.update_s.inc(updated - begin)
            obs.wake_s.inc(woken - updated)
            if not changed and not runnable and not self._delta_queue:
                break
            ran_at = perf()
            self._run_processes_obs(runnable, obs.profile)
            obs.run_s.inc(perf() - ran_at)
            for signal in changed:
                signal.clear_event()
            if self.monitors:
                self._check_monitors()
            self.delta += 1
            statistics["delta_cycles"] += 1
            if self.delta > self.max_deltas:
                raise SimulationError(
                    f"delta-cycle limit exceeded at {format_time(self.now)}; "
                    "combinational loop or zero-delay oscillation"
                )

    def _update_phase(self):
        """Apply queued transactions; returns the signals whose value changed.

        Staging is batched: each signal's ``_staged`` flag marks it as
        already collected this delta, replacing the ``id()``-set dedup pass
        (last write still wins, because later stages overwrite the pending
        value while the signal is appended only once).
        """
        queue, self._delta_queue = self._delta_queue, []
        if len(queue) == 1:
            # Single-transaction delta (every clock-toggle delta): no
            # dedup pass needed, and the _staged flag never moves.
            signal, value = queue[0]
            signal.stage(value)
            if signal.apply_pending(self.now):
                if self.recorders and signal.name in self.signals:
                    for recorder in self.recorders:
                        recorder.record(self.now, signal)
                return [signal]
            return []
        staged = []
        for signal, value in queue:
            if not signal._staged:
                signal._staged = True
                staged.append(signal)
            signal.stage(value)
        changed = []
        now = self.now
        recorders = self.recorders
        signals = self.signals
        for signal in staged:
            signal._staged = False
            if signal.apply_pending(now):
                changed.append(signal)
                if recorders and signal.name in signals:
                    for recorder in recorders:
                        recorder.record(now, signal)
        return changed

    def _collect_runnable(self, changed):
        """Processes triggered by the *changed* signals of this delta.

        Sensitivity-list processes come from the per-signal ``_sensitivity``
        index; suspended generators come from the per-signal ``_waiters``
        lists, which are popped wholesale (their live entries wake, their
        stale entries drop).  Nothing here iterates over the full process
        population, and the dominant single-changed-signal delta (a clock
        edge) collects its runnables with one dict-values copy — no dedup
        set, no per-process lookups.
        """
        sensitivity = self._sensitivity
        waiters_index = self._waiters
        if len(changed) == 1:
            signal = changed[0]
            procs = sensitivity.get(signal.name)
            runnable = list(procs.values()) if procs else []
            waiters = waiters_index.pop(id(signal), None)
            if waiters:
                self._waiter_stale.pop(id(signal), None)
                for wait in waiters:
                    if wait.done:
                        continue
                    self._wake(wait)
                    runnable.append(wait.process)
                self._next_time_dirty = True
            return runnable
        runnable = []
        picked = set()
        for signal in changed:
            procs = sensitivity.get(signal.name)
            if procs:
                for process in procs.values():
                    if process not in picked:
                        picked.add(process)
                        runnable.append(process)
            waiters = waiters_index.pop(id(signal), None)
            if waiters:
                self._waiter_stale.pop(id(signal), None)
                for wait in waiters:
                    if wait.done:
                        continue
                    self._wake(wait)
                    runnable.append(wait.process)
                self._next_time_dirty = True
        return runnable

    def _run_processes(self, runnable):
        """Run every process in *runnable*, re-suspending generators.

        This is the innermost kernel loop (one iteration per process run):
        sensitivity-list processes — always runnable when their signal
        fires, the dominant co-simulation shape — take a direct-call fast
        path with no generator bookkeeping, and the run statistic is
        accumulated locally and added once.
        """
        if not runnable:
            return
        runs = 0
        suspend = self._suspend
        detect = self.detect_races
        for process in runnable:
            if process.finished:
                continue
            runs += 1
            if detect:
                self._current_writer = process.name
            if process.is_generator:
                condition = process.step()
                if not process.finished:
                    suspend(process, condition)
            else:
                process.run_count += 1
                process.func()
        if detect:
            self._current_writer = None
        self.statistics["process_runs"] += runs

    def _run_processes_obs(self, runnable, profile):
        """Timed twin of :meth:`_run_processes`: per-process wall seconds.

        *profile* maps process name to ``[runs, seconds]``; it lives on the
        bound :class:`_KernelObs` and is flushed into labelled counters
        when ``run()`` returns, so the hot-spot accounting costs two dict
        operations per process run while live.
        """
        if not runnable:
            return
        runs = 0
        suspend = self._suspend
        detect = self.detect_races
        perf = time.perf_counter
        for process in runnable:
            if process.finished:
                continue
            runs += 1
            if detect:
                self._current_writer = process.name
            begin = perf()
            if process.is_generator:
                condition = process.step()
                if not process.finished:
                    suspend(process, condition)
            else:
                process.run_count += 1
                process.func()
            entry = profile.get(process.name)
            if entry is None:
                profile[process.name] = entry = [0, 0.0]
            entry[0] += 1
            entry[1] += perf() - begin
        if detect:
            self._current_writer = None
        self.statistics["process_runs"] += runs

    def _suspend(self, process, condition):
        """Park a generator process until *condition* is met.

        The wait is indexed under every signal it watches and, when it has
        a deadline, on the timeout heap; a ``Delta`` wait is a deadline at
        the current time, which the delta loop picks up on its next
        iteration within the same time point.
        """
        if condition is None:
            return
        seq = next(self._seq)
        if isinstance(condition, Timeout):
            return self._park_timed(process, self.now + condition.delay, seq)
        if isinstance(condition, Delta):
            return self._park_timed(process, self.now, seq)
        if isinstance(condition, SignalChange):
            resume_at = None
            if condition.timeout is not None:
                resume_at = self.now + condition.timeout
            wait = _GenWait(process, signals=condition.signals,
                            resume_at=resume_at, seq=seq)
        else:  # pragma: no cover - Process.step already validates
            raise SimulationError(f"unknown wait condition {condition!r}")
        self._register_wait(wait)

    def _park_timed(self, process, resume_at, seq):
        """Park *process* on a deadline-only wait (``Timeout`` / ``Delta``).

        Signal-less waits can only be consumed by ``_expired_waits``, which
        pops them off the heap before marking them done — so a ``done``
        wait cached on the process is guaranteed to be out of every index
        and is recycled instead of allocated.  A clock rearms through here
        every edge; this is the hottest allocation site in the kernel.
        """
        wait = process._timer_wait
        if wait is not None and wait.done:
            wait.done = False
            wait.resume_at = resume_at
            wait.seq = seq
        else:
            wait = _GenWait(process, resume_at=resume_at, seq=seq)
            process._timer_wait = wait
        heapq.heappush(self._timeout_heap, (resume_at, seq, wait))
        self._next_time_dirty = True

    def _register_wait(self, wait):
        """Index a wait under its signals and, with a deadline, on the heap."""
        for signal in wait.signals:
            self._waiters.setdefault(id(signal), []).append(wait)
        if wait.resume_at is not None:
            heapq.heappush(
                self._timeout_heap, (wait.resume_at, wait.seq, wait)
            )
            self._next_time_dirty = True

    def _check_monitors(self):
        for monitor in self.monitors:
            monitor.check(self)

    # ------------------------------------------------------- snapshot/restore

    def snapshot(self):
        """Capture the kernel's complete state as a picklable dict.

        The snapshot covers simulation time, statistics, every signal's
        state, every pending future transaction, the timeout heap, the
        per-signal waiter index and every process's counters — everything
        the kernel owns.  It is taken **between** :meth:`run` calls (never
        from inside a running process); an unstarted simulator is started
        first so time-0 activity is part of the captured state.

        Generator *frames* are not serialisable; a suspended generator is
        captured as its pending wait, which :meth:`restore` re-arms on a
        fresh generator instance.  That round-trip is exact only for
        processes registered ``rearmable=True`` (act-first loops whose
        state lives in signals or captured objects) — restore refuses
        anything else rather than resume it wrongly.
        """
        if self._in_run:
            raise SimulationError(
                "snapshot() must be taken between run() calls, "
                "not from inside a running process"
            )
        if not self._started:
            self._start()
        return {
            "format": 1,
            "kernel": self.kernel_name,
            "now": self.now,
            "delta": self.delta,
            "statistics": dict(self.statistics),
            # Zero-delay transactions injected between run() calls (a
            # testbench poke) are pending work, not yet signal state.
            "delta_queue": [(signal.name, value)
                            for signal, value in self._delta_queue],
            "signal_order": list(self.signals),
            "signals": {name: signal.capture_state()
                        for name, signal in self.signals.items()},
            "process_order": list(self.processes),
            "processes": {
                name: {"finished": process.finished,
                       "run_count": process.run_count}
                for name, process in self.processes.items()
            },
            "pending": self._snapshot_pending(),
        }

    def restore(self, snapshot):
        """Reset this simulator to a :meth:`snapshot`'s state and return it.

        The target must have the **same structure** as the snapshotted
        simulator: identical signal and process registrations in identical
        order (typically a fresh build of the same scenario, or the very
        simulator the snapshot came from).  Every suspended generator wait
        in the snapshot is re-armed on a fresh generator, which requires
        the process to be rearmable; waveform recorders are left alone
        (their history is owned by whoever owns the recorder — see
        ``CosimSession.save``).
        """
        if self._in_run:
            raise SimulationError(
                "restore() must happen between run() calls, "
                "not from inside a running process"
            )
        if snapshot.get("format") != 1:
            raise SimulationError(
                f"unsupported kernel snapshot format {snapshot.get('format')!r}"
            )
        if snapshot["signal_order"] != list(self.signals):
            raise SimulationError(
                "snapshot does not match this simulator: different signal "
                "registrations"
            )
        if snapshot["process_order"] != list(self.processes):
            raise SimulationError(
                "snapshot does not match this simulator: different process "
                "registrations"
            )
        suspended = {entry["process"] for entry in snapshot["pending"]["waits"]}
        for name in suspended:
            process = self.processes[name]
            if not process.restorable:
                raise SimulationError(
                    f"process {name!r} is a non-rearmable generator: its "
                    "suspended frame cannot be rebuilt from a snapshot "
                    "(register act-first loops with rearmable=True)"
                )
        if not self._started:
            # Start recorders so they know their signals and pin initial
            # values; initial process runs are NOT executed — their effects
            # are already part of the snapshotted state.
            self._started = True
            for recorder in self.recorders:
                recorder.start(self)
        self.now = snapshot["now"]
        self.delta = snapshot["delta"]
        self.statistics = dict(snapshot["statistics"])
        for name, state in snapshot["signals"].items():
            self.signals[name].restore_state(state)
        for name, state in snapshot["processes"].items():
            process = self.processes[name]
            process.start()
            process.finished = state["finished"]
            process.run_count = state["run_count"]
        self._delta_queue = [(self.signals[name], value)
                             for name, value in snapshot["delta_queue"]]
        # Race observation state is not part of a snapshot (it never feeds
        # back into scheduling); restored pending writes lose attribution.
        self._delta_writes = []
        self._restore_pending(snapshot["pending"])
        return self

    def _snapshot_pending(self):
        """Scheduling state: future transactions, live waits, seq counter."""
        future = sorted(
            (time, seq, signal.name, value)
            for time, seq, signal, value in self._future
        )
        waits = sorted(self._iter_live_waits(), key=lambda wait: wait.seq)
        # Reserve the counter's current value without disturbing the
        # sequence the simulator itself will hand out next.
        seq_next = next(self._seq)
        self._seq = itertools.count(seq_next)
        return {
            "future": future,
            "waits": [
                {
                    "process": wait.process.name,
                    "signals": [signal.name for signal in wait.signals],
                    "resume_at": wait.resume_at,
                    "seq": wait.seq,
                }
                for wait in waits
            ],
            "seq_next": seq_next,
        }

    def _iter_live_waits(self):
        """Every live (not ``done``) wait, deduplicated across indexes."""
        seen = {}
        for waiters in self._waiters.values():
            for wait in waiters:
                if not wait.done:
                    seen[id(wait)] = wait
        for _, _, wait in self._timeout_heap:
            if not wait.done:
                seen[id(wait)] = wait
        return list(seen.values())

    def _restore_pending(self, pending):
        """Rebuild the scheduling structures from a snapshot's pending state."""
        self._future = [
            (time, seq, self.signals[name], value)
            for time, seq, name, value in pending["future"]
        ]
        heapq.heapify(self._future)
        self._timeout_heap = []
        self._waiters = {}
        self._waiter_stale = {}
        for entry in pending["waits"]:
            wait = _GenWait(
                self.processes[entry["process"]],
                signals=tuple(self.signals[name] for name in entry["signals"]),
                resume_at=entry["resume_at"],
                seq=entry["seq"],
            )
            self._register_wait(wait)
        self._seq = itertools.count(pending["seq_next"])
        self._next_time_cache = None
        self._next_time_dirty = True

    # ---------------------------------------------------------------- helpers

    def signal(self, name):
        """Return a registered signal by name."""
        try:
            return self.signals[name]
        except KeyError:
            raise SimulationError(f"unknown signal {name!r}") from None

    def peek(self, name):
        """Return the current value of the signal called *name*."""
        return self.signal(name).value

    def poke(self, name, value, delay=0):
        """Schedule *value* on the signal called *name* (testbench helper)."""
        self.schedule(self.signal(name), value, delay)

    def force(self, name, value, delay=0):
        """Pin the signal called *name* to *value* (HDL ``force``).

        The force engages at the update phase *delay* ns from now and
        holds until :meth:`release`; driver writes in between are
        suppressed (the last one is remembered).  Used by fault injection
        to model stuck wires without touching the drivers.
        """
        self.schedule(self.signal(name), ForceValue(value), delay)

    def release(self, name, delay=0):
        """Release a forced signal (HDL ``release``).

        The signal resumes the most recent value its drivers attempted
        during the force window (the pre-force value when none did).
        Releasing an unforced signal is a no-op.
        """
        self.schedule(self.signal(name), ReleaseValue(), delay)

    def __repr__(self):
        return (
            f"Simulator(now={format_time(self.now)}, signals={len(self.signals)}, "
            f"processes={len(self.processes)})"
        )
