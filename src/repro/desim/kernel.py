"""The delta-cycle simulation kernel.

The kernel follows the VHDL simulation cycle:

1. **Signal update phase** — all transactions scheduled for the current
   ``(time, delta)`` are applied; signals whose value changes get an event.
2. **Process execution phase** — processes sensitive to (or waiting on) the
   signals with events, plus processes whose timed waits expire, are run.
   Zero-delay assignments they perform become transactions for the next
   delta cycle of the same physical time.

The cycle repeats until no delta activity remains, then time advances to the
next scheduled transaction or process timeout.
"""

import heapq
import itertools

from repro.desim.events import Delta, SignalChange, Timeout
from repro.desim.process import Process
from repro.desim.signal import Signal
from repro.desim.simtime import check_delay, format_time
from repro.utils.errors import SimulationError


class _GenWait:
    """Book-keeping for a suspended generator process."""

    __slots__ = ("process", "signals", "resume_at")

    def __init__(self, process, signals=(), resume_at=None):
        self.process = process
        self.signals = tuple(signals)
        self.resume_at = resume_at


class Simulator:
    """Discrete-event simulator holding signals and processes.

    Typical use::

        sim = Simulator()
        clk = sim.add_clock("clk", period=100)
        data = sim.add_signal("data", init=0)
        sim.add_process("producer", produce, sensitivity=[clk])
        sim.run(until=10_000)
    """

    def __init__(self, max_deltas=10_000):
        self.max_deltas = max_deltas
        self.now = 0
        self.delta = 0
        self.signals = {}
        self.processes = {}
        self.recorders = []
        self.monitors = []
        self._seq = itertools.count()
        # Future transactions: heap of (time, seq, signal, value).
        self._future = []
        # Transactions for the next delta of the current time: [(signal, value)].
        self._delta_queue = []
        self._sensitivity = {}
        self._gen_waits = {}
        self._started = False
        self.statistics = {
            "delta_cycles": 0,
            "process_runs": 0,
            "transactions": 0,
            "time_points": 0,
        }

    # ------------------------------------------------------------------ setup

    def add_signal(self, name, init=0, dtype=None):
        """Create and register a :class:`Signal`; returns it."""
        if name in self.signals:
            raise SimulationError(f"duplicate signal name {name!r}")
        signal = Signal(name, init=init, dtype=dtype)
        self.signals[name] = signal
        return signal

    def register_signal(self, signal):
        """Register an externally created signal (e.g. a ResolvedSignal)."""
        if signal.name in self.signals:
            raise SimulationError(f"duplicate signal name {signal.name!r}")
        self.signals[signal.name] = signal
        return signal

    def add_process(self, name, func, sensitivity=(), initial_run=True):
        """Register a process; *func* is a callable or generator function."""
        if name in self.processes:
            raise SimulationError(f"duplicate process name {name!r}")
        process = Process(name, func, sensitivity=sensitivity, initial_run=initial_run)
        self.processes[name] = process
        for signal in process.sensitivity:
            self._sensitivity.setdefault(signal.name, set()).add(process.name)
        return process

    def add_clock(self, name, period, start_value=0, start_delay=0):
        """Create a free-running clock signal toggling every ``period/2`` ns."""
        check_delay(period)
        if period < 2 or period % 2:
            raise SimulationError("clock period must be an even number of ns >= 2")
        clock = self.add_signal(name, init=start_value)
        half = period // 2

        def toggler():
            if start_delay:
                yield Timeout(start_delay)
            while True:
                self.schedule(clock, 1 - clock.value, 0)
                yield Timeout(half)

        self.add_process(f"{name}_gen", toggler)
        return clock

    def add_recorder(self, recorder):
        """Attach a waveform recorder (anything with ``record(time, signal)``)."""
        self.recorders.append(recorder)
        return recorder

    def add_monitor(self, monitor):
        """Attach a monitor checked after every delta cycle."""
        self.monitors.append(monitor)
        return monitor

    # --------------------------------------------------------------- schedule

    def schedule(self, signal, value, delay=0):
        """Schedule a transaction on *signal* after *delay* nanoseconds.

        A zero delay means "next delta cycle", exactly like a VHDL signal
        assignment with no after clause.
        """
        check_delay(delay)
        self.statistics["transactions"] += 1
        if delay == 0:
            self._delta_queue.append((signal, value))
        else:
            heapq.heappush(
                self._future, (self.now + delay, next(self._seq), signal, value)
            )

    # -------------------------------------------------------------------- run

    def _start(self):
        self._started = True
        for recorder in self.recorders:
            recorder.start(self)
        runnable = []
        for process in self.processes.values():
            process.start()
            if process.initial_run:
                runnable.append(process)
        self._run_processes(runnable)
        self._drain_deltas()

    def run(self, until=None, max_time=None):
        """Run the simulation.

        *until* (alias *max_time*) is an absolute stop time in nanoseconds;
        when omitted the simulation runs until no activity remains.  Returns
        the simulation time reached.
        """
        if until is None:
            until = max_time
        if not self._started:
            self._start()
        while True:
            next_time = self._next_activity_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            self.now = next_time
            self.statistics["time_points"] += 1
            self._begin_time_point()
            self._drain_deltas()
            if until is not None and self.now >= until:
                break
        return self.now

    def run_for(self, duration):
        """Run for *duration* additional nanoseconds."""
        return self.run(until=self.now + check_delay(duration))

    # ---------------------------------------------------------------- phases

    def _next_activity_time(self):
        candidates = []
        if self._future:
            candidates.append(self._future[0][0])
        for wait in self._gen_waits.values():
            if wait.resume_at is not None:
                candidates.append(wait.resume_at)
        if not candidates:
            return None
        earliest = min(candidates)
        if earliest <= self.now:
            # Activity scheduled "now" is handled by the delta loop already;
            # guard against time standing still.
            return self.now if earliest == self.now else None
        return earliest

    def _begin_time_point(self):
        """Move matured future transactions into the delta queue and wake timeouts."""
        while self._future and self._future[0][0] <= self.now:
            _, _, signal, value = heapq.heappop(self._future)
            self._delta_queue.append((signal, value))

    def _expired_waits(self):
        expired = []
        for name, wait in list(self._gen_waits.items()):
            if wait.resume_at is not None and wait.resume_at <= self.now:
                expired.append(self._gen_waits.pop(name).process)
        return expired

    def _drain_deltas(self):
        self.delta = 0
        while True:
            changed = self._update_phase()
            runnable = self._collect_runnable(changed)
            for process in self._expired_waits():
                if process not in runnable:
                    runnable.append(process)
            if not changed and not runnable and not self._delta_queue:
                break
            self._run_processes(runnable)
            for signal in changed:
                signal.clear_event()
            self._check_monitors()
            self.delta += 1
            self.statistics["delta_cycles"] += 1
            if self.delta > self.max_deltas:
                raise SimulationError(
                    f"delta-cycle limit exceeded at {format_time(self.now)}; "
                    "combinational loop or zero-delay oscillation"
                )

    def _update_phase(self):
        staged = []
        queue, self._delta_queue = self._delta_queue, []
        for signal, value in queue:
            signal.stage(value)
            staged.append(signal)
        changed = []
        seen = set()
        for signal in staged:
            if id(signal) in seen:
                continue
            seen.add(id(signal))
            if signal.apply_pending(self.now):
                changed.append(signal)
                if signal.name in self.signals:
                    for recorder in self.recorders:
                        recorder.record(self.now, signal)
        return changed

    def _collect_runnable(self, changed):
        runnable = []
        picked = set()
        for signal in changed:
            for proc_name in self._sensitivity.get(signal.name, ()):  # sensitivity
                if proc_name not in picked:
                    picked.add(proc_name)
                    runnable.append(self.processes[proc_name])
            for name, wait in list(self._gen_waits.items()):
                if name in picked:
                    continue
                if any(sig is signal for sig in wait.signals):
                    picked.add(name)
                    runnable.append(wait.process)
                    del self._gen_waits[name]
        return runnable

    def _run_processes(self, runnable):
        for process in runnable:
            if process.finished:
                continue
            self.statistics["process_runs"] += 1
            condition = process.step()
            if not process.is_generator or process.finished:
                continue
            self._suspend(process, condition)

    def _suspend(self, process, condition):
        if condition is None:
            return
        if isinstance(condition, Timeout):
            self._gen_waits[process.name] = _GenWait(
                process, resume_at=self.now + condition.delay
            )
        elif isinstance(condition, Delta):
            # Resume at the next delta: emulate by scheduling a wait that
            # expires immediately; the delta loop picks it up because the
            # queue check includes waits due "now".
            self._gen_waits[process.name] = _GenWait(process, resume_at=self.now)
            self._delta_queue.append((_NullSignal.instance(), 0))
        elif isinstance(condition, SignalChange):
            resume_at = None
            if condition.timeout is not None:
                resume_at = self.now + condition.timeout
            self._gen_waits[process.name] = _GenWait(
                process, signals=condition.signals, resume_at=resume_at
            )
        else:  # pragma: no cover - Process.step already validates
            raise SimulationError(f"unknown wait condition {condition!r}")

    def _check_monitors(self):
        for monitor in self.monitors:
            monitor.check(self)

    # ---------------------------------------------------------------- helpers

    def signal(self, name):
        """Return a registered signal by name."""
        try:
            return self.signals[name]
        except KeyError:
            raise SimulationError(f"unknown signal {name!r}") from None

    def peek(self, name):
        """Return the current value of the signal called *name*."""
        return self.signal(name).value

    def poke(self, name, value, delay=0):
        """Schedule *value* on the signal called *name* (testbench helper)."""
        self.schedule(self.signal(name), value, delay)

    def __repr__(self):
        return (
            f"Simulator(now={format_time(self.now)}, signals={len(self.signals)}, "
            f"processes={len(self.processes)})"
        )


class _NullSignal(Signal):
    """Internal signal used to force an extra delta cycle for ``Delta`` waits."""

    _instance = None

    def __init__(self):
        super().__init__("nulldelta", init=0)
        self._toggle = 0

    def stage(self, value):
        # Always produce an event so the delta loop runs once more.
        self._toggle = 1 - self._toggle
        super().stage(self._toggle)

    @classmethod
    def instance(cls):
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance
