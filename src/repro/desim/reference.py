"""A deliberately naive reference kernel for differential testing.

:class:`ReferenceSimulator` implements the exact VHDL delta-cycle semantics
of :class:`~repro.desim.kernel.Simulator` behind the same public API, but
with the dumbest data structures that can possibly work:

* future transactions live in an **unsorted list** that is linearly scanned
  for the minimum time (no heap),
* every suspended generator wait sits in **one flat list** in suspension
  order; each delta cycle linearly scans the whole list for matured
  deadlines and, per changed signal, for watching waits (no per-signal
  waiter index, no lazy invalidation, no compaction),
* the next activity time is recomputed from scratch on every query
  (no memoisation).

Per-delta cost is therefore O(population), which is the point: the
production kernel earns its complexity only if it is *observably
indistinguishable* from this one.  The conformance kit
(:mod:`repro.testkit`) runs generated scenarios on both kernels and asserts
identical event ordering, waveforms, final states and statistics.

The observable contract both kernels must satisfy, per delta cycle:

1. apply queued transactions in queue order (last write to a signal wins);
   the changed-signal list is ordered by first staging,
2. wake, in order: for each changed signal — its sensitivity-list processes
   in registration order, then its suspended waiters in suspension order
   (a multi-signal wait wakes at its first triggering signal only); then
   matured deadlines in (deadline, suspension) order,
3. a woken wait is consumed entirely: neither its other signals nor its
   deadline may wake the process again.
"""

from repro.desim.events import Delta, SignalChange, Timeout
from repro.desim.kernel import Simulator
from repro.desim.simtime import check_delay
from repro.utils.errors import SimulationError


class _RefWait:
    """One suspended generator wait: signals watched, optional deadline."""

    __slots__ = ("process", "signals", "resume_at", "seq", "woken")

    def __init__(self, process, signals=(), resume_at=None, seq=0):
        self.process = process
        self.signals = tuple(signals)
        self.resume_at = resume_at
        self.seq = seq
        self.woken = False


class ReferenceSimulator(Simulator):
    """Same observable behaviour as :class:`Simulator`, via linear scans."""

    kernel_name = "reference"

    # Deadlines live in the flat wait list, not a heap: the delta loop's
    # skip-_expired_waits guard would never fire, so opt out of it.
    deadlines_in_heap = False

    def __init__(self, max_deltas=10_000, detect_races=False):
        super().__init__(max_deltas=max_deltas, detect_races=detect_races)
        # Unsorted future transactions: [(time, seq, signal, value)].
        self._ref_future = []
        # Every live suspended wait, in suspension order.
        self._ref_waits = []
        self._ref_seq = 0

    def _next_seq(self):
        self._ref_seq += 1
        return self._ref_seq

    # --------------------------------------------------------------- schedule

    def schedule(self, signal, value, delay=0):
        check_delay(delay)
        self.statistics["transactions"] += 1
        if delay == 0:
            self._delta_queue.append((signal, value))
            if self.detect_races:
                self._record_write(signal, value)
        else:
            self._ref_future.append(
                (self.now + delay, self._next_seq(), signal, value)
            )

    # ---------------------------------------------------------------- phases

    def _next_activity_time(self):
        if self._delta_queue:
            return self.now
        candidates = [entry[0] for entry in self._ref_future]
        candidates.extend(
            wait.resume_at for wait in self._ref_waits
            if not wait.woken and wait.resume_at is not None
        )
        if not candidates:
            return None
        earliest = min(candidates)
        return self.now if earliest <= self.now else earliest

    def _begin_time_point(self):
        matured = [entry for entry in self._ref_future if entry[0] <= self.now]
        if matured:
            self._ref_future = [
                entry for entry in self._ref_future if entry[0] > self.now
            ]
            for _, _, signal, value in sorted(matured):
                self._delta_queue.append((signal, value))

    def _update_phase(self):
        queue, self._delta_queue = self._delta_queue, []
        # Keyed by id: first staging fixes the position; every queued value
        # is staged so the signal's own slots resolve last-write-wins — a
        # force/release control must compound with, not replace, a driven
        # write queued in the same delta.
        staged = {}
        for signal, value in queue:
            staged.setdefault(id(signal), signal)
            signal.stage(value)
        changed = []
        for signal in staged.values():
            if signal.apply_pending(self.now):
                changed.append(signal)
                if signal.name in self.signals:
                    for recorder in self.recorders:
                        recorder.record(self.now, signal)
        return changed

    def _collect_runnable(self, changed):
        runnable = []
        picked = set()
        for signal in changed:
            for process in self.processes.values():
                if process.is_generator or signal not in process.sensitivity:
                    continue
                if process.name not in picked:
                    picked.add(process.name)
                    runnable.append(process)
            for wait in self._ref_waits:
                if not wait.woken and signal in wait.signals:
                    wait.woken = True
                    runnable.append(wait.process)
        if runnable:
            self._compact_waits()
        return runnable

    def _expired_waits(self):
        due = [
            wait for wait in self._ref_waits
            if not wait.woken and wait.resume_at is not None
            and wait.resume_at <= self.now
        ]
        due.sort(key=lambda wait: (wait.resume_at, wait.seq))
        for wait in due:
            wait.woken = True
        if due:
            # Same "timeouts" statistic as the production kernel: matured
            # deadline wakes, so differential runs compare activity
            # profiles counter-for-counter.
            self.statistics["timeouts"] += len(due)
            self._compact_waits()
        return [wait.process for wait in due]

    def _compact_waits(self):
        self._ref_waits = [wait for wait in self._ref_waits if not wait.woken]

    def _obs_timeout_depth(self):
        """Deadline-index population: live waits carrying a deadline.

        The reference kernel has no timeout heap; the comparable quantity
        (exported under the same ``repro_kernel_timeout_heap_depth`` name,
        ``kernel="reference"`` label) is the number of suspended waits a
        deadline could wake.
        """
        return sum(1 for wait in self._ref_waits
                   if not wait.woken and wait.resume_at is not None)

    def _suspend(self, process, condition):
        if condition is None:
            return
        if isinstance(condition, Timeout):
            wait = _RefWait(process, resume_at=self.now + condition.delay,
                            seq=self._next_seq())
        elif isinstance(condition, Delta):
            wait = _RefWait(process, resume_at=self.now, seq=self._next_seq())
        elif isinstance(condition, SignalChange):
            resume_at = None
            if condition.timeout is not None:
                resume_at = self.now + condition.timeout
            wait = _RefWait(process, signals=condition.signals,
                            resume_at=resume_at, seq=self._next_seq())
        else:  # pragma: no cover - Process.step already validates
            raise SimulationError(f"unknown wait condition {condition!r}")
        self._ref_waits.append(wait)

    # ------------------------------------------------------- snapshot/restore

    def _snapshot_pending(self):
        """Naive-structure flavour of the snapshot's scheduling state.

        The flat wait list is already in suspension (seq) order and the
        unsorted future list is order-insensitive (matured entries are
        sorted by ``(time, seq)`` when they drain), so both serialise
        directly.
        """
        return {
            "future": [(time, seq, signal.name, value)
                       for time, seq, signal, value in self._ref_future],
            "waits": [
                {
                    "process": wait.process.name,
                    "signals": [signal.name for signal in wait.signals],
                    "resume_at": wait.resume_at,
                    "seq": wait.seq,
                }
                for wait in self._ref_waits if not wait.woken
            ],
            "seq_next": self._ref_seq + 1,
        }

    def _restore_pending(self, pending):
        self._ref_future = [
            (time, seq, self.signals[name], value)
            for time, seq, name, value in pending["future"]
        ]
        self._ref_waits = [
            _RefWait(
                self.processes[entry["process"]],
                signals=tuple(self.signals[name] for name in entry["signals"]),
                resume_at=entry["resume_at"],
                seq=entry["seq"],
            )
            for entry in pending["waits"]
        ]
        self._ref_seq = pending["seq_next"] - 1

    def __repr__(self):
        return (
            f"ReferenceSimulator(now={self.now}, signals={len(self.signals)}, "
            f"processes={len(self.processes)})"
        )
