"""Discrete-event simulation kernel with VHDL semantics.

This package is the substrate that replaces the commercial VHDL simulator
used by the paper.  It provides:

* :class:`~repro.desim.simtime.SimTime` helpers — integer nanosecond time
  plus delta cycles,
* :class:`~repro.desim.signal.Signal` — signals with scheduled transactions,
  ``'event'`` detection and last-change bookkeeping,
* :class:`~repro.desim.process.Process` — VHDL-style processes, either with a
  sensitivity list or as Python generators yielding wait conditions,
* :class:`~repro.desim.kernel.Simulator` — the two-phase (signal update /
  process execution) delta-cycle scheduler.  Scheduling cost per delta
  cycle is proportional to activity (signals that changed, waits that
  matured), not to the number of registered processes — see
  ``docs/kernel.md`` for the data structures and their invariants,
* :class:`~repro.desim.waveform.WaveformRecorder` — value-change tracing with
  a VCD-style dump,
* :class:`~repro.desim.monitor.Monitor` — invariant checks evaluated after
  every delta cycle.
"""

from repro.desim.simtime import NS, US, MS, SEC, format_time
from repro.desim.events import Timeout, SignalChange, Delta, WaitCondition
from repro.desim.signal import Signal
from repro.desim.process import Process
from repro.desim.kernel import Simulator
from repro.desim.waveform import WaveformRecorder
from repro.desim.monitor import Monitor

__all__ = [
    "NS",
    "US",
    "MS",
    "SEC",
    "format_time",
    "Timeout",
    "SignalChange",
    "Delta",
    "WaitCondition",
    "Signal",
    "Process",
    "Simulator",
    "WaveformRecorder",
    "Monitor",
]
