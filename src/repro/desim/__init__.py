"""Discrete-event simulation kernel with VHDL semantics.

This package is the substrate that replaces the commercial VHDL simulator
used by the paper.  It provides:

* :class:`~repro.desim.simtime.SimTime` helpers — integer nanosecond time
  plus delta cycles,
* :class:`~repro.desim.signal.Signal` — signals with scheduled transactions,
  ``'event'`` detection and last-change bookkeeping,
* :class:`~repro.desim.process.Process` — VHDL-style processes, either with a
  sensitivity list or as Python generators yielding wait conditions,
* :class:`~repro.desim.kernel.Simulator` — the two-phase (signal update /
  process execution) delta-cycle scheduler.  Scheduling cost per delta
  cycle is proportional to activity (signals that changed, waits that
  matured), not to the number of registered processes — see
  ``docs/kernel.md`` for the data structures and their invariants,
* :class:`~repro.desim.waveform.WaveformRecorder` — value-change tracing with
  a VCD-style dump,
* :class:`~repro.desim.monitor.Monitor` — invariant checks evaluated after
  every delta cycle.
"""

from repro.desim.simtime import NS, US, MS, SEC, format_time
from repro.desim.events import Timeout, SignalChange, Delta, WaitCondition
from repro.desim.signal import ForceValue, ReleaseValue, Signal
from repro.desim.process import Process
from repro.desim.kernel import Simulator
from repro.desim.reference import ReferenceSimulator
from repro.desim.waveform import WaveformRecorder
from repro.desim.monitor import Monitor
from repro.utils.errors import SimulationError

#: Selectable kernel implementations.  ``production`` is the optimised
#: delta-cycle scheduler; ``reference`` is the naive oracle used by the
#: conformance kit (:mod:`repro.testkit`).  Both honour the same API and
#: must be observably indistinguishable.
KERNELS = {
    "production": Simulator,
    "reference": ReferenceSimulator,
}


def create_simulator(kernel="production", **kwargs):
    """Instantiate the simulator registered under *kernel*.

    The hook exists so any flow built on :class:`Simulator` (co-simulation,
    benchmarks, the conformance kit) can be re-run against the reference
    kernel without code changes.
    """
    try:
        factory = KERNELS[kernel]
    except KeyError:
        raise SimulationError(
            f"unknown kernel {kernel!r}; available: {sorted(KERNELS)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "NS",
    "US",
    "MS",
    "SEC",
    "format_time",
    "Timeout",
    "SignalChange",
    "Delta",
    "WaitCondition",
    "Signal",
    "ForceValue",
    "ReleaseValue",
    "Process",
    "Simulator",
    "ReferenceSimulator",
    "KERNELS",
    "create_simulator",
    "WaveformRecorder",
    "Monitor",
]
