"""Simulation processes.

Two flavours are supported, both present in VHDL practice:

* **Sensitivity-list processes** — a plain callable re-executed from the top
  whenever one of the signals in its sensitivity list has an event.  This is
  the natural shape for combinational logic and clocked FSMs (sensitive to
  the clock).
* **Generator processes** — a Python generator yielding
  :class:`~repro.desim.events.WaitCondition` objects, mirroring VHDL
  processes with explicit ``wait`` statements.  This is the natural shape for
  testbench stimulus and the motor's physical model.

A suspended generator costs the kernel nothing until the yielded condition
fires: it sits in the per-signal waiter index and/or the timeout heap, and
is only touched when one of its signals has an event or its deadline
matures.
"""

import inspect

from repro.desim.events import WaitCondition
from repro.utils.errors import SimulationError
from repro.utils.ids import check_identifier


class Process:
    """A simulation process registered with a :class:`Simulator`.

    Parameters
    ----------
    name, func, sensitivity, initial_run:
        As registered through :meth:`Simulator.add_process`.
    first_wait:
        Optional :class:`WaitCondition` the kernel arms at simulation start
        instead of running the process: the generator is parked on the wait
        and first stepped when it fires.  This turns a *wait-first* loop
        (``while True: yield w; act()``) into the equivalent *act-first*
        loop (``while True: act(); yield w``) — the shape required for
        ``rearmable``.  Implies ``initial_run=False``.
    rearmable:
        Declares that a **fresh** generator instance, stepped once, behaves
        exactly like the suspended one being resumed — true for act-first
        loops with no prologue and no loop-carried frame state (all state
        lives in signals or captured objects).  Only rearmable generator
        processes can be re-suspended by :meth:`Simulator.restore`;
        sensitivity-list processes are always restorable.
    """

    def __init__(self, name, func, sensitivity=(), initial_run=True,
                 first_wait=None, rearmable=False):
        self.name = check_identifier(name, "process name")
        self.func = func
        self.sensitivity = tuple(sensitivity)
        self.is_generator = inspect.isgeneratorfunction(func)
        if self.is_generator and self.sensitivity:
            raise SimulationError(
                f"process {name!r}: generator processes use wait conditions, "
                "not sensitivity lists"
            )
        if first_wait is not None:
            if not self.is_generator:
                raise SimulationError(
                    f"process {name!r}: first_wait requires a generator process"
                )
            if not isinstance(first_wait, WaitCondition):
                raise SimulationError(
                    f"process {name!r}: first_wait must be a WaitCondition, "
                    f"got {first_wait!r}"
                )
            initial_run = False
        if rearmable and not self.is_generator:
            raise SimulationError(
                f"process {name!r}: only generator processes need rearmable "
                "(sensitivity processes are always restorable)"
            )
        self.initial_run = initial_run
        self.first_wait = first_wait
        self.rearmable = rearmable
        self._gen = None
        self.finished = False
        self.run_count = 0
        # Recyclable deadline-only wait (Timeout/Delta), owned by the
        # kernel's _park_timed; reused only when consumed (done).
        self._timer_wait = None

    @property
    def restorable(self):
        """True when :meth:`Simulator.restore` can re-suspend this process."""
        return not self.is_generator or self.rearmable

    def start(self):
        """Instantiate the generator (no-op for sensitivity processes)."""
        self.finished = False
        self.run_count = 0
        if self.is_generator:
            self._gen = self.func()

    def step(self):
        """Run the process once.

        For a sensitivity-list process this calls the function and returns
        ``None``.  For a generator process this resumes the generator and
        returns the yielded :class:`WaitCondition`, or ``None`` when the
        generator terminates (the process is then finished for good).
        """
        self.run_count += 1
        if not self.is_generator:
            self.func()
            return None
        if self._gen is None:
            self.start()
        try:
            condition = next(self._gen)
        except StopIteration:
            self.finished = True
            return None
        if not isinstance(condition, WaitCondition):
            raise SimulationError(
                f"process {self.name!r} yielded {condition!r}; "
                "expected a WaitCondition (Timeout, SignalChange, Delta)"
            )
        return condition

    def __repr__(self):
        kind = "generator" if self.is_generator else "sensitivity"
        return f"Process({self.name}, {kind}, runs={self.run_count})"
