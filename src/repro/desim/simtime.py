"""Simulation time.

Time is an integer number of nanoseconds; the kernel additionally tracks a
delta-cycle counter within each physical time point, mirroring VHDL's
``(time, delta)`` ordering.
"""

NS = 1
US = 1_000 * NS
MS = 1_000 * US
SEC = 1_000 * MS

_UNITS = ((SEC, "s"), (MS, "ms"), (US, "us"), (NS, "ns"))


def format_time(nanoseconds):
    """Render a nanosecond count using the largest unit that divides it.

    >>> format_time(2_000_000)
    '2 ms'
    >>> format_time(1500)
    '1500 ns'
    """
    if nanoseconds == 0:
        return "0 ns"
    for scale, suffix in _UNITS:
        if nanoseconds % scale == 0:
            return f"{nanoseconds // scale} {suffix}"
    return f"{nanoseconds} ns"


def check_delay(delay):
    """Validate a scheduling delay (must be a non-negative integer)."""
    if not isinstance(delay, int):
        raise TypeError(f"delay must be an integer nanosecond count, got {delay!r}")
    if delay < 0:
        raise ValueError(f"delay must be non-negative, got {delay}")
    return delay
