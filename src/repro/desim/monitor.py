"""Monitors: invariants checked after every delta cycle.

Monitors replace the assertion statements of the VHDL testbench: the
co-simulation session uses them to check protocol invariants (e.g. "DATAIN is
stable while B_FULL is asserted") and the real-time constraints of the motor
controller.

Every attached monitor is evaluated once per delta cycle, so its predicate
runs on the kernel's hot path: keep predicates O(1) reads of signal values,
not scans over simulator state.
"""


class Violation:
    """One recorded violation of a monitor predicate."""

    def __init__(self, time, message):
        self.time = time
        self.message = message

    def __repr__(self):
        return f"Violation(t={self.time}, {self.message!r})"


class Monitor:
    """Evaluates a predicate over the simulator state after each delta cycle.

    Parameters
    ----------
    name:
        Monitor name used in reports.
    predicate:
        Callable ``predicate(simulator) -> bool``; ``False`` records a
        violation.
    message:
        Human-readable description of the invariant.
    fail_fast:
        When true, the first violation raises immediately.
    """

    def __init__(self, name, predicate, message=None, fail_fast=False):
        self.name = name
        self.predicate = predicate
        self.message = message or f"monitor {name} failed"
        self.fail_fast = fail_fast
        self.violations = []
        self.checks = 0

    def check(self, simulator):
        self.checks += 1
        if not self.predicate(simulator):
            violation = Violation(simulator.now, self.message)
            self.violations.append(violation)
            if self.fail_fast:
                from repro.utils.errors import SimulationError

                raise SimulationError(
                    f"{self.name}: {self.message} at t={simulator.now} ns"
                )

    @property
    def ok(self):
        """True when the invariant never failed."""
        return not self.violations

    # ----------------------------------------------------------- state access

    def capture_state(self):
        """Picklable copy of the monitor's mutable state (checkpointing)."""
        return {
            "checks": self.checks,
            "violations": [(violation.time, violation.message)
                           for violation in self.violations],
        }

    def restore_state(self, state):
        """Overwrite the monitor's state with a :meth:`capture_state` copy."""
        self.checks = state["checks"]
        self.violations = [Violation(time, message)
                           for time, message in state["violations"]]

    def __repr__(self):
        return f"Monitor({self.name}, checks={self.checks}, violations={len(self.violations)})"


class StabilityMonitor(Monitor):
    """Checks that *data* does not change while *valid* is asserted.

    This captures the handshake safety property the paper's PUT/GET protocol
    relies on: once ``B_FULL`` is raised, ``DATAIN`` must hold its value until
    the consumer acknowledges.
    """

    def __init__(self, name, data_signal, valid_signal, asserted=1):
        self._data = data_signal
        self._valid = valid_signal
        self._asserted = asserted
        self._held = None
        super().__init__(name, self._predicate,
                         message=f"{data_signal.name} changed while {valid_signal.name} asserted")

    def _predicate(self, simulator):
        if self._valid.value == self._asserted:
            if self._held is None:
                self._held = self._data.value
                return True
            return self._data.value == self._held
        self._held = None
        return True

    def capture_state(self):
        state = super().capture_state()
        state["held"] = self._held
        return state

    def restore_state(self, state):
        super().restore_state(state)
        self._held = state["held"]
