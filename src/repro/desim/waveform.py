"""Value-change tracing.

The recorder keeps an in-memory value-change list per signal and can render a
textual VCD-style dump.  It is used by the co-simulation session to provide
the "functional validation" evidence the paper obtains from the VHDL
simulator's trace window.

Two correctness rules the recorder guarantees:

* every traced signal has a recorded **initial value** — signals registered
  after :meth:`start` are announced by the kernel through :meth:`register`
  (and, as a last resort, the first recorded change pins the baseline), so
  ``value_at``/``count_pulses``/``edge_times`` never silently assume 0,
* the merged dumps sort on ``(time, name)`` only, never on values, so
  signals carrying heterogeneous value types (ints next to strings) cannot
  raise ``TypeError`` on a time tie, and same-signal changes within one
  time point keep their delta order (the sort is stable).
"""

from repro.utils.text import format_table


def _vcd_value(value, width, code, real=False):
    """One VCD value-change line for *value* under identifier *code*.

    Integers are emitted as binary vectors (``b101 <code>``), the only
    encoding standard viewers accept for ``wire`` variables; 1-bit wires use
    the scalar shorthand (``1<code>``).  Negative integers are emitted in
    two's complement at the declared width.  On a ``real``-declared
    variable every numeric value — including the ints of a mixed-type
    signal — is emitted as an ``r`` change instead, since vector changes
    on a real variable are just as invalid as the reverse.  Any other
    value becomes a VCD string change.
    """
    if isinstance(value, bool):
        value = int(value)
    if real and isinstance(value, (int, float)):
        return f"r{float(value)} {code}"
    if isinstance(value, int):
        if width == 1 and value in (0, 1):
            return f"{value}{code}"
        masked = value & ((1 << width) - 1)
        return f"b{masked:b} {code}"
    if isinstance(value, float):
        return f"r{value} {code}"
    return f"s{value} {code}"


def _int_width(value):
    """Bits needed to represent one integer value (two's complement for <0)."""
    if isinstance(value, bool):
        return 1
    if value < 0:
        return value.bit_length() + 1
    return max(1, value.bit_length())


class WaveformRecorder:
    """Records every value change of the signals it watches.

    Parameters
    ----------
    signals:
        Iterable of signals to watch; when empty, every signal registered
        with the simulator at start time is traced (plus any signal
        registered later, which the kernel announces via :meth:`register`).
    """

    def __init__(self, signals=()):
        self._filter = {sig.name for sig in signals} or None
        self.changes = {}
        self._initial = {}

    def start(self, simulator):
        names = self._filter or set(simulator.signals)
        for name in names:
            if name in simulator.signals:
                signal = simulator.signals[name]
                self.changes.setdefault(name, [])
                self._initial.setdefault(name, signal.value)

    def register(self, signal):
        """Announce a signal registered after :meth:`start`.

        The kernel calls this for late ``add_signal``/``register_signal``
        registrations so the recorder can pin the signal's true initial
        value instead of assuming 0 in :meth:`value_at` and friends.
        """
        if self._filter is not None and signal.name not in self._filter:
            return
        self.changes.setdefault(signal.name, [])
        self._initial.setdefault(signal.name, signal.value)

    def record(self, time, signal):
        if self._filter is not None and signal.name not in self._filter:
            return
        name = signal.name
        if name not in self._initial:
            # Last resort for signals never announced (e.g. recorded through
            # a foreign kernel): the first-seen change fixes the baseline.
            self._initial[name] = signal.value
        self.changes.setdefault(name, []).append((time, signal.value))

    # ------------------------------------------------------------------ query

    def initial_value(self, name, default=0):
        """The value signal *name* held before its first recorded change."""
        return self._initial.get(name, default)

    def history(self, name):
        """Return the list of ``(time, value)`` changes of signal *name*."""
        return list(self.changes.get(name, []))

    def value_at(self, name, time):
        """Return the value signal *name* held at simulation time *time*."""
        value = self._initial.get(name, 0)
        for change_time, change_value in self.changes.get(name, []):
            if change_time > time:
                break
            value = change_value
        return value

    def count_pulses(self, name, level=1):
        """Count rising transitions to *level* (used for motor pulse counting)."""
        pulses = 0
        previous = self._initial.get(name, 0)
        for _, value in self.changes.get(name, []):
            if value == level and previous != level:
                pulses += 1
            previous = value
        return pulses

    def edge_times(self, name, level=1):
        """Return the times of transitions of signal *name* to *level*."""
        times = []
        previous = self._initial.get(name, 0)
        for change_time, value in self.changes.get(name, []):
            if value == level and previous != level:
                times.append(change_time)
            previous = value
        return times

    # ----------------------------------------------------------- state access

    def capture_state(self):
        """Picklable copy of the recorder's mutable state (checkpointing)."""
        return {
            "changes": {name: list(changes)
                        for name, changes in self.changes.items()},
            "initial": dict(self._initial),
        }

    def restore_state(self, state):
        """Overwrite the recorder's state with a :meth:`capture_state` copy."""
        self.changes = {name: list(changes)
                        for name, changes in state["changes"].items()}
        self._initial = dict(state["initial"])

    # ------------------------------------------------------------------- dump

    def _merged_changes(self, names):
        """All changes of *names* as ``(time, name, value)``, (time, name)
        ordered; per-signal delta order is preserved (stable sort, values
        never compared)."""
        merged = []
        for name in names:
            for change_time, value in self.changes.get(name, []):
                merged.append((change_time, name, value))
        merged.sort(key=lambda entry: (entry[0], entry[1]))
        return merged

    def dump(self, names=None):
        """Return a textual table of all recorded changes (time-ordered)."""
        names = list(names) if names is not None else sorted(self.changes)
        rows = [(change_time, name, value)
                for change_time, name, value in self._merged_changes(names)]
        return format_table(["time (ns)", "signal", "value"], rows)

    def _declared_width(self, name):
        """Honest bit width of signal *name*: the widest integer it took."""
        values = [self._initial.get(name, 0)]
        values.extend(value for _, value in self.changes.get(name, ()))
        widths = [_int_width(value) for value in values
                  if isinstance(value, int)]
        return max(widths) if widths else 1

    def to_vcd(self, names=None):
        """Render a minimal VCD document for the recorded signals.

        Integer values are emitted as binary vector changes (``b...``) with
        the declared width computed from the values actually seen — never as
        ``r`` real-number changes, which standard viewers reject for
        ``wire`` variables.  Floats become ``real`` variables and any other
        value a VCD string change.
        """
        names = list(names) if names is not None else sorted(self.changes)
        codes = {name: chr(33 + index) for index, name in enumerate(names)}
        widths = {name: self._declared_width(name) for name in names}
        reals = {}
        lines = ["$timescale 1ns $end"]
        for name in names:
            values = [self._initial.get(name, 0)]
            values.extend(value for _, value in self.changes.get(name, ()))
            reals[name] = any(isinstance(value, float) for value in values)
            if reals[name]:
                lines.append(f"$var real 64 {codes[name]} {name} $end")
            else:
                lines.append(
                    f"$var wire {widths[name]} {codes[name]} {name} $end"
                )
        lines.append("$enddefinitions $end")
        lines.append("#0")
        for name in names:
            lines.append(_vcd_value(self._initial.get(name, 0), widths[name],
                                    codes[name], real=reals[name]))
        current_time = 0
        for change_time, name, value in self._merged_changes(names):
            if change_time != current_time:
                lines.append(f"#{change_time}")
                current_time = change_time
            lines.append(_vcd_value(value, widths[name], codes[name],
                                    real=reals[name]))
        return "\n".join(lines)
