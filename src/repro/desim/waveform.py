"""Value-change tracing.

The recorder keeps an in-memory value-change list per signal and can render a
textual VCD-style dump.  It is used by the co-simulation session to provide
the "functional validation" evidence the paper obtains from the VHDL
simulator's trace window.
"""

from repro.utils.text import format_table


class WaveformRecorder:
    """Records every value change of the signals it watches.

    Parameters
    ----------
    signals:
        Iterable of signals to watch; when empty, every signal registered
        with the simulator at start time is traced.
    """

    def __init__(self, signals=()):
        self._filter = {sig.name for sig in signals} or None
        self.changes = {}
        self._initial = {}

    def start(self, simulator):
        names = self._filter or set(simulator.signals)
        for name in names:
            if name in simulator.signals:
                signal = simulator.signals[name]
                self.changes.setdefault(name, [])
                self._initial[name] = signal.value

    def record(self, time, signal):
        if self._filter is not None and signal.name not in self._filter:
            return
        self.changes.setdefault(signal.name, []).append((time, signal.value))

    # ------------------------------------------------------------------ query

    def history(self, name):
        """Return the list of ``(time, value)`` changes of signal *name*."""
        return list(self.changes.get(name, []))

    def value_at(self, name, time):
        """Return the value signal *name* held at simulation time *time*."""
        value = self._initial.get(name, 0)
        for change_time, change_value in self.changes.get(name, []):
            if change_time > time:
                break
            value = change_value
        return value

    def count_pulses(self, name, level=1):
        """Count rising transitions to *level* (used for motor pulse counting)."""
        pulses = 0
        previous = self._initial.get(name, 0)
        for _, value in self.changes.get(name, []):
            if value == level and previous != level:
                pulses += 1
            previous = value
        return pulses

    def edge_times(self, name, level=1):
        """Return the times of transitions of signal *name* to *level*."""
        times = []
        previous = self._initial.get(name, 0)
        for change_time, value in self.changes.get(name, []):
            if value == level and previous != level:
                times.append(change_time)
            previous = value
        return times

    # ------------------------------------------------------------------- dump

    def dump(self, names=None):
        """Return a textual table of all recorded changes (time-ordered)."""
        names = list(names) if names is not None else sorted(self.changes)
        rows = []
        merged = []
        for name in names:
            for change_time, value in self.changes.get(name, []):
                merged.append((change_time, name, value))
        merged.sort()
        for change_time, name, value in merged:
            rows.append((change_time, name, value))
        return format_table(["time (ns)", "signal", "value"], rows)

    def to_vcd(self, names=None):
        """Render a minimal VCD document for the recorded signals."""
        names = list(names) if names is not None else sorted(self.changes)
        codes = {name: chr(33 + index) for index, name in enumerate(names)}
        lines = ["$timescale 1ns $end"]
        for name in names:
            lines.append(f"$var wire 32 {codes[name]} {name} $end")
        lines.append("$enddefinitions $end")
        lines.append("#0")
        for name in names:
            lines.append(f"r{self._initial.get(name, 0)} {codes[name]}")
        merged = []
        for name in names:
            for change_time, value in self.changes.get(name, []):
                merged.append((change_time, name, value))
        merged.sort()
        current_time = 0
        for change_time, name, value in merged:
            if change_time != current_time:
                lines.append(f"#{change_time}")
                current_time = change_time
            lines.append(f"r{value} {codes[name]}")
        return "\n".join(lines)
