"""Wait conditions yielded by generator-style simulation processes.

A generator process communicates with the kernel by yielding one of these
objects; the kernel suspends the process until the condition is met, exactly
like VHDL ``wait`` statements:

* ``Timeout(delay)``       — ``wait for delay``
* ``SignalChange(sigs)``   — ``wait on sigs``
* ``SignalChange(sigs, timeout=d)`` — ``wait on sigs for d``
* ``Delta()``              — ``wait for 0 ns`` (resume next delta cycle)

Wait conditions are immutable descriptions: the kernel copies what it needs
when it suspends the process, so one instance may be yielded repeatedly
(e.g. a clock process reusing a single ``Timeout``).  For a bounded signal
wait, whichever of the event and the deadline fires first consumes the
whole wait — the process is never woken a second time by the loser.
"""

from repro.desim.simtime import check_delay


class WaitCondition:
    """Base class for everything a process may yield to the kernel."""


class Timeout(WaitCondition):
    """Suspend the process for a fixed number of nanoseconds."""

    def __init__(self, delay):
        self.delay = check_delay(delay)

    def __repr__(self):
        return f"Timeout({self.delay})"


class Delta(WaitCondition):
    """Suspend the process until the next delta cycle."""

    def __repr__(self):
        return "Delta()"


class SignalChange(WaitCondition):
    """Suspend the process until any of *signals* has an event.

    An optional *timeout* bounds the wait; when it expires the process is
    resumed even without an event (the process can inspect signal ``event``
    attributes to distinguish the two cases).
    """

    def __init__(self, *signals, timeout=None):
        if not signals:
            raise ValueError("SignalChange requires at least one signal")
        self.signals = tuple(signals)
        self.timeout = None if timeout is None else check_delay(timeout)

    def __repr__(self):
        names = ", ".join(sig.name for sig in self.signals)
        if self.timeout is None:
            return f"SignalChange({names})"
        return f"SignalChange({names}, timeout={self.timeout})"
