"""Signals: the only shared state between simulation processes.

A signal carries a current value and accepts *scheduled transactions*
(``schedule`` is normally called through :meth:`Simulator.schedule` or the
process-facing helpers).  The kernel applies pending transactions during the
signal-update phase of each delta cycle; a signal whose value actually
changes has its ``event`` flag set for the following process-execution phase,
matching the VHDL ``'event`` attribute.

Signals do not know who waits on them: the kernel keeps a per-signal waiter
index so an event wakes exactly the processes blocked on that signal.  The
only kernel-owned state stored here is the ``_staged`` mark used to batch
the update phase without a dedup set.
"""

from repro.utils.errors import SimulationError
from repro.utils.ids import check_identifier


class ForceValue:
    """Transaction payload that *forces* a signal (HDL ``force``).

    Scheduling ``ForceValue(v)`` on a signal pins its visible value to
    ``v`` at the next update phase.  While forced, ordinary transactions
    do not change the visible value; the most recent suppressed write is
    remembered and re-applied by :class:`ReleaseValue`.  Fault injection
    (:mod:`repro.cosim.faults`) uses force/release to model stuck wires
    and bus contention without touching the drivers.

    Force and release travel through the normal transaction queue, but a
    signal stages them in a *control slot separate from the driven slot*:
    within one delta, "last write wins" applies to driven writes and to
    force/release independently, and a control transaction colliding with
    a driven write in the same delta can never swallow it.  A same-delta
    ``force + write`` pins the forced value and shadows the write; a
    same-delta ``release + write`` unpins and then applies the write
    (the driver's latest intent supersedes the restored shadow).  Both
    kernels stage every queued value, so fault runs stay differentially
    comparable.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"ForceValue({self.value!r})"


class ReleaseValue:
    """Transaction payload that releases a forced signal (HDL ``release``).

    The signal resumes the most recent value its drivers tried to write
    during the force window (or the pre-force value when none did).
    Releasing an unforced signal is a no-op.
    """

    __slots__ = ()

    def __repr__(self):
        return "ReleaseValue()"


class Signal:
    """A named simulation signal.

    Parameters
    ----------
    name:
        Identifier (also used in waveform dumps).
    init:
        Initial value.  Any hashable/comparable Python value is accepted;
        typical values are ``0``/``1`` bits, integers and strings.
    dtype:
        Optional data-type tag from :mod:`repro.ir.dtypes`; used only for
        reporting and code generation, never enforced by the kernel.
    """

    def __init__(self, name, init=0, dtype=None):
        self.name = check_identifier(name, "signal name")
        self.dtype = dtype
        self._value = init
        self._init = init
        self.last_changed = 0
        self.event = False
        self.change_count = 0
        # Pending transactions for the *next* update phase.  Driven writes
        # and force/release controls occupy separate slots so a control
        # colliding with a same-delta write cannot swallow it (each slot is
        # independently last-write-wins): (value,) / ForceValue / ReleaseValue.
        self._pending_drive = None
        self._pending_ctl = None
        # Kernel-owned dedup mark: True while this signal sits in the update
        # phase's staged list for the current delta (cleared when applied).
        self._staged = False
        # Force state: (value,) while forced, else None; _shadow remembers
        # the latest write suppressed during the force window (starts as the
        # pre-force value) so release restores last-write-wins semantics.
        self._forced = None
        self._shadow = None
        # Future transactions are kept by the kernel, not the signal.

    @property
    def value(self):
        """Current value of the signal."""
        return self._value

    def read(self):
        """Alias of :attr:`value`, convenient in lambda sensitivity code."""
        return self._value

    def stage(self, value):
        """Stage *value* to be applied at the next update phase.

        Later stages within the same delta overwrite earlier ones (last
        driver wins within a single driver context — the kernel resolves
        multiple drivers before staging).  Force/release controls stage
        into their own slot, so they compound with — rather than replace —
        a driven write staged in the same delta.
        """
        if type(value) is ForceValue or type(value) is ReleaseValue:
            self._pending_ctl = value
        else:
            self._pending_drive = (value,)

    @property
    def forced(self):
        """True while the signal is pinned by a :class:`ForceValue`."""
        return self._forced is not None

    def apply_pending(self, now):
        """Apply the staged transactions.  Returns ``True`` on an event.

        The control slot (force/release) is applied first, then the driven
        slot — the one order that makes a same-delta collision mean what
        both parties intended: ``force + write`` pins the forced value and
        shadows the write for a later release; ``release + write`` unpins
        and lets the write through (the driver's latest intent supersedes
        the restored shadow).
        """
        ctl = self._pending_ctl
        drive = self._pending_drive
        if ctl is None and drive is None:
            return False
        self._pending_ctl = None
        self._pending_drive = None
        new_value = self._value
        if type(ctl) is ForceValue:
            if self._forced is None:
                self._shadow = (self._value,)
            self._forced = (ctl.value,)
            new_value = ctl.value
        elif type(ctl) is ReleaseValue and self._forced is not None:
            self._forced = None
            shadow, self._shadow = self._shadow, None
            (new_value,) = shadow
        if drive is not None:
            if self._forced is not None:
                # Drivers keep driving a forced signal; the visible value
                # does not move, but the last attempt is remembered so a
                # release restores last-write-wins semantics.
                self._shadow = drive
            else:
                (new_value,) = drive
        if new_value == self._value:
            return False
        self._value = new_value
        self.last_changed = now
        self.change_count += 1
        self.event = True
        return True

    def clear_event(self):
        self.event = False

    def reset(self):
        """Restore the initial value (used when a simulator is re-run)."""
        self._value = self._init
        self._pending_drive = None
        self._pending_ctl = None
        self._staged = False
        self._forced = None
        self._shadow = None
        self.last_changed = 0
        self.event = False
        self.change_count = 0

    # ----------------------------------------------------------- state access

    def capture_state(self):
        """Picklable copy of the signal's mutable state (checkpointing).

        Only taken between delta cycles, when ``event`` and the pending
        slots are quiescent; pending *future* transactions live in the
        kernel, not here.
        """
        return {
            "value": self._value,
            "last_changed": self.last_changed,
            "change_count": self.change_count,
            "forced": self._forced,
            "shadow": self._shadow,
        }

    def restore_state(self, state):
        """Overwrite the signal's state with a :meth:`capture_state` copy."""
        self._value = state["value"]
        self.last_changed = state["last_changed"]
        self.change_count = state["change_count"]
        self._forced = state.get("forced")
        self._shadow = state.get("shadow")
        self._pending_drive = None
        self._pending_ctl = None
        self._staged = False
        self.event = False

    def __repr__(self):
        return f"Signal({self.name}={self._value!r})"


class ResolvedSignal(Signal):
    """A signal with several drivers and an explicit resolution function.

    The co-simulation backplane uses resolved signals for buses where both
    the communication controller and an interface adapter may drive the same
    wire.  *resolver* receives the list of driver contributions (excluding
    ``None`` releases) and returns the resolved value.
    """

    def __init__(self, name, init=0, dtype=None, resolver=None):
        super().__init__(name, init=init, dtype=dtype)
        self._drivers = {}
        self._resolver = resolver or self._default_resolver

    @staticmethod
    def _default_resolver(contributions):
        if not contributions:
            return 0
        if len(set(contributions)) > 1:
            raise SimulationError(
                f"unresolved multiple drivers with values {contributions}"
            )
        return contributions[0]

    def drive(self, driver_id, value):
        """Record the contribution of *driver_id* and stage the resolution."""
        if value is None:
            self._drivers.pop(driver_id, None)
        else:
            self._drivers[driver_id] = value
        self.stage(self._resolver(list(self._drivers.values())))

    def capture_state(self):
        state = super().capture_state()
        state["drivers"] = dict(self._drivers)
        return state

    def restore_state(self, state):
        super().restore_state(state)
        self._drivers = dict(state["drivers"])
