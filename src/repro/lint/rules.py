"""The rule catalog: every diagnostic the analyzer can emit.

``docs/lint.md`` renders this table with examples; the CLI's ``--disable``
and the ``lint_suppress`` attributes reference rules by id.  Rules marked
*legacy* are the ones the pre-diagnostics ``validate_model`` reported — the
compatibility shim runs exactly this subset.
"""

from collections import namedtuple

Rule = namedtuple("Rule", "rule severity legacy title")

#: Every rule, in catalog order.
RULES = [
    # Structural FSM checks (mirrors ir.transform.check_fsm).
    Rule("FSM001", "error", True, "transition targets an unknown state"),
    Rule("FSM002", "warning", True, "state unreachable from the initial state"),
    Rule("FSM003", "error", True, "trap state (no transitions, not done)"),
    Rule("FSM004", "error", True, "variable read but never declared"),
    Rule("FSM005", "error", True, "variable written but never declared"),
    Rule("FSM006", "error", True, "software module without exactly one FSM"),
    # IR dataflow analysis.
    Rule("DF001", "warning", False, "variable may be read before initialisation"),
    Rule("DF002", "warning", False, "variable written but never read (dead store)"),
    Rule("DF003", "warning", False, "transition guard is statically false"),
    Rule("DF004", "warning", False, "transition shadowed by an earlier one"),
    # Delta-cycle write races.
    Rule("RACE001", "error", False,
         "signal writable by two processes in the same delta cycle"),
    # Interface / binding checks.
    Rule("IF001", "error", True, "called service not bound to any unit"),
    Rule("IF002", "warning", True, "binding whose service is never called"),
    Rule("IF003", "error", False, "service call arity mismatch"),
    Rule("IF004", "error", False, "stores the result of a void service"),
    Rule("IF005", "error", False, "port write can never be a legal value"),
    Rule("IF006", "error", False, "argument can never fit the parameter"),
    Rule("IF007", "warning", False, "stored result may not fit the variable"),
    Rule("IF008", "error", True, "service/controller uses an undeclared port"),
    # Protocol misuse (derived from comm/protocols FSMs).
    Rule("PROTO001", "warning", False, "channel data written without its strobe"),
    Rule("PROTO002", "error", False, "acknowledge raised outside the data window"),
    Rule("PROTO003", "error", False, "strobe raised while the channel can be full"),
    # View-library completeness.
    Rule("VIEW001", "error", True, "missing service view for a flow"),
    Rule("VIEW002", "error", True, "view library has the wrong type"),
]

RULES_BY_ID = {rule.rule: rule for rule in RULES}

#: The subset the ``validate_model`` compatibility shim runs.
LEGACY_RULES = frozenset(rule.rule for rule in RULES if rule.legacy)


def known_rule(rule_id):
    return rule_id in RULES_BY_ID
